//! Std-backed stand-in for the `parking_lot` API surface used by this
//! workspace. The build environment has no access to crates.io, so the
//! workspace provides the lock types itself: same names, same non-poisoning
//! guard-returning API, implemented over `std::sync`.
//!
//! Poisoning is deliberately swallowed (`into_inner` on a poisoned lock),
//! matching parking_lot semantics where a panic while holding a lock does
//! not wedge every later locker.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

/// A non-poisoning mutex. `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`]s in place.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already taken");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Blocks until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) -> bool {
        self.0.notify_all();
        true
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
