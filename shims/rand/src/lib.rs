//! Local stand-in for the `rand` crate: the `Rng`/`SeedableRng` traits plus
//! `rngs::StdRng`, backed by xoshiro256++ seeded through SplitMix64. Only
//! the surface this workspace uses is provided (the environment has no
//! crates.io access). Deterministic given a seed, which is all the
//! workload generators and property tests require.

/// Uniform self-sampling for primitive types (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit: $t = Standard::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Random number generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of a primitive type uniformly.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit: f64 = Standard::sample_standard(self);
        unit < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of generators from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from ambient entropy (time + address).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        let local = &t as *const _ as u64;
        Self::seed_from_u64(t ^ local.rotate_left(32))
    }
}

/// Named generator types (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64. Stands in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A fresh generator seeded from ambient entropy (stand-in for
/// `rand::thread_rng`; not actually thread-cached).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..20);
            assert!((3..20).contains(&v));
            let u = rng.gen_range(0..=5u64);
            assert!(u <= 5);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits} hits for p=0.25");
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-50..-10);
            assert!((-50..-10).contains(&v));
        }
    }
}
