//! Local stand-in for the `bytes` crate: a cheaply clonable, immutable byte
//! buffer backed by `Arc<[u8]>`. Only the surface this workspace uses is
//! provided. Built because the environment has no crates.io access.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1), and
/// [`Bytes::slice`] is zero-copy: the sub-buffer shares the parent's
/// allocation and only narrows the visible window.
#[derive(Clone)]
pub struct Bytes {
    inner: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    fn from_arc(inner: Arc<[u8]>) -> Self {
        let end = inner.len();
        Bytes {
            inner,
            start: 0,
            end,
        }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from_arc(Arc::from(&[][..]))
    }

    /// Wraps a static byte slice (copied into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from_arc(Arc::from(bytes))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.inner[self.start..self.end]
    }

    /// Returns a new `Bytes` holding the given subrange without copying:
    /// the result shares this buffer's allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted, matching slice
    /// indexing semantics.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "range {start}..{end} out of bounds for Bytes of length {}",
            self.len()
        );
        Bytes {
            inner: Arc::clone(&self.inner),
            start: self.start + start,
            end: self.start + end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len() > 32 {
            write!(f, "..{} bytes", self.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_arc(Arc::from(v.into_boxed_slice()))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from_arc(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b, [1u8, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
    }

    #[test]
    fn clone_is_shared() {
        let b = Bytes::from(vec![9; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(std::sync::Arc::ptr_eq(&b.inner, &c.inner));
    }

    #[test]
    fn slice_subrange() {
        let b = Bytes::from_static(b"hello world");
        assert_eq!(b.slice(0..5), *b"hello");
        assert_eq!(b.slice(6..), *b"world");
    }

    #[test]
    fn slice_is_zero_copy_and_nests() {
        let b = Bytes::from(vec![7u8; 4096]);
        let s = b.slice(1024..3072);
        assert!(Arc::ptr_eq(&b.inner, &s.inner), "slice must share the Arc");
        assert_eq!(s.len(), 2048);
        let t = s.slice(512..1024);
        assert!(Arc::ptr_eq(&b.inner, &t.inner));
        assert_eq!(t, b.slice(1536..2048));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![0u8; 8]).slice(4..16);
    }

    #[test]
    fn empty_default() {
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
    }
}
