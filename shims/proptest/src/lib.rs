//! Local stand-in for `proptest`: randomized property testing with the same
//! macro/strategy surface this workspace uses. The environment has no
//! crates.io access, so the workspace carries its own generator-based
//! implementation. It generates random inputs per case (no shrinking — a
//! failing case prints the seed so it can be replayed by rerunning the
//! test binary, which reuses the per-test deterministic seed).

use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving the strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Builds the deterministic per-test generator used by [`proptest!`].
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs, distinct across tests.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::new(h)
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Runner configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one (bounded).
    fn prop_filter<F>(self, _why: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Recursive strategies: `f` receives the strategy for the previous
    /// depth level and returns the strategy for one level deeper. Depth is
    /// bounded by `depth`; the leaf strategy terminates the recursion.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Each level mixes the leaf back in so generated trees stay small.
            level = Union {
                choices: vec![(1, leaf.clone()), (2, f(level).boxed())],
            }
            .boxed();
        }
        level
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased, clonable strategy handle.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty or all weights are zero.
    pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        assert!(
            choices.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.choices.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.next_u64() % total;
        for (w, s) in &self.choices {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Strategy for the full domain of a type (`any::<T>()`).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Full-domain strategy constructor.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain generator.
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only, spanning a wide magnitude range.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mantissa * (2f64).powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII with a sprinkle of wider code points.
        if rng.below(4) == 0 {
            char::from_u32(0x80 + rng.below(0xD7FF - 0x80) as u32).unwrap_or('\u{fffd}')
        } else {
            (0x20u8 + rng.below(0x5f) as u8) as char
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(16);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_range_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_strategy_range_float!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// String (regex-subset) strategies
// ---------------------------------------------------------------------------

/// `&str` strategies interpret the string as a small regex subset:
/// literal characters, `.` (printable ASCII), `\PC` (any printable char,
/// occasionally non-ASCII), character classes like `[a-z0-9]`, and the
/// repetitions `{n}`, `{n,m}`, `*`, `+`, `?` applying to the previous atom.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    AnyPrintable,
    AnyChar,
    Class(Vec<(char, char)>),
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::AnyPrintable,
            '\\' => match chars.next() {
                Some('P') => {
                    // proptest's `\PC`: any char. Keep it printable-biased.
                    if chars.peek() == Some(&'C') {
                        chars.next();
                    }
                    Atom::AnyChar
                }
                Some('d') => Atom::Class(vec![('0', '9')]),
                Some('w') => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                Some(other) => Atom::Literal(other),
                None => break,
            },
            '[' => {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                for cc in chars.by_ref() {
                    match cc {
                        ']' => break,
                        '-' => {
                            // Range marker; resolved by the next char.
                            prev = Some('-');
                        }
                        other => {
                            if prev == Some('-') {
                                if let Some((lo, _)) = ranges.pop() {
                                    ranges.push((lo, other));
                                    prev = None;
                                    continue;
                                }
                            }
                            ranges.push((other, other));
                            prev = Some(other);
                        }
                    }
                }
                if ranges.is_empty() {
                    continue;
                }
                Atom::Class(ranges)
            }
            other => Atom::Literal(other),
        };
        // Optional repetition suffix.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for cc in chars.by_ref() {
                    if cc == '}' {
                        break;
                    }
                    spec.push(cc);
                }
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().unwrap_or(0),
                        b.trim().parse::<usize>().unwrap_or(8),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        let count = min + rng.below(max - min + 1);
        for _ in 0..count {
            out.push(sample_atom(&atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::AnyPrintable => (0x20u8 + rng.below(0x5f) as u8) as char,
        Atom::AnyChar => {
            if rng.below(8) == 0 {
                char::from_u32(0xA0 + rng.below(0x2000) as u32).unwrap_or('\u{fffd}')
            } else {
                (0x20u8 + rng.below(0x5f) as u8) as char
            }
        }
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len())];
            let span = hi as u32 - lo as u32 + 1;
            char::from_u32(lo as u32 + rng.below(span as usize) as u32).unwrap_or(lo)
        }
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from the given range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr)
      $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_rng("ranges");
        let s = (0u64..6, 1u64..8, any::<bool>());
        for _ in 0..1_000 {
            let (a, b, _c) = s.generate(&mut rng);
            assert!(a < 6 && (1..8).contains(&b));
        }
    }

    #[test]
    fn oneof_respects_value_set() {
        let mut rng = crate::test_rng("oneof");
        let s = prop_oneof![
            2 => Just(1u8),
            1 => Just(2u8),
        ];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || v == 2);
            seen[v as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn string_patterns_generate_expected_shapes() {
        let mut rng = crate::test_rng("strings");
        for _ in 0..500 {
            let s = "\\PC{0,12}".generate(&mut rng);
            assert!(s.chars().count() <= 12);
            let t = "[a-z]{3}".generate(&mut rng);
            assert_eq!(t.len(), 3);
            assert!(t.chars().all(|c| c.is_ascii_lowercase()));
            let dot = ".{0,24}".generate(&mut rng);
            assert!(dot.chars().count() <= 24);
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::test_rng("vec");
        let s = collection::vec(any::<u8>(), 1..5);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn weight(t: &Tree) -> u64 {
            match t {
                Tree::Leaf(v) => *v as u64,
                Tree::Node(children) => children.iter().map(weight).sum(),
            }
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_rng("recursive");
        let mut total = 0u64;
        for _ in 0..200 {
            // Must not hang or overflow the stack.
            total += weight(&strat.generate(&mut rng));
        }
        assert!(total > 0, "200 random trees produced zero total weight");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro form itself.
        #[test]
        fn macro_form_works(v in collection::vec(any::<u8>(), 0..10), x in 0usize..5) {
            prop_assert!(v.len() < 10);
            prop_assert_eq!(x.min(4), x);
        }
    }
}
