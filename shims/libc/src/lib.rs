//! Offline stand-in for the tiny slice of `libc` this workspace needs:
//! `poll(2)` and the file-descriptor resource limit.
//!
//! The build environment has no crates.io access, so — like the other
//! crates under `shims/` — this is a local, API-shaped substitute. Unlike
//! the real `libc` it does **not** re-export raw unsafe externs: the FFI
//! lives here, behind safe wrappers, so downstream crates can keep
//! `#![forbid(unsafe_code)]`. The `pollfd` struct and `POLL*` constants
//! match the Linux ABI so the calling code reads like ordinary libc usage.
//!
//! Soundness of the safe wrappers:
//! * [`poll`] passes a valid `&mut [pollfd]` pointer/length pair; the
//!   kernel only writes `revents` within that range. A slice entry holding
//!   a closed or bogus fd is reported via `POLLNVAL`, never UB.
//! * [`raise_nofile_limit`] / [`nofile_limit`] pass pointers to local
//!   `rlimit` values the kernel fills or reads in place.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::io;
use std::os::raw::{c_int, c_ulong};

/// There is data to read.
pub const POLLIN: i16 = 0x001;
/// Writing now will not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (output only).
pub const POLLERR: i16 = 0x008;
/// Hang up (output only): the peer closed its end.
pub const POLLHUP: i16 = 0x010;
/// Invalid request: fd not open (output only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set, Linux ABI layout.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
#[allow(non_camel_case_types)]
pub struct pollfd {
    /// File descriptor to watch (a negative fd is ignored by the kernel).
    pub fd: c_int,
    /// Requested events (`POLLIN` / `POLLOUT` bitmask).
    pub events: i16,
    /// Returned events, written by the kernel.
    pub revents: i16,
}

impl pollfd {
    /// Entry watching `fd` for `events`.
    pub fn new(fd: c_int, events: i16) -> Self {
        pollfd {
            fd,
            events,
            revents: 0,
        }
    }
}

#[repr(C)]
struct rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const RLIMIT_NOFILE: c_int = 7;

mod ffi {
    use super::{pollfd, rlimit};
    use std::os::raw::{c_int, c_ulong};

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
    }
}

/// Waits for readiness on `fds` for up to `timeout_ms` milliseconds
/// (negative = block indefinitely, `0` = poll and return). Returns the
/// number of entries with nonzero `revents`. `EINTR` is reported as
/// `Ok(0)` — callers recompute their deadlines every iteration anyway.
pub fn poll(fds: &mut [pollfd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `fds` is a valid, exclusively borrowed slice; the kernel
    // reads `fd`/`events` and writes `revents` for exactly `fds.len()`
    // entries.
    let rc = unsafe { ffi::poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

/// Current `(soft, hard)` open-file-descriptor limit.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut lim = rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: passes a valid pointer to a local the kernel fills.
    let rc = unsafe { ffi::getrlimit(RLIMIT_NOFILE, &mut lim) };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((lim.rlim_cur, lim.rlim_max))
}

/// Raises the soft open-fd limit toward `target` and returns the resulting
/// soft limit. If `target` exceeds the hard limit, raising the hard limit
/// is attempted first (succeeds for privileged processes, e.g. root in a
/// container); otherwise the soft limit is clamped to the hard limit.
/// Best-effort: a process that cannot raise its limit still learns what it
/// has.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let (soft, hard) = nofile_limit()?;
    if target <= soft {
        return Ok(soft);
    }
    if target > hard {
        let lim = rlimit {
            rlim_cur: target,
            rlim_max: target,
        };
        // SAFETY: passes a valid pointer to a fully initialized local.
        // Needs CAP_SYS_RESOURCE; on failure fall through to the clamp.
        if unsafe { ffi::setrlimit(RLIMIT_NOFILE, &lim) } == 0 {
            return Ok(target);
        }
    }
    let want = target.min(hard);
    if want <= soft {
        return Ok(soft);
    }
    let lim = rlimit {
        rlim_cur: want,
        rlim_max: hard,
    };
    // SAFETY: passes a valid pointer to a fully initialized local.
    let rc = unsafe { ffi::setrlimit(RLIMIT_NOFILE, &lim) };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(want)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_times_out_on_quiet_fd() {
        let (_a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut fds = [pollfd::new(b.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, 0).unwrap();
        assert_eq!(n, 0);
        assert_eq!(fds[0].revents, 0);
    }

    #[test]
    fn poll_reports_readable_after_write() {
        let (mut a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        a.write_all(b"x").unwrap();
        let mut fds = [pollfd::new(b.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }

    #[test]
    fn poll_flags_bogus_fd_as_nval() {
        let mut fds = [pollfd::new(1_000_000, POLLIN)];
        let n = poll(&mut fds, 0).unwrap();
        assert_eq!(n, 1);
        assert_ne!(fds[0].revents & POLLNVAL, 0);
    }

    #[test]
    fn nofile_limit_reports_something_sane() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft >= 64, "soft fd limit {soft} is implausibly low");
        assert!(hard >= soft);
    }

    #[test]
    fn raise_is_idempotent_at_or_below_current() {
        let (soft, _) = nofile_limit().unwrap();
        assert_eq!(raise_nofile_limit(soft).unwrap(), soft);
        assert_eq!(raise_nofile_limit(soft / 2).unwrap(), soft);
    }
}
