//! Local stand-in for `criterion`: the same benchmark-definition surface
//! (`criterion_group!`, `criterion_main!`, groups, throughput, ids), with a
//! simple warm-up + timed-batch measurement loop printing mean per-iteration
//! time and derived throughput to stdout. Built because the environment has
//! no crates.io access; benches use `harness = false` so this is the whole
//! harness.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units the per-iteration throughput is reported in.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Display-formatted benchmark identifier (`BenchmarkId::from_parameter(..)`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Measurement settings plus entry point for defining groups.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget for timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration run before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A named group sharing throughput settings (`c.benchmark_group(..)`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), |b| f(b));
        self
    }

    /// Runs one benchmark with an input value passed to the closure.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), |b| f(b, input));
        self
    }

    /// Finishes the group (reporting happens per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}

    fn run(&self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: Mode::WarmUp,
            budget: self.criterion.warm_up_time,
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        // Use the warm-up rate to size timed batches near the budget.
        let warm_rate = if bencher.elapsed.is_zero() {
            1_000_000.0
        } else {
            bencher.iters_done as f64 / bencher.elapsed.as_secs_f64()
        };
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let per_sample = self.criterion.measurement_time.as_secs_f64() / samples as f64;
        let batch = ((warm_rate * per_sample) as u64).max(1);

        let mut total_iters = 0u64;
        let mut total_time = Duration::ZERO;
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let mut b = Bencher {
                mode: Mode::Fixed(batch),
                budget: Duration::ZERO,
                iters_done: 0,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.iters_done > 0 {
                let per_iter = b.elapsed.as_secs_f64() / b.iters_done as f64;
                best = best.min(per_iter);
            }
            total_iters += b.iters_done;
            total_time += b.elapsed;
        }
        let mean = if total_iters == 0 {
            0.0
        } else {
            total_time.as_secs_f64() / total_iters as f64
        };
        let mut line = format!(
            "bench {}/{:<32} mean {:>12}  best {:>12}",
            self.name,
            id,
            fmt_time(mean),
            fmt_time(best)
        );
        if let Some(t) = self.throughput {
            if mean > 0.0 {
                match t {
                    Throughput::Bytes(n) => {
                        line += &format!("  {:>10.1} MiB/s", n as f64 / mean / (1024.0 * 1024.0));
                    }
                    Throughput::Elements(n) => {
                        line += &format!("  {:>12.0} elem/s", n as f64 / mean);
                    }
                }
            }
        }
        println!("{line}");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

enum Mode {
    /// Run until the time budget is used up.
    WarmUp,
    /// Run exactly this many iterations.
    Fixed(u64),
}

/// Timing handle passed to benchmark closures (`b.iter(..)`).
pub struct Bencher {
    mode: Mode,
    budget: Duration,
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f` under the active sampling mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::WarmUp => {
                let start = Instant::now();
                let mut n = 0u64;
                loop {
                    black_box(f());
                    n += 1;
                    // Check the clock in small strides to limit overhead.
                    if n.is_multiple_of(16) && start.elapsed() >= self.budget {
                        break;
                    }
                }
                self.iters_done = n;
                self.elapsed = start.elapsed();
            }
            Mode::Fixed(count) => {
                let start = Instant::now();
                for _ in 0..count {
                    black_box(f());
                }
                self.elapsed = start.elapsed();
                self.iters_done = count;
            }
        }
    }
}

/// Declares a benchmark group: a `fn <name>()` running every target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        let mut ran = 0u64;
        group.throughput(Throughput::Elements(1));
        group.bench_function("counting", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran > 3, "benchmark closure barely ran ({ran} iters)");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(0.002), "2.000 ms");
        assert_eq!(fmt_time(0.000002), "2.000 µs");
        assert_eq!(fmt_time(0.000000002), "2.0 ns");
    }
}
