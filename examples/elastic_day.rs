//! Elastic day: replay a synthesized Ubuntu One day against the simulated
//! SyncService pool with the paper's predictive + reactive provisioning,
//! and watch the pool breathe with the diurnal workload (paper §5.3).
//!
//! ```sh
//! cargo run --release -p stacksync-examples --bin elastic_day
//! ```

use elastic::{run_day8, Day8Config};
use objectmq::provision::ScalingPolicy;

fn main() {
    println!("training the predictive provisioner on a week of UB1 history,");
    println!("then replaying day 8 with predictive + reactive auto-scaling…\n");

    let summary = run_day8(&Day8Config {
        policy: ScalingPolicy::Both,
        ..Day8Config::default()
    });

    println!("hour  req/min  pool  p95(ms)   workload");
    let max = summary.points.iter().map(|p| p.arrivals).max().unwrap_or(1) as f64;
    for p in summary.points.iter().step_by(60) {
        let bars = ((p.arrivals as f64 / max) * 32.0) as usize;
        println!(
            "{:>4}  {:>7}  {:>4}  {:>7.0}   {}",
            p.minute / 60,
            p.arrivals,
            p.instances,
            p.p95_rt * 1e3,
            "█".repeat(bars)
        );
    }

    println!(
        "\n{} commit requests served | pool peaked at {} instances",
        summary.completed, summary.peak_instances
    );
    println!(
        "450 ms SLA held for {:.2}% of requests (median rt {:.0} ms)",
        (1.0 - summary.sla_violation_fraction) * 100.0,
        summary.overall.median * 1e3
    );
    println!("\nthe pool tracked the workload: that is programmatic elasticity —");
    println!("no CPU/RAM heuristics, only queue arrival rates and the G/G/1 bound.");
}
