//! Quickstart: the ObjectMQ HelloWorld of the paper (Fig. 2) followed by a
//! minimal two-device StackSync round trip.
//!
//! ```sh
//! cargo run -p stacksync-examples --bin quickstart
//! ```

use metadata::{InMemoryStore, MetadataStore};
use objectmq::{Broker, RemoteObject};
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService};
use std::sync::Arc;
use std::time::Duration;
use storage::{LatencyModel, SwiftStore};
use wire::Value;

/// The paper's HelloWorld remote object (Fig. 2).
struct HelloServer;

impl RemoteObject for HelloServer {
    fn dispatch(&self, method: &str, args: &[Value]) -> Result<Value, String> {
        match method {
            "hello_world" => {
                let who = args
                    .first()
                    .and_then(|v| v.as_str().ok())
                    .unwrap_or("world");
                Ok(Value::from(format!("hello, {who}!")))
            }
            other => Err(format!("no such method {other}")),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: ObjectMQ in four lines, like the paper's Fig. 2. ------
    let broker = Broker::in_process();
    let _server = broker.bind("hello", HelloServer)?; // Broker.bind(oid, obj)
    let hello = broker.lookup("hello")?; //              Broker.lookup(oid)
    let reply = hello.call_sync(
        "hello_world",
        vec![Value::from("middleware")],
        Duration::from_millis(1500),
        5,
    )?;
    println!("remote object replied: {}", reply.as_str()?);

    // A one-way @AsyncMethod invocation: fire and forget.
    hello.call_async("hello_world", vec![Value::from("nobody listens")])?;

    // --- Part 2: a minimal personal cloud. ------------------------------
    // Metadata tier (PostgreSQL stand-in), storage tier (Swift stand-in),
    // and the SyncService bound on the same messaging layer.
    let store = SwiftStore::new(LatencyModel::instant());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::builder(&broker).store(meta.clone()).build();
    let _sync_server = service.bind(&broker)?;

    let workspace = provision_user(meta.as_ref(), "alice", "Documents")?;
    let laptop = DesktopClient::connect(
        &broker,
        &store,
        ClientConfig::new("alice", "laptop"),
        &workspace,
    )?;
    let phone = DesktopClient::connect(
        &broker,
        &store,
        ClientConfig::new("alice", "phone"),
        &workspace,
    )?;

    laptop.write_file("notes.txt", b"bought milk; fixed the middleware".to_vec())?;
    let synced = phone.wait_for_content(
        "notes.txt",
        b"bought milk; fixed the middleware",
        Duration::from_secs(5),
    );
    println!("phone synced notes.txt: {synced}");
    println!(
        "phone sees files: {:?} (version {:?})",
        phone.list_files(),
        phone.file_version("notes.txt")
    );
    assert!(synced);
    Ok(())
}
