//! Interactive personal-cloud shell: drive a complete StackSync deployment
//! (elastic SyncService pool, metadata tier, chunk store) from a REPL.
//!
//! ```sh
//! cargo run -p stacksync-examples --bin cli_demo              # interactive
//! cargo run -p stacksync-examples --bin cli_demo -- --script \
//!   "user alice; connect alice laptop; write laptop notes.txt hello; ls laptop"
//! ```

use metadata::{MetadataStore, WorkspaceId};
use objectmq::{Broker, RemoteBroker, Supervisor, SupervisorConfig};
use stacksync::{ClientConfig, DesktopClient, SyncService, SYNC_SERVICE_OID};
use std::collections::HashMap;
use std::io::{BufRead, Write as _};
use std::sync::Arc;
use std::time::Duration;
use storage::{LatencyModel, SwiftStore};

struct Cloud {
    broker: Broker,
    store: SwiftStore,
    meta: Arc<dyn MetadataStore>,
    service: SyncService,
    node: RemoteBroker,
    supervisor: Supervisor,
    devices: HashMap<String, DesktopClient>,
    workspaces: HashMap<String, WorkspaceId>,
}

impl Cloud {
    fn start() -> Result<Self, Box<dyn std::error::Error>> {
        let broker = Broker::in_process();
        let store = SwiftStore::new(LatencyModel::instant());
        let meta: Arc<dyn MetadataStore> = Arc::new(metadata::InMemoryStore::new());
        let service = SyncService::builder(&broker).store(meta.clone()).build();
        let node = RemoteBroker::start(broker.clone(), 1)?;
        node.register_factory(SYNC_SERVICE_OID, service.factory());
        let supervisor = Supervisor::start(
            broker.clone(),
            SupervisorConfig {
                oid: SYNC_SERVICE_OID,
                check_interval: Duration::from_millis(100),
                command_timeout: Duration::from_millis(800),
                ..Default::default()
            },
        )?;
        supervisor.set_target(1);
        Ok(Cloud {
            broker,
            store,
            meta,
            service,
            node,
            supervisor,
            devices: HashMap::new(),
            workspaces: HashMap::new(),
        })
    }

    fn device(&self, name: &str) -> Result<&DesktopClient, String> {
        self.devices
            .get(name)
            .ok_or_else(|| format!("no such device `{name}` (use: connect <user> <device>)"))
    }

    fn run(&mut self, line: &str) -> Result<String, String> {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] | ["#", ..] => Ok(String::new()),
            ["help"] => Ok(HELP.to_string()),
            ["user", name] => {
                let ws = stacksync::provision_user(self.meta.as_ref(), name, "Home")
                    .map_err(|e| e.to_string())?;
                self.workspaces.insert(name.to_string(), ws.clone());
                Ok(format!("user `{name}` created with workspace {ws}"))
            }
            ["connect", user, device] => {
                let ws = self
                    .workspaces
                    .get(*user)
                    .ok_or_else(|| format!("no such user `{user}`"))?
                    .clone();
                let client = DesktopClient::connect(
                    &self.broker,
                    &self.store,
                    ClientConfig::new(user, device).with_chunk_size(64 * 1024),
                    &ws,
                )
                .map_err(|e| e.to_string())?;
                self.devices.insert(device.to_string(), client);
                Ok(format!("device `{device}` connected to {user}'s workspace"))
            }
            ["write", device, path, rest @ ..] => {
                let content = rest.join(" ").into_bytes();
                self.device(device)?
                    .write_file(path, content)
                    .map_err(|e| e.to_string())?;
                Ok(format!("wrote {path}"))
            }
            ["cat", device, path] => self
                .device(device)?
                .read_file(path)
                .map(|b| String::from_utf8_lossy(&b).into_owned())
                .ok_or_else(|| format!("{path}: not found")),
            ["ls", device] => {
                let client = self.device(device)?;
                let mut out = String::new();
                for f in client.list_files() {
                    let v = client.file_version(&f).unwrap_or(0);
                    out.push_str(&format!("{f}  (v{v})\n"));
                }
                Ok(out.trim_end().to_string())
            }
            ["rm", device, path] => {
                self.device(device)?
                    .delete_file(path)
                    .map_err(|e| e.to_string())?;
                Ok(format!("deleted {path}"))
            }
            ["mv", device, from, to] => {
                self.device(device)?
                    .rename_file(from, to)
                    .map_err(|e| e.to_string())?;
                Ok(format!("renamed {from} -> {to}"))
            }
            ["share", owner, grantee] => {
                let ws = self
                    .workspaces
                    .get(*owner)
                    .ok_or_else(|| format!("no such user `{owner}`"))?
                    .clone();
                if !self.workspaces.contains_key(*grantee) {
                    self.meta.create_user(grantee).map_err(|e| e.to_string())?;
                }
                self.meta
                    .share_workspace(&ws, grantee)
                    .map_err(|e| e.to_string())?;
                let token = self
                    .store
                    .authenticate(owner, &format!("pw-{owner}"))
                    .map_err(|e| e.to_string())?;
                self.store
                    .grant_access(&token, &format!("{owner}-chunks"), grantee)
                    .map_err(|e| e.to_string())?;
                self.workspaces.insert(grantee.to_string(), ws);
                Ok(format!("{owner}'s workspace shared with {grantee}"))
            }
            ["stats", device] => {
                let s = self.device(device)?.stats();
                Ok(format!(
                    "control {}B sent / {}B recv | chunks up {} dedup {} down {} | conflicts {}",
                    s.control_sent_bytes(),
                    s.control_received_bytes(),
                    s.chunks_uploaded(),
                    s.chunks_deduplicated(),
                    s.chunks_downloaded(),
                    s.conflicts()
                ))
            }
            ["scale", n] => {
                let n: usize = n.parse().map_err(|_| "scale needs a number".to_string())?;
                self.supervisor.set_target(n);
                Ok(format!("pool target set to {n}"))
            }
            ["status"] => {
                let live = self.node.local_count(SYNC_SERVICE_OID);
                let depth = self
                    .broker
                    .messaging()
                    .queue_depth(SYNC_SERVICE_OID.as_str())
                    .unwrap_or(0);
                Ok(format!(
                    "pool: {live} instance(s) (target {}) | queue depth {depth} | commits {} | conflicts {}",
                    self.supervisor.target(),
                    self.service.commits_processed(),
                    self.service.conflicts_detected()
                ))
            }
            ["sync"] => {
                // Settle: wait for the commit counter to stop moving.
                let mut last = self.service.commits_processed();
                loop {
                    std::thread::sleep(Duration::from_millis(120));
                    let now = self.service.commits_processed();
                    if now == last {
                        return Ok(format!("settled at {now} commits"));
                    }
                    last = now;
                }
            }
            other => Err(format!(
                "unknown command {:?} — try `help`",
                other.join(" ")
            )),
        }
    }
}

const HELP: &str = "\
commands:
  user <name>                create a user with a Home workspace
  connect <user> <device>    attach a device to the user's workspace
  write <device> <path> <text…>
  cat <device> <path>
  ls <device>
  rm <device> <path>
  mv <device> <from> <to>
  share <owner> <grantee>    share workspace + chunk container
  stats <device>             client traffic counters
  scale <n>                  set SyncService pool target
  status                     pool / queue / commit counters
  sync                       wait until commits settle
  quit";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cloud = Cloud::start()?;
    let script: Option<String> = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--script")
            .and_then(|i| args.get(i + 1).cloned())
    };

    if let Some(script) = script {
        for cmd in script.split(';') {
            let cmd = cmd.trim();
            if cmd.is_empty() {
                continue;
            }
            println!("> {cmd}");
            match cloud.run(cmd) {
                Ok(out) if out.is_empty() => {}
                Ok(out) => println!("{out}"),
                Err(e) => println!("error: {e}"),
            }
        }
        return Ok(());
    }

    println!("StackSync personal-cloud shell — `help` for commands, `quit` to exit");
    let stdin = std::io::stdin();
    loop {
        print!("stacksync> ");
        std::io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        match cloud.run(line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
