//! Shared workspace scenario: three devices collaborate on one workspace —
//! dedup saves uploads, deletions propagate, and a concurrent edit ends in
//! a conflict copy exactly like Dropbox's policy (paper §4.1/§4.2.1).
//!
//! ```sh
//! cargo run -p stacksync-examples --bin shared_workspace
//! ```

use metadata::{InMemoryStore, MetadataStore};
use objectmq::Broker;
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService};
use std::sync::Arc;
use std::time::Duration;
use storage::{LatencyModel, SwiftStore};

const WAIT: Duration = Duration::from_secs(10);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let broker = Broker::in_process();
    let store = SwiftStore::new(LatencyModel::instant());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    // Inject the paper's measured 50 ms commit service time so concurrent
    // edits genuinely race (and conflict) like on a real deployment.
    let service = SyncService::builder(&broker)
        .store(meta.clone())
        .service_delay(Duration::from_millis(50))
        .build();
    let _server = service.bind(&broker)?;

    let ws = provision_user(meta.as_ref(), "team", "Project")?;
    let cfg = |device: &str| ClientConfig::new("team", device).with_chunk_size(64 * 1024);
    let laptop = DesktopClient::connect(&broker, &store, cfg("laptop"), &ws)?;
    let desktop = DesktopClient::connect(&broker, &store, cfg("desktop"), &ws)?;
    let tablet = DesktopClient::connect(&broker, &store, cfg("tablet"), &ws)?;

    // 1. Plain propagation.
    println!("1) laptop adds design.md …");
    laptop.write_file("design.md", b"# Design\nqueue all the things".to_vec())?;
    for c in [&desktop, &tablet] {
        assert!(c.wait_for_content("design.md", b"# Design\nqueue all the things", WAIT));
    }
    println!("   synced to desktop and tablet");

    // 2. Deduplication: the same payload under another name uploads zero
    //    new chunks.
    let big = vec![7u8; 256 * 1024];
    laptop.write_file("dataset.bin", big.clone())?;
    assert!(desktop.wait_for_content("dataset.bin", &big, WAIT));
    let before = laptop.stats().chunks_uploaded();
    laptop.write_file("dataset-copy.bin", big.clone())?;
    assert!(desktop.wait_for_content("dataset-copy.bin", &big, WAIT));
    println!(
        "2) duplicate file: {} new chunk uploads (dedup skipped {})",
        laptop.stats().chunks_uploaded() - before,
        laptop.stats().chunks_deduplicated()
    );

    // 3. Concurrent edit → conflict copy for the loser.
    println!("3) laptop and tablet edit notes.txt concurrently …");
    laptop.write_file("notes.txt", b"from laptop".to_vec())?;
    tablet.write_file("notes.txt", b"from tablet".to_vec())?;
    // Wait until everybody converges on the same file list.
    let converged = laptop.wait(WAIT, || {
        let a = laptop.list_files();
        a == desktop.list_files() && a == tablet.list_files() && a.len() >= 5
    });
    assert!(converged, "devices must converge");
    let conflicts: Vec<String> = laptop
        .list_files()
        .into_iter()
        .filter(|f| f.contains("conflicted copy"))
        .collect();
    println!("   conflict copies now on every device: {conflicts:?}");
    assert_eq!(conflicts.len(), 1);

    // 4. Deletion propagates as a tombstone.
    desktop.delete_file("dataset-copy.bin")?;
    assert!(laptop.wait_for_absent("dataset-copy.bin", WAIT));
    assert!(tablet.wait_for_absent("dataset-copy.bin", WAIT));
    println!("4) deletion propagated to all devices");

    println!(
        "\ntotals: service processed {} commits, {} conflicts detected",
        service.commits_processed(),
        service.conflicts_detected()
    );
    println!(
        "laptop control traffic: {} B sent / {} B received",
        laptop.stats().control_sent_bytes(),
        laptop.stats().control_received_bytes()
    );
    Ok(())
}
