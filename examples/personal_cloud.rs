//! Full personal cloud, live: remote brokers host SyncService instances, a
//! Supervisor enforces pool size and respawns crashed instances, clients
//! sync files through whatever pool currently exists — the paper's whole
//! architecture (Fig. 3 + Fig. 4) in one process.
//!
//! ```sh
//! cargo run -p stacksync-examples --bin personal_cloud
//! ```

use metadata::{InMemoryStore, MetadataStore};
use objectmq::{Broker, RemoteBroker, Supervisor, SupervisorConfig};
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService, SYNC_SERVICE_OID};
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::{LatencyModel, SwiftStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let broker = Broker::in_process();
    let store = SwiftStore::new(LatencyModel::instant());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::builder(&broker).store(meta.clone()).build();

    // Two slave nodes that can host SyncService instances.
    let node_a = RemoteBroker::start(broker.clone(), 1)?;
    let node_b = RemoteBroker::start(broker.clone(), 2)?;
    node_a.register_factory(SYNC_SERVICE_OID, service.factory());
    node_b.register_factory(SYNC_SERVICE_OID, service.factory());

    // The Supervisor enforces the pool size every 100 ms (1 s in the
    // paper; compressed here so the demo is snappy).
    let supervisor = Supervisor::start(
        broker.clone(),
        SupervisorConfig {
            oid: SYNC_SERVICE_OID,
            check_interval: Duration::from_millis(100),
            command_timeout: Duration::from_millis(800),
            ..Default::default()
        },
    )?;
    supervisor.set_target(2);
    wait_for(|| node_a.local_count(SYNC_SERVICE_OID) + node_b.local_count(SYNC_SERVICE_OID) == 2);
    println!(
        "pool up: node A hosts {}, node B hosts {} SyncService instance(s)",
        node_a.local_count(SYNC_SERVICE_OID),
        node_b.local_count(SYNC_SERVICE_OID)
    );

    // Clients connect; they never learn how many instances exist.
    let ws = provision_user(meta.as_ref(), "alice", "Documents")?;
    let laptop =
        DesktopClient::connect(&broker, &store, ClientConfig::new("alice", "laptop"), &ws)?;
    let phone = DesktopClient::connect(&broker, &store, ClientConfig::new("alice", "phone"), &ws)?;

    laptop.write_file("plan.txt", b"ship the reproduction".to_vec())?;
    assert!(phone.wait_for_content("plan.txt", b"ship the reproduction", Duration::from_secs(5)));
    println!("file synced through the elastic pool");

    // Demand spike: the provisioner (here: us) raises the target; the
    // Supervisor converges the pool.
    supervisor.set_target(4);
    wait_for(|| node_a.local_count(SYNC_SERVICE_OID) + node_b.local_count(SYNC_SERVICE_OID) == 4);
    println!("scaled out to 4 instances across the nodes");

    // Fault tolerance: crash an instance abruptly; the Supervisor notices
    // within one check interval and respawns it.
    assert!(node_a.crash_one(SYNC_SERVICE_OID) || node_b.crash_one(SYNC_SERVICE_OID));
    wait_for(|| node_a.local_count(SYNC_SERVICE_OID) + node_b.local_count(SYNC_SERVICE_OID) == 4);
    println!("instance crashed and was respawned by the Supervisor");

    // Work still flows throughout.
    phone.write_file("plan.txt", b"ship the reproduction, twice".to_vec())?;
    assert!(laptop.wait_for_content(
        "plan.txt",
        b"ship the reproduction, twice",
        Duration::from_secs(5)
    ));
    println!("sync keeps working through crashes and scaling");

    // Night falls; scale back in.
    supervisor.set_target(1);
    wait_for(|| node_a.local_count(SYNC_SERVICE_OID) + node_b.local_count(SYNC_SERVICE_OID) == 1);
    println!("scaled back in to 1 instance");

    supervisor.stop();
    node_a.stop();
    node_b.stop();
    println!("done: {} commits processed", service.commits_processed());
    Ok(())
}

fn wait_for(mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "condition not reached in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}
