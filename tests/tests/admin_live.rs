//! Live admin plane over a real TCP sync stack: a broker behind
//! [`BrokerServer`], a client dialing in over [`NetBroker`], a commit
//! crossing the wire — and every admin endpoint scraped over actual HTTP
//! while the stack is up. Asserts the Prometheus text is well-formed, the
//! health report carries the per-subsystem checks this stack registers,
//! the snapshot sequence number advances, and the trace of the wire commit
//! is serveable.

use metadata::{InMemoryStore, ItemMetadata, MetadataStore};
use mqsim::MessageBroker;
use net::{BrokerServer, NetBroker};
use objectmq::{Broker, BrokerConfig};
use stacksync::{SyncService, SYNC_SERVICE_OID};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use wire::Value;

/// Minimal HTTP/1.0 GET, returning (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has header/body split");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

#[test]
fn admin_endpoints_serve_a_live_tcp_stack() {
    let mq = MessageBroker::new();
    let server = BrokerServer::bind("127.0.0.1:0", mq.clone()).expect("bind server");
    let broker = Broker::new(mq, BrokerConfig::default());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    meta.create_user("alice").unwrap();
    let ws = meta.create_workspace("alice", "Docs").unwrap();
    let service = SyncService::builder(&broker).store(meta.clone()).build();
    let _handle = service.bind(&broker).unwrap();

    let admin = obs::serve_admin("127.0.0.1:0").expect("bind admin");
    let addr = admin.local_addr();

    // One commit over the actual TCP transport so the admin plane has a
    // cross-process-shaped trace and live counters to serve.
    let net = NetBroker::connect(server.local_addr()).expect("dial server");
    let remote = Broker::over(Arc::new(net), BrokerConfig::default());
    let proxy = remote.lookup(SYNC_SERVICE_OID).unwrap();
    let item = ItemMetadata::new_file(1, &ws, "a.txt", vec![], 16, "dev");
    proxy
        .call_sync(
            "commit_request",
            vec![
                Value::from(ws.0.as_str()),
                Value::from("dev"),
                Value::List(vec![stacksync::protocol::item_to_value(&item)]),
            ],
            Duration::from_secs(5),
            0,
        )
        .unwrap();

    // /metrics: 200, Prometheus text exposition with TYPE lines for
    // counters this run must have bumped.
    let (status, body) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "/metrics: {status}");
    assert!(body.contains("# TYPE mq_messages_published_total counter"));
    assert!(body.contains("omq_call_seconds{quantile=\"0.5\"}"));
    for line in body.lines() {
        assert!(
            line.starts_with('#') || line.contains(' '),
            "malformed exposition line: {line:?}"
        );
    }

    // /healthz: this stack's subsystems all report. The overall verdict is
    // deliberately not asserted — other tests in this process may have
    // registered failing checks of their own.
    let (status, body) = http_get(addr, "/healthz");
    assert!(
        status.contains("200") || status.contains("503"),
        "/healthz: {status}"
    );
    for check in ["net.server.", "mqsim.broker", "sync.service"] {
        assert!(body.contains(check), "missing {check} in {body}");
    }

    // /spans: the wire commit's trace is in the ring.
    let (status, body) = http_get(addr, "/spans");
    assert!(status.contains("200"), "/spans: {status}");
    assert!(body.contains("omq.call_sync"), "no call_sync span served");
    assert!(body.contains("handler.exec"), "no handler.exec span served");

    // /snapshot: sequence number strictly advances between scrapes.
    let (_, first) = http_get(addr, "/snapshot");
    let (_, second) = http_get(addr, "/snapshot");
    let seq = |body: &str| -> u64 {
        let tail = &body[body.find("\"seq\":").expect("seq field") + 6..];
        tail.chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("seq number")
    };
    assert!(seq(&second) > seq(&first), "snapshot seq did not advance");

    // /flightrecorder: the server's listen event is on the ring.
    let (status, body) = http_get(addr, "/flightrecorder");
    assert!(status.contains("200"), "/flightrecorder: {status}");
    assert!(
        body.contains("server listening"),
        "missing listen flight event"
    );

    // Unknown path: a 404, not a hang or a crash.
    let (status, _) = http_get(addr, "/nope");
    assert!(status.contains("404"), "unknown path: {status}");

    server.shutdown();
}
