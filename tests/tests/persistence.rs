//! Whole-deployment persistence: chunks on a disk backend plus a metadata
//! checkpoint let the entire "server side" restart without losing the
//! personal cloud — the deployment property a downstream user needs.

use metadata::{InMemoryStore, MetadataStore, WorkspaceId};
use objectmq::Broker;
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use storage::{DiskBackend, LatencyModel, SwiftStore};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stacksync-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn server_side_restart_preserves_the_cloud() {
    let chunk_root = temp_dir("chunks");
    let checkpoint =
        std::env::temp_dir().join(format!("stacksync-e2e-meta-{}.json", std::process::id()));
    let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 241) as u8).collect();
    let ws: WorkspaceId;

    // ---- First life of the deployment. -------------------------------
    {
        let broker = Broker::in_process();
        let backend = Arc::new(DiskBackend::open(&chunk_root).unwrap());
        let store = SwiftStore::with_backend(LatencyModel::instant(), backend);
        let meta = Arc::new(InMemoryStore::new());
        let service = SyncService::builder(&broker).store(meta.clone()).build();
        let _server = service.bind(&broker).unwrap();
        ws = provision_user(meta.as_ref(), "alice", "Docs").unwrap();
        let client = DesktopClient::connect(
            &broker,
            &store,
            ClientConfig::new("alice", "laptop").with_chunk_size(4096),
            &ws,
        )
        .unwrap();
        client.write_file("keep.bin", payload.clone()).unwrap();
        client.write_file("doomed.txt", b"gone".to_vec()).unwrap();
        assert!(client.wait(Duration::from_secs(10), || {
            service.commits_processed() >= 2
        }));
        client.delete_file("doomed.txt").unwrap();
        assert!(client.wait(Duration::from_secs(10), || {
            service.commits_processed() >= 3
        }));
        // Checkpoint the metadata tier; chunks are already on disk.
        meta.checkpoint(&checkpoint).unwrap();
        // Everything is dropped here: broker, service, clients — a crash.
    }

    // ---- Second life: fresh process state, same disk. ------------------
    {
        let broker = Broker::in_process();
        let backend = Arc::new(DiskBackend::open(&chunk_root).unwrap());
        let store = SwiftStore::with_backend(LatencyModel::instant(), backend);
        let meta = Arc::new(InMemoryStore::load_checkpoint(&checkpoint).unwrap());
        let service = SyncService::builder(&broker).store(meta.clone()).build();
        let _server = service.bind(&broker).unwrap();

        // The account/container are front-end state; re-register like a
        // restarted gateway would.
        let t = store.register_account("alice", "pw-alice");
        store.ensure_container(&t, "alice-chunks").unwrap();

        // A brand-new device joins and must reconstruct the workspace
        // purely from persisted chunks + restored metadata.
        let device = DesktopClient::connect(
            &broker,
            &store,
            ClientConfig::new("alice", "phone").with_chunk_size(4096),
            &ws,
        )
        .unwrap();
        assert_eq!(device.list_files(), vec!["keep.bin"]);
        assert_eq!(device.read_file("keep.bin").unwrap(), payload);
        assert_eq!(device.file_version("keep.bin"), Some(1));

        // And the cloud keeps working: new versions continue the chain.
        device
            .write_file("keep.bin", b"second life".to_vec())
            .unwrap();
        assert!(device.wait(Duration::from_secs(10), || {
            service.commits_processed() >= 1
        }));
        assert_eq!(meta.get_current_version_of("keep.bin", &ws), Some(2));
    }

    std::fs::remove_dir_all(&chunk_root).ok();
    std::fs::remove_file(&checkpoint).ok();
}

/// Test helper: look up an item version by path within a workspace.
trait VersionByPath {
    fn get_current_version_of(&self, path: &str, ws: &WorkspaceId) -> Option<u64>;
}

impl VersionByPath for InMemoryStore {
    fn get_current_version_of(&self, path: &str, ws: &WorkspaceId) -> Option<u64> {
        self.current_items(ws)
            .ok()?
            .into_iter()
            .find(|i| i.path == path)
            .map(|i| i.version)
    }
}
