//! Replays a generated workload trace through the *real* stack (client →
//! ObjectMQ → SyncService → metadata store, chunks → Swift store) and
//! verifies that (a) a second device converges to exactly the reference
//! file set and (b) the closed-form StackSync traffic model agrees with
//! the live measurements.

use baselines::{run_trace, FileSet, StackSyncModel};
use metadata::{InMemoryStore, MetadataStore};
use objectmq::Broker;
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService};
use std::sync::Arc;
use std::time::Duration;
use storage::{LatencyModel, SwiftStore};
use workload::{GeneratorConfig, Trace, TraceOp};

const CHUNK: usize = 16 * 1024;

fn test_trace() -> Trace {
    Trace::generate(&GeneratorConfig {
        snapshots: 30,
        adds_per_snapshot: 3.0,
        ..GeneratorConfig::test_scale()
    })
}

#[test]
fn trace_replay_converges_to_reference_fileset() {
    let trace = test_trace();
    let broker = Broker::in_process();
    let store = SwiftStore::new(LatencyModel::instant());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::builder(&broker).store(meta.clone()).build();
    let _server = service.bind(&broker).unwrap();
    let ws = provision_user(meta.as_ref(), "replay", "ws").unwrap();

    let writer = DesktopClient::connect(
        &broker,
        &store,
        ClientConfig::new("replay", "writer").with_chunk_size(CHUNK),
        &ws,
    )
    .unwrap();
    let observer = DesktopClient::connect(
        &broker,
        &store,
        ClientConfig::new("replay", "observer").with_chunk_size(CHUNK),
        &ws,
    )
    .unwrap();

    // Execute the trace while maintaining the reference state.
    let mut reference = FileSet::new();
    let mut executed = 0;
    for op in &trace.ops {
        let (_, new) = reference.apply(op);
        match op {
            TraceOp::Add { path, .. } | TraceOp::Update { path, .. } => {
                writer.write_file(path, new.unwrap()).unwrap();
            }
            TraceOp::Remove { path } => writer.delete_file(path).unwrap(),
        }
        executed += 1;
    }
    assert!(
        writer.wait(Duration::from_secs(60), || {
            service.commits_processed() >= executed
        }),
        "service must process all {executed} commits, got {}",
        service.commits_processed()
    );

    // The observer must converge to exactly the reference live set.
    assert!(
        observer.wait(Duration::from_secs(60), || {
            observer.list_files().len() == reference.len()
        }),
        "observer has {} files, reference {}",
        observer.list_files().len(),
        reference.len()
    );
    // Contents must match byte-for-byte.
    let mut check = FileSet::new();
    for op in &trace.ops {
        check.apply(op);
    }
    for path in observer.list_files() {
        let local = observer.read_file(&path).unwrap();
        // Rebuild expected content from a fresh reference replay.
        let expected = {
            let mut fs = FileSet::new();
            let mut latest: Option<Vec<u8>> = None;
            for op in &trace.ops {
                let (_, new) = fs.apply(op);
                if op.path() == path {
                    latest = new;
                }
            }
            latest.expect("path must exist in reference")
        };
        assert_eq!(local, expected, "content mismatch for {path}");
    }
}

#[test]
fn live_traffic_agrees_with_protocol_model() {
    let trace = test_trace();

    // Model prediction.
    let mut model = StackSyncModel::with_chunk_size(CHUNK);
    let report = run_trace(&mut model, &trace, 1);

    // Live measurement.
    let broker = Broker::in_process();
    let store = SwiftStore::new(LatencyModel::instant());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::builder(&broker).store(meta.clone()).build();
    let _server = service.bind(&broker).unwrap();
    let ws = provision_user(meta.as_ref(), "model", "ws").unwrap();
    let client = DesktopClient::connect(
        &broker,
        &store,
        ClientConfig::new("model", "dev").with_chunk_size(CHUNK),
        &ws,
    )
    .unwrap();

    let mut reference = FileSet::new();
    let mut executed = 0;
    for op in &trace.ops {
        let (_, new) = reference.apply(op);
        match op {
            TraceOp::Add { path, .. } | TraceOp::Update { path, .. } => {
                client.write_file(path, new.unwrap()).unwrap();
            }
            TraceOp::Remove { path } => client.delete_file(path).unwrap(),
        }
        executed += 1;
    }
    assert!(client.wait(Duration::from_secs(60), || {
        service.commits_processed() >= executed
    }));

    let live_storage = store.traffic().uploaded_bytes();
    let model_storage = report.storage_total();
    let ratio = live_storage as f64 / model_storage as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "model and live storage traffic must agree within 25%: live {live_storage}, model {model_storage}"
    );

    // Control traffic: compare the *per-operation* metadata volume. The
    // model's per-exchange fixed cost stands in for TLS/HTTP session
    // overhead that the in-process transport simply does not have, so it
    // is excluded here.
    let live_control = client.stats().control_bytes();
    let model_control = report.adds.control + report.updates.control + report.removes.control;
    let ratio = live_control as f64 / model_control as f64;
    assert!(
        (0.2..4.0).contains(&ratio),
        "per-op control traffic magnitudes must agree: live {live_control}, model {model_control}"
    );
}
