//! Chaos tests: the paper's fault-tolerance claims exercised end-to-end —
//! instances crash in a loop under live traffic (the Fig. 8(f) scenario on
//! the real stack), and the JSON transport swap works across the whole
//! protocol.

use metadata::{InMemoryStore, MetadataStore};
use mqsim::MessageBroker;
use objectmq::{Broker, BrokerConfig, RemoteBroker, Supervisor, SupervisorConfig};
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService, SYNC_SERVICE_OID};
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::{LatencyModel, SwiftStore};

#[test]
fn crash_loop_under_live_traffic_loses_no_commit() {
    let broker = Broker::in_process();
    let store = SwiftStore::new(LatencyModel::instant());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::new(meta.clone(), broker.clone());

    let node = RemoteBroker::start(broker.clone(), 1).unwrap();
    node.register_factory(SYNC_SERVICE_OID, service.factory());
    let supervisor = Supervisor::start(
        broker.clone(),
        SupervisorConfig {
            oid: SYNC_SERVICE_OID.to_string(),
            check_interval: Duration::from_millis(60),
            command_timeout: Duration::from_millis(800),
        },
    )
    .unwrap();
    supervisor.set_target(2);
    let deadline = Instant::now() + Duration::from_secs(5);
    while node.local_count(SYNC_SERVICE_OID) < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }

    let ws = provision_user(meta.as_ref(), "chaos", "ws").unwrap();
    let writer = DesktopClient::connect(
        &broker,
        &store,
        ClientConfig::new("chaos", "writer").with_chunk_size(4096),
        &ws,
    )
    .unwrap();
    let reader = DesktopClient::connect(
        &broker,
        &store,
        ClientConfig::new("chaos", "reader").with_chunk_size(4096),
        &ws,
    )
    .unwrap();

    // Crash an instance every 100 ms while 60 commits flow.
    let total = 60usize;
    let chaos_broker = node;
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = stop.clone();
    let chaos = std::thread::spawn(move || {
        while !stop2.load(std::sync::atomic::Ordering::Acquire) {
            chaos_broker.crash_one(SYNC_SERVICE_OID);
            std::thread::sleep(Duration::from_millis(100));
        }
        chaos_broker
    });

    for i in 0..total {
        writer
            .write_file(&format!("doc-{i}.txt"), format!("payload {i}").into_bytes())
            .unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }

    // Every commit must eventually be processed and every file must reach
    // the reader, despite the crash loop (queued redelivery + supervisor
    // respawn).
    assert!(
        writer.wait(Duration::from_secs(30), || {
            service.commits_processed() as usize >= total
        }),
        "all {total} commits must survive the crash loop, got {}",
        service.commits_processed()
    );
    assert!(
        reader.wait(Duration::from_secs(30), || reader.list_files().len()
            == total),
        "reader must see all files, has {}",
        reader.list_files().len()
    );

    stop.store(true, std::sync::atomic::Ordering::Release);
    let node = chaos.join().unwrap();
    supervisor.stop();
    node.stop();
}

#[test]
fn full_stack_works_over_json_transport() {
    // The transport is pluggable (paper: Kryo / Java serialization /
    // JSON). Swap in the JSON codec and run the whole sync protocol.
    let config = BrokerConfig {
        codec: Arc::new(wire::JsonCodec),
        ..BrokerConfig::default()
    };
    let broker = Broker::new(MessageBroker::new(), config);
    let store = SwiftStore::new(LatencyModel::instant());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::new(meta.clone(), broker.clone());
    let _server = service.bind(&broker).unwrap();
    let ws = provision_user(meta.as_ref(), "json", "ws").unwrap();
    let a = DesktopClient::connect(
        &broker,
        &store,
        ClientConfig::new("json", "a").with_chunk_size(4096),
        &ws,
    )
    .unwrap();
    let b = DesktopClient::connect(
        &broker,
        &store,
        ClientConfig::new("json", "b").with_chunk_size(4096),
        &ws,
    )
    .unwrap();

    let payload: Vec<u8> = (0..9000u32).map(|i| (i % 251) as u8).collect();
    a.write_file("binary.dat", payload.clone()).unwrap();
    assert!(
        b.wait_for_content("binary.dat", &payload, Duration::from_secs(5)),
        "binary content must survive the JSON transport ($bytes wrapping)"
    );
    a.delete_file("binary.dat").unwrap();
    assert!(b.wait_for_absent("binary.dat", Duration::from_secs(5)));
}

#[test]
fn broker_cluster_failover_preserves_published_commits() {
    // mqsim's mirrored cluster: publish commits, kill the primary, and
    // consume everything from the promoted mirror.
    use mqsim::{BrokerCluster, Message, QueueOptions};
    let cluster = BrokerCluster::new(3);
    cluster
        .declare_queue("commits", QueueOptions::default())
        .unwrap();
    for i in 0..20u8 {
        cluster
            .publish_to_queue("commits", Message::from_bytes(vec![i]))
            .unwrap();
    }
    // Consume 5 on the primary.
    {
        let consumer = cluster.subscribe("commits").unwrap();
        for _ in 0..5 {
            let (_m, ack) = consumer.recv_timeout(Duration::from_secs(1)).unwrap();
            ack();
        }
    }
    cluster.fail_primary().unwrap();
    let consumer = cluster.subscribe("commits").unwrap();
    let mut survived = 0;
    while let Ok((_m, ack)) = consumer.recv_timeout(Duration::from_millis(200)) {
        ack();
        survived += 1;
    }
    assert_eq!(survived, 15, "the 15 unacked commits must survive failover");
}
