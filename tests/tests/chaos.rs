//! Chaos tests: the paper's fault-tolerance claims exercised end-to-end.
//!
//! The crash-loop scenario (Fig. 8(f): instances killed under live
//! traffic) runs on the `faultsim` harness: a single-threaded, seeded
//! simulation driving the real broker, SyncService dispatch and metadata
//! store. No threads, no sleeps, no wall clock — same seed, same run,
//! every time.
//!
//! # Replaying a failure
//!
//! When one of the seeded tests fails it prints the seed and the full
//! fault-schedule + history transcript. To replay that exact run:
//!
//! ```text
//! cargo run -p faultsim --bin explore -- <seed> 1
//! ```
//!
//! or in a test / debugger: `faultsim::run_seed(<seed>)`. The transcript
//! of the failing run is byte-identical on every replay.
//!
//! The Supervisor-pacing test uses a [`mqsim::VirtualClock`]: real threads,
//! but time only moves when the test advances it.

use faultsim::{run_seed_with, FaultRates, SimConfig};
use integration_tests::{became_true, wait_until};
use metadata::{InMemoryStore, MetadataStore};
use mqsim::{MessageBroker, VirtualClock};
use objectmq::{Broker, BrokerConfig, RemoteBroker, Supervisor, SupervisorConfig};
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService, SYNC_SERVICE_OID};
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::{LatencyModel, SwiftStore};

/// Fixed seeds for the deterministic crash-loop run. Chosen arbitrarily;
/// any failure prints the seed for replay (see module docs).
const CRASH_LOOP_SEEDS: [u64; 3] = [0xC0FFEE, 17, 9001];

#[test]
fn crash_loop_under_live_traffic_loses_no_commit() {
    // The Fig. 8(f) scenario, deterministically: 3 writer devices race 60
    // commits (20 each, half on one contended file) while the serving
    // instance crashes mid-request — before dispatch and before ack — and
    // the broker drops, duplicates and reorders deliveries. The checker
    // proves no accepted commit is lost, versions linearize with no
    // double-commit, and push notifications tell the truth.
    let config = SimConfig {
        writers: 3,
        commits_per_writer: 20,
        rates: FaultRates::chaotic(),
        crash_permille: 250,
        ..SimConfig::default()
    };
    let started = Instant::now();
    for seed in CRASH_LOOP_SEEDS {
        let report = match run_seed_with(seed, &config) {
            Ok(r) => r,
            Err(failure) => panic!("{failure}"),
        };
        assert_eq!(report.submissions, 60, "seed {seed}");
        assert!(
            report.crashes > 0,
            "seed {seed}: a 25% crash rate must crash instances"
        );
        assert!(
            report.faults_injected > 0,
            "seed {seed}: chaotic rates must perturb delivery"
        );
        // The determinism contract: replaying the seed reproduces the
        // schedule and history exactly.
        let replay = run_seed_with(seed, &config).expect("replay passes");
        assert_eq!(report.fingerprint(), replay.fingerprint(), "seed {seed}");
        assert_eq!(report.fault_trace, replay.fault_trace, "seed {seed}");
    }
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "three seeded crash-loop runs (with replays) must finish in <2s, took {:?}",
        started.elapsed()
    );
}

#[test]
fn supervisor_pacing_runs_on_the_virtual_clock() {
    // The Supervisor's check interval is pure clock arithmetic now: with a
    // VirtualClock and a one-hour interval, a crashed instance is NOT
    // respawned until the test advances time — and then immediately is,
    // without anyone sleeping an hour.
    let broker = Broker::in_process();
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::builder(&broker).store(meta.clone()).build();
    let node = RemoteBroker::start(broker.clone(), 1).unwrap();
    node.register_factory(SYNC_SERVICE_OID, service.factory());

    let clock = VirtualClock::new();
    let supervisor = Supervisor::start(
        broker.clone(),
        SupervisorConfig {
            oid: SYNC_SERVICE_OID,
            check_interval: Duration::from_secs(3600),
            command_timeout: Duration::from_millis(800),
            clock: Arc::new(clock.clone()),
        },
    )
    .unwrap();

    // The first pass runs before the first clocked wait: pool reaches 1.
    wait_until("initial instance spawned", Duration::from_secs(5), || {
        node.local_count(SYNC_SERVICE_OID) == 1
    });

    // Crash it. With virtual time frozen, the supervisor must NOT notice.
    assert!(node.crash_one(SYNC_SERVICE_OID));
    assert!(
        !became_true(Duration::from_millis(400), || {
            node.local_count(SYNC_SERVICE_OID) == 1
        }),
        "respawn happened while the virtual clock was frozen"
    );

    // Advance one interval: the next check fires and respawns, no hour
    // of wall time involved.
    clock.advance(Duration::from_secs(3600));
    wait_until(
        "crashed instance respawned after clock advance",
        Duration::from_secs(5),
        || node.local_count(SYNC_SERVICE_OID) == 1,
    );

    // Closing the clock releases the supervisor's wait so stop() joins
    // promptly instead of stranding on frozen time.
    clock.close();
    supervisor.stop();
    node.stop();
}

#[test]
fn full_stack_works_over_json_transport() {
    // The transport is pluggable (paper: Kryo / Java serialization /
    // JSON). Swap in the JSON codec and run the whole sync protocol.
    let config = BrokerConfig {
        codec: Arc::new(wire::JsonCodec),
        ..BrokerConfig::default()
    };
    let broker = Broker::new(MessageBroker::new(), config);
    let store = SwiftStore::new(LatencyModel::instant());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::builder(&broker).store(meta.clone()).build();
    let _server = service.bind(&broker).unwrap();
    let ws = provision_user(meta.as_ref(), "json", "ws").unwrap();
    let a = DesktopClient::connect(
        &broker,
        &store,
        ClientConfig::new("json", "a").with_chunk_size(4096),
        &ws,
    )
    .unwrap();
    let b = DesktopClient::connect(
        &broker,
        &store,
        ClientConfig::new("json", "b").with_chunk_size(4096),
        &ws,
    )
    .unwrap();

    let payload: Vec<u8> = (0..9000u32).map(|i| (i % 251) as u8).collect();
    a.write_file("binary.dat", payload.clone()).unwrap();
    assert!(
        b.wait_for_content("binary.dat", &payload, Duration::from_secs(5)),
        "binary content must survive the JSON transport ($bytes wrapping)"
    );
    a.delete_file("binary.dat").unwrap();
    assert!(b.wait_for_absent("binary.dat", Duration::from_secs(5)));
}

#[test]
fn broker_cluster_failover_preserves_published_commits() {
    // mqsim's mirrored cluster: publish commits, kill the primary, and
    // consume everything from the promoted mirror.
    use mqsim::{BrokerCluster, Message, QueueOptions};
    let cluster = BrokerCluster::new(3);
    cluster
        .declare_queue("commits", QueueOptions::default())
        .unwrap();
    for i in 0..20u8 {
        cluster
            .publish_to_queue("commits", Message::from_bytes(vec![i]))
            .unwrap();
    }
    // Consume 5 on the primary.
    {
        let consumer = cluster.subscribe("commits").unwrap();
        for _ in 0..5 {
            let (_m, ack) = consumer.recv_timeout(Duration::from_secs(1)).unwrap();
            ack();
        }
    }
    cluster.fail_primary().unwrap();
    let consumer = cluster.subscribe("commits").unwrap();
    let mut survived = 0;
    while let Ok((_m, ack)) = consumer.recv_timeout(Duration::from_millis(200)) {
        ack();
        survived += 1;
    }
    assert_eq!(survived, 15, "the 15 unacked commits must survive failover");
}
