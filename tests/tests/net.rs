//! End-to-end sync over the real TCP transport (`crates/net`): the broker
//! lives behind a [`BrokerServer`], the desktop clients dial it with
//! [`NetBroker`], and the full workspace protocol — commits, push
//! notifications, deletions — must behave exactly as in-process, including
//! across a mid-traffic loss of every client socket.

use metadata::{InMemoryStore, MetadataStore};
use mqsim::MessageBroker;
use net::{BrokerServer, NetBroker, NetConfig};
use objectmq::{Broker, BrokerConfig};
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService};
use std::sync::Arc;
use std::time::Duration;
use storage::{LatencyModel, SwiftStore};

const WAIT: Duration = Duration::from_secs(15);

struct TcpStack {
    server: BrokerServer,
    meta: Arc<dyn MetadataStore>,
    store: SwiftStore,
    _service_handle: objectmq::ServerHandle,
}

impl TcpStack {
    /// Broker server + SyncService on the server side; clients must dial in.
    fn start() -> TcpStack {
        let mq = MessageBroker::new();
        let server = BrokerServer::bind("127.0.0.1:0", mq.clone()).expect("bind server");
        let broker = Broker::new(mq, BrokerConfig::default());
        let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
        let service = SyncService::new(meta.clone(), broker.clone());
        let service_handle = service.bind(&broker).expect("bind service");
        TcpStack {
            server,
            meta,
            store: SwiftStore::new(LatencyModel::instant()),
            _service_handle: service_handle,
        }
    }

    /// Dials the broker server and connects a desktop client through it.
    fn connect_client(
        &self,
        user: &str,
        device: &str,
        ws: &metadata::WorkspaceId,
    ) -> DesktopClient {
        let mq = NetBroker::connect_with(
            self.server.local_addr(),
            NetConfig {
                // Tight heartbeat so reconnects happen well inside WAIT.
                heartbeat: Duration::from_millis(200),
                ..NetConfig::default()
            },
        )
        .expect("dial broker server");
        let broker = Broker::over(Arc::new(mq), BrokerConfig::default());
        DesktopClient::connect(&broker, &self.store, ClientConfig::new(user, device), ws)
            .expect("connect client")
    }
}

#[test]
fn two_clients_sync_over_tcp_loopback() {
    let stack = TcpStack::start();
    let ws = provision_user(stack.meta.as_ref(), "alice", "ws").unwrap();
    let writer = stack.connect_client("alice", "writer", &ws);
    let reader = stack.connect_client("alice", "reader", &ws);

    writer.write_file("a.txt", b"created".to_vec()).unwrap();
    writer.write_file("b.txt", b"v1".to_vec()).unwrap();
    writer.write_file("b.txt", b"v2".to_vec()).unwrap();
    assert!(
        reader.wait_for_content("a.txt", b"created", WAIT),
        "ADD did not propagate over TCP"
    );
    assert!(
        reader.wait_for_content("b.txt", b"v2", WAIT),
        "UPDATE did not propagate over TCP"
    );

    writer.delete_file("a.txt").unwrap();
    assert!(
        reader.wait_for_absent("a.txt", WAIT),
        "DELETE did not propagate over TCP"
    );
    assert!(reader.stats().notifications() >= 4);
}

#[test]
fn sync_rides_through_a_server_socket_kill() {
    let stack = TcpStack::start();
    let ws = provision_user(stack.meta.as_ref(), "bob", "ws").unwrap();
    let writer = stack.connect_client("bob", "writer", &ws);
    let reader = stack.connect_client("bob", "reader", &ws);
    let reconnects = obs::counter("net.client.reconnects");

    // Phase 1: baseline traffic, fully confirmed on the reader.
    for i in 0..3 {
        writer
            .write_file(&format!("pre{i}.dat"), vec![i as u8; 4096])
            .unwrap();
    }
    for i in 0..3 {
        assert!(
            reader.wait_for_content(&format!("pre{i}.dat"), &vec![i as u8; 4096], WAIT),
            "pre{i} did not sync before the partition"
        );
    }

    // Phase 2: hard-close every client socket mid-session and keep
    // committing immediately — writes must ride the reconnect via the
    // client's transparent retry, and the reader's notification listener
    // must resubscribe on its new connection.
    let reconnects_before = reconnects.value();
    stack.server.disconnect_all();
    for i in 0..3 {
        writer
            .write_file(&format!("post{i}.dat"), vec![0x40 + i as u8; 4096])
            .unwrap();
    }
    for i in 0..3 {
        assert!(
            reader.wait_for_content(&format!("post{i}.dat"), &vec![0x40 + i as u8; 4096], WAIT),
            "post{i} lost across the partition: an acked commit disappeared"
        );
    }
    assert!(
        reconnects.value() > reconnects_before,
        "clients never reconnected, the partition was not injected"
    );

    // Every file (pre- and post-partition) is in the server metadata: no
    // acked commit was lost.
    let committed = stack.meta.current_items(&ws).unwrap();
    let mut paths: Vec<&str> = committed
        .iter()
        .filter(|i| !i.is_deleted)
        .map(|i| i.path.as_str())
        .collect();
    paths.sort_unstable();
    assert_eq!(
        paths,
        vec![
            "post0.dat",
            "post1.dat",
            "post2.dat",
            "pre0.dat",
            "pre1.dat",
            "pre2.dat"
        ]
    );
}
