//! End-to-end sync over the real TCP transport (`crates/net`): the broker
//! lives behind a [`BrokerServer`], the desktop clients dial it with
//! [`NetBroker`], and the full workspace protocol — commits, push
//! notifications, deletions — must behave exactly as in-process, including
//! across a mid-traffic loss of every client socket.
//!
//! The reconnect edge cases run the client through a [`net::FaultProxy`]
//! — the byte-level choke point of the fault-injection harness — which
//! can stall forwarding (black-hole partition), sever every link
//! mid-frame, and corrupt bytes in flight. See `crates/faultsim` for the
//! broker-level half of the harness and DESIGN.md §Testing for how the
//! two fit together.

use integration_tests::wait_until;
use metadata::{InMemoryStore, MetadataStore};
use mqsim::{Message, MessageBroker, Messaging as _, QueueOptions};
use net::{BrokerServer, FaultProxy, NetBroker, NetConfig};
use objectmq::{Broker, BrokerConfig};
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService};
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::{LatencyModel, SwiftStore};

const WAIT: Duration = Duration::from_secs(15);

struct TcpStack {
    server: BrokerServer,
    meta: Arc<dyn MetadataStore>,
    store: SwiftStore,
    _service_handle: objectmq::ServerHandle,
}

impl TcpStack {
    /// Broker server + SyncService on the server side; clients must dial in.
    fn start() -> TcpStack {
        let mq = MessageBroker::new();
        let server = BrokerServer::bind("127.0.0.1:0", mq.clone()).expect("bind server");
        let broker = Broker::new(mq, BrokerConfig::default());
        let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
        let service = SyncService::builder(&broker).store(meta.clone()).build();
        let service_handle = service.bind(&broker).expect("bind service");
        TcpStack {
            server,
            meta,
            store: SwiftStore::new(LatencyModel::instant()),
            _service_handle: service_handle,
        }
    }

    /// Dials the broker server and connects a desktop client through it.
    fn connect_client(
        &self,
        user: &str,
        device: &str,
        ws: &metadata::WorkspaceId,
    ) -> DesktopClient {
        let mq = NetBroker::connect_with(
            self.server.local_addr(),
            NetConfig {
                // Tight heartbeat so reconnects happen well inside WAIT.
                heartbeat: Duration::from_millis(200),
                ..NetConfig::default()
            },
        )
        .expect("dial broker server");
        let broker = Broker::over(Arc::new(mq), BrokerConfig::default());
        DesktopClient::connect(&broker, &self.store, ClientConfig::new(user, device), ws)
            .expect("connect client")
    }
}

#[test]
fn two_clients_sync_over_tcp_loopback() {
    let stack = TcpStack::start();
    let ws = provision_user(stack.meta.as_ref(), "alice", "ws").unwrap();
    let writer = stack.connect_client("alice", "writer", &ws);
    let reader = stack.connect_client("alice", "reader", &ws);

    writer.write_file("a.txt", b"created".to_vec()).unwrap();
    writer.write_file("b.txt", b"v1".to_vec()).unwrap();
    writer.write_file("b.txt", b"v2".to_vec()).unwrap();
    assert!(
        reader.wait_for_content("a.txt", b"created", WAIT),
        "ADD did not propagate over TCP"
    );
    assert!(
        reader.wait_for_content("b.txt", b"v2", WAIT),
        "UPDATE did not propagate over TCP"
    );

    writer.delete_file("a.txt").unwrap();
    assert!(
        reader.wait_for_absent("a.txt", WAIT),
        "DELETE did not propagate over TCP"
    );
    assert!(reader.stats().notifications() >= 4);
}

#[test]
fn sync_rides_through_a_server_socket_kill() {
    let stack = TcpStack::start();
    let ws = provision_user(stack.meta.as_ref(), "bob", "ws").unwrap();
    let writer = stack.connect_client("bob", "writer", &ws);
    let reader = stack.connect_client("bob", "reader", &ws);
    let reconnects = obs::counter("net.client.reconnects");

    // Phase 1: baseline traffic, fully confirmed on the reader.
    for i in 0..3 {
        writer
            .write_file(&format!("pre{i}.dat"), vec![i as u8; 4096])
            .unwrap();
    }
    for i in 0..3 {
        assert!(
            reader.wait_for_content(&format!("pre{i}.dat"), &vec![i as u8; 4096], WAIT),
            "pre{i} did not sync before the partition"
        );
    }

    // Phase 2: hard-close every client socket mid-session and keep
    // committing immediately — writes must ride the reconnect via the
    // client's transparent retry, and the reader's notification listener
    // must resubscribe on its new connection.
    let reconnects_before = reconnects.value();
    stack.server.disconnect_all();
    for i in 0..3 {
        writer
            .write_file(&format!("post{i}.dat"), vec![0x40 + i as u8; 4096])
            .unwrap();
    }
    for i in 0..3 {
        assert!(
            reader.wait_for_content(&format!("post{i}.dat"), &vec![0x40 + i as u8; 4096], WAIT),
            "post{i} lost across the partition: an acked commit disappeared"
        );
    }
    assert!(
        reconnects.value() > reconnects_before,
        "clients never reconnected, the partition was not injected"
    );

    // Every file (pre- and post-partition) is in the server metadata: no
    // acked commit was lost.
    let committed = stack.meta.current_items(&ws).unwrap();
    let mut paths: Vec<&str> = committed
        .iter()
        .filter(|i| !i.is_deleted)
        .map(|i| i.path.as_str())
        .collect();
    paths.sort_unstable();
    assert_eq!(
        paths,
        vec![
            "post0.dat",
            "post1.dat",
            "post2.dat",
            "pre0.dat",
            "pre1.dat",
            "pre2.dat"
        ]
    );
}

/// Raw broker behind a fault proxy: `mq` is the server-side truth the
/// tests assert against, `client` dials through the proxy.
fn proxied_stack() -> (MessageBroker, BrokerServer, FaultProxy, NetBroker) {
    let mq = MessageBroker::new();
    let server = BrokerServer::bind("127.0.0.1:0", mq.clone()).expect("bind server");
    let proxy = FaultProxy::start(server.local_addr()).expect("start proxy");
    let client = NetBroker::connect_with(
        proxy.local_addr(),
        NetConfig {
            // Loose enough that CPU contention from parallel tests cannot
            // fake a dead peer: every disconnect in these tests is forced
            // through the proxy (sever/corrupt), detected by socket error,
            // not by heartbeat.
            heartbeat: Duration::from_millis(500),
            op_timeout: Duration::from_secs(10),
            ..NetConfig::default()
        },
    )
    .expect("dial through proxy");
    (mq, server, proxy, client)
}

#[test]
fn subscribe_survives_partition_that_eats_the_reply() {
    // The nasty window: the subscribe request is absorbed by a black-hole
    // partition (stalled proxy), then the link is severed while the frame
    // is in flight — the reply never existed. The client's retry layer
    // must carry the pending subscribe across the reconnect, and the new
    // subscription must actually deliver.
    let (mq, server, mut proxy, client) = proxied_stack();
    client.declare_queue("q", QueueOptions::default()).unwrap();

    proxy.set_stalled(true);
    let subscriber = client.clone();
    let pending = std::thread::spawn(move || subscriber.subscribe("q"));
    // Give the subscribe frame time to be swallowed by the stall, then
    // cut the link: the held bytes are lost, like a packet in flight when
    // a partition hits.
    std::thread::sleep(Duration::from_millis(200));
    assert!(!pending.is_finished(), "subscribe must hang in the stall");
    proxy.sever_all();
    proxy.set_stalled(false);

    let consumer = pending
        .join()
        .unwrap()
        .expect("subscribe must ride the reconnect");
    mq.publish_to_queue("q", Message::from_bytes(b"after-partition".to_vec()))
        .unwrap();
    let delivery = consumer
        .recv_timeout(Duration::from_secs(10))
        .expect("the re-established subscription must deliver");
    assert_eq!(delivery.message.payload(), b"after-partition");
    delivery.ack();
    // If an unlucky reconnect races the ack (making it generation-stale),
    // the server requeues and redelivers — ack the retry too; the message
    // must end up acked exactly once either way.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = mq.queue_stats("q").unwrap();
        if stats.acked == 1 && stats.unacked == 0 && stats.depth == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for the ack to land server-side: {stats:?}"
        );
        if let Ok(retry) = consumer.recv_timeout(Duration::from_millis(100)) {
            assert_eq!(retry.message.payload(), b"after-partition");
            retry.ack();
        }
    }
    assert!(proxy.links_opened() >= 2, "a reconnect must have happened");
    client.close();
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn stale_generation_delivery_acks_are_inert_after_reconnect() {
    // A delivery is in the client's hands when the connection dies. The
    // server requeues it (requeue-on-disconnect) and redelivers on the
    // resubscribed consumer under a new connection generation. Resolving
    // the *old* delivery must be a no-op — its server-side tag is gone and
    // may have been reassigned — and exactly one ack must count.
    let (mq, server, mut proxy, client) = proxied_stack();
    client.declare_queue("q", QueueOptions::default()).unwrap();
    let consumer = client.subscribe("q").unwrap();
    mq.publish_to_queue("q", Message::from_bytes(b"once".to_vec()))
        .unwrap();

    let stale = consumer
        .recv_timeout(Duration::from_secs(5))
        .expect("first delivery");
    assert!(!stale.redelivered);

    // Kill every link while the delivery is unacked; the client reconnects
    // and resubscribes, the server redelivers.
    proxy.sever_all();
    let fresh = consumer
        .recv_timeout(Duration::from_secs(10))
        .expect("redelivery after reconnect");
    assert!(fresh.redelivered, "the retry must be flagged redelivered");
    assert_eq!(fresh.message.payload(), b"once");

    // Acking the stale delivery now must do nothing: its generation is
    // behind the connection's.
    stale.ack();
    fresh.ack();
    wait_until(
        "exactly one ack to land server-side",
        Duration::from_secs(5),
        || {
            let stats = mq.queue_stats("q").unwrap();
            stats.acked == 1 && stats.unacked == 0 && stats.depth == 0
        },
    );
    assert!(proxy.links_opened() >= 2);
    client.close();
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn corrupted_length_prefix_disconnects_instead_of_allocating() {
    // Corrupt the next four server→client bytes: the length prefix of the
    // next reply frame becomes a ~4 GiB claim. The frame layer must
    // reject it against MAX_FRAME *before* allocating and drop the
    // connection; the client then reconnects and the retried request
    // succeeds. A client that trusted the prefix would try to read (and
    // buffer) gigabytes that never arrive, and hang until op-timeout.
    let (mq, server, mut proxy, client) = proxied_stack();
    client.declare_queue("q", QueueOptions::default()).unwrap();
    mq.publish_to_queue("q", Message::from_bytes(b"x".to_vec()))
        .unwrap();
    let links_before = proxy.links_opened();

    proxy.corrupt_to_client(4);
    // This request's reply is the corrupted frame; the client must tear
    // the connection down and transparently retry on a fresh one.
    let depth = client.queue_depth("q").expect("retried request succeeds");
    assert_eq!(depth, 1);
    wait_until(
        "the poisoned link to be replaced",
        Duration::from_secs(5),
        || proxy.links_opened() > links_before,
    );
    client.close();
    proxy.shutdown();
    server.shutdown();
}
