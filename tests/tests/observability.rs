//! End-to-end observability: one real `call_sync` through the full
//! middleware stack must leave behind (a) non-zero message-broker counters,
//! (b) a queue-wait latency distribution with sane quantiles, and (c) a
//! complete causally-linked trace in the span ring buffer
//! (`omq.call_sync → proxy.publish / queue.wait → skeleton.dispatch →
//! handler.exec / reply.publish`, plus `reply.wait` back on the caller).

use metadata::{InMemoryStore, ItemMetadata, MetadataStore};
use objectmq::Broker;
use stacksync::{SyncService, SYNC_SERVICE_OID};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use wire::Value;

fn item_value(item: &ItemMetadata) -> Value {
    stacksync::protocol::item_to_value(item)
}

#[test]
fn call_sync_produces_counters_histograms_and_a_complete_trace() {
    let broker = Broker::in_process();
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    meta.create_user("alice").unwrap();
    let ws = meta.create_workspace("alice", "Docs").unwrap();
    let service = SyncService::builder(&broker).store(meta.clone()).build();
    let _handle = service.bind(&broker).unwrap();
    let proxy = broker.lookup(SYNC_SERVICE_OID).unwrap();

    // Several commits so the queue-wait histogram has a real distribution.
    for version in 1..=5u64 {
        let item = ItemMetadata::new_file(version, &ws, "a.txt", vec![], 16, "dev");
        let args = vec![
            Value::from(ws.0.as_str()),
            Value::from("dev"),
            Value::List(vec![item_value(&item)]),
        ];
        proxy
            .call_sync("commit_request", args, Duration::from_secs(5), 0)
            .unwrap();
    }
    assert_eq!(service.commits_processed(), 5);

    // (a) Broker counters moved: every request and every reply is published
    // to some queue and acked after consumption.
    assert!(
        obs::counter("mq.messages_published_total").value() >= 10,
        "expected >=10 publishes (5 requests + 5 replies)"
    );
    // The skeleton acks a request *after* publishing its reply, so the
    // final request's ack can still be in flight when call_sync returns —
    // give it a moment.
    let acked = obs::counter("mq.messages_acked_total");
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while acked.value() < 10 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        acked.value() >= 10,
        "acks never caught up: {}",
        acked.value()
    );
    assert!(obs::counter("omq.calls_total").value() >= 5);
    assert!(obs::counter("omq.dispatches_total").value() >= 5);
    assert!(obs::counter("sync.commits_total").value() >= 5);

    // (b) Queue-wait histogram: populated, and quantiles are monotone.
    let wait = obs::histogram("mq.queue_wait_seconds");
    assert!(
        wait.count() >= 10,
        "queue waits recorded on both directions"
    );
    let (p50, _p90, _p95, p99, max) = wait.summary();
    assert!(p99 >= p50, "p99 ({p99}) must not be below p50 ({p50})");
    assert!(max >= 0.0);

    // The text exporter shows both metric families with quantiles.
    let text = obs::render_text();
    assert!(text.contains("mq_messages_published_total"));
    assert!(text.contains("mq_queue_wait_seconds{quantile=\"0.99\"}"));
    assert!(text.contains("omq_call_seconds{quantile=\"0.5\"}"));

    // (c) The last call left a complete multi-stage trace in the ring.
    let finished = obs::finished_spans();
    let root = finished
        .iter()
        .rev()
        .find(|s| s.name == "omq.call_sync")
        .expect("a finished omq.call_sync span");
    let trace = obs::trace_spans(root.trace_id);
    assert!(
        trace.len() >= 4,
        "expected >=4 spans in the trace, got {}: {:?}",
        trace.len(),
        trace.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
    );
    let names: Vec<&str> = trace.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "omq.call_sync",
        "proxy.publish",
        "queue.wait",
        "skeleton.dispatch",
        "handler.exec",
        "reply.publish",
        "reply.wait",
    ] {
        assert!(
            names.contains(&expected),
            "missing span {expected} in {names:?}"
        );
    }

    // Causal linking: exactly one root, every other span's parent is present
    // in the same trace, and timestamps are internally consistent (children
    // never start before their parent).
    let by_id: HashMap<u64, &obs::FinishedSpan> = trace.iter().map(|s| (s.span_id, s)).collect();
    let mut roots = 0;
    for span in &trace {
        assert!(span.end_ns >= span.start_ns, "{} runs backwards", span.name);
        match span.parent_id {
            None => roots += 1,
            Some(pid) => {
                let parent = by_id
                    .get(&pid)
                    .unwrap_or_else(|| panic!("{} has a dangling parent", span.name));
                assert!(
                    span.start_ns >= parent.start_ns,
                    "{} starts before its parent {}",
                    span.name,
                    parent.name
                );
            }
        }
    }
    assert_eq!(roots, 1, "a trace has exactly one root span");

    // The handler.exec span carries the workspace annotation added by the
    // SyncService through obs::annotate_current.
    let exec = trace.iter().find(|s| s.name == "handler.exec").unwrap();
    assert!(
        exec.annotations
            .iter()
            .any(|a| a == &format!("ws:{}", ws.0)),
        "handler.exec should be tagged with the workspace: {:?}",
        exec.annotations
    );
}
