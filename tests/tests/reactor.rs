//! Event-loop level tests for the net tier's reactor: fd hygiene under
//! heavy connection churn, and loop liveness when one peer reads at a
//! pathological trickle.
//!
//! Both tests measure process-global state (`/proc/self/fd`, reactor
//! registration counts), so they serialize on a lock instead of trusting
//! the parallel test harness not to open sockets mid-measurement.

use integration_tests::wait_until;
use mqsim::{Message, MessageBroker, Messaging as _, QueueOptions};
use net::{client_reactor_registrations, BrokerServer, FaultProxy, NetBroker, NetConfig};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

/// Number of open file descriptors in this process.
fn open_fds() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .map(|entries| entries.count())
        .expect("/proc/self/fd readable on linux")
}

#[test]
fn connection_churn_leaks_no_fds_or_registrations() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let server = BrokerServer::bind("127.0.0.1:0", MessageBroker::new()).expect("bind server");
    let addr = server.local_addr();

    // Warm up the process-wide client runtime (reactor thread, wake pipe,
    // dialer pool) so its long-lived fds are part of the baseline, then
    // wait for the warmup connection to fully unwind on both sides.
    {
        let client = NetBroker::connect(addr).expect("warmup dial");
        client
            .declare_queue("churn", QueueOptions::default())
            .expect("declare");
    }
    wait_until(
        "warmup connection to unwind from both reactors",
        Duration::from_secs(10),
        || server.live_connections() == 0 && client_reactor_registrations() == 0,
    );
    let reg_baseline = server.reactor_registrations();
    let fd_baseline = open_fds();

    // 1000 short-lived clients, 20 at a time: connect, one real RPC, drop.
    const THREADS: usize = 20;
    const PER_THREAD: usize = 50;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                let client = NetBroker::connect(addr).expect("churn dial");
                let depth = client
                    .queue_depth("churn")
                    .unwrap_or_else(|e| panic!("rpc failed (thread {t}, client {i}): {e}"));
                assert_eq!(depth, 0);
                // Dropped here: both reactors must release the connection.
            }
        }));
    }
    for handle in handles {
        handle.join().expect("churn thread");
    }

    // No stuck registrations: the server reactor is back to its baseline
    // (the listener) and the client reactor is empty.
    wait_until(
        "server reactor registrations to return to baseline",
        Duration::from_secs(10),
        || server.live_connections() == 0 && server.reactor_registrations() == reg_baseline,
    );
    wait_until(
        "client reactor registrations to drain",
        Duration::from_secs(10),
        || client_reactor_registrations() == 0,
    );
    // No fd leak: every socket (stream + clones, both sides) is closed.
    wait_until(
        "open fds to return to the pre-churn baseline",
        Duration::from_secs(10),
        || open_fds() <= fd_baseline,
    );
}

#[test]
fn slow_reader_does_not_block_the_event_loop() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mq = MessageBroker::new();
    let server = BrokerServer::bind("127.0.0.1:0", mq.clone()).expect("bind server");
    mq.declare_queue("slow", QueueOptions::default())
        .expect("declare");

    // The slow consumer dials through a fault proxy so its byte stream can
    // be frozen; everyone else talks to the server directly.
    let mut proxy = FaultProxy::start(server.local_addr()).expect("start proxy");
    let slow = NetBroker::connect_with(
        proxy.local_addr(),
        NetConfig {
            // The stall starves this client of all traffic; a dead-peer
            // verdict mid-test would tear down the very connection whose
            // backpressure is under test.
            heartbeat: Duration::from_secs(30),
            ..NetConfig::default()
        },
    )
    .expect("dial through proxy");
    let slow_consumer = slow.subscribe("slow").expect("subscribe");
    let fast = NetBroker::connect(server.local_addr()).expect("dial direct");

    // Freeze the slow consumer's stream, then bury its connection under a
    // full credit window of large deliveries: the server's writes hit
    // `WouldBlock` and park as writer residue awaiting `POLLOUT`.
    proxy.set_stalled(true);
    const MESSAGES: usize = 96;
    let payload = vec![0xA5u8; 256 * 1024];
    for _ in 0..MESSAGES {
        mq.publish_to_queue("slow", Message::from_bytes(payload.clone()))
            .expect("publish");
    }

    // The event loop must keep serving every other connection at RPC
    // speed while the slow peer's bytes are parked.
    let mut latencies = Vec::with_capacity(200);
    for _ in 0..200 {
        let started = Instant::now();
        let depth = fast.queue_depth("slow").expect("fast client rpc");
        latencies.push(started.elapsed());
        assert!(depth > 0, "undelivered backlog must remain queued");
    }
    latencies.sort_unstable();
    let p99 = latencies[latencies.len() * 99 / 100];
    assert!(
        p99 < Duration::from_millis(500),
        "fast client p99 degraded to {p99:?} behind a slow reader"
    );

    // Backpressure, not buffering: the server never put more than the
    // credit window in flight toward the stalled consumer.
    let stats = mq.queue_stats("slow").expect("stats");
    assert!(
        stats.unacked as u64 <= NetConfig::default().credit,
        "{} deliveries in flight exceeds the credit window",
        stats.unacked
    );

    // Release the stall: parked residue drains through `POLLOUT` and the
    // slow consumer catches up on the entire backlog.
    proxy.set_stalled(false);
    for i in 0..MESSAGES {
        let delivery = slow_consumer
            .recv_timeout(Duration::from_secs(20))
            .unwrap_or_else(|e| panic!("slow consumer stuck after release at {i}: {e}"));
        assert_eq!(delivery.message.payload().len(), payload.len());
        delivery.ack();
    }
    wait_until(
        "every ack to land server-side",
        Duration::from_secs(10),
        || {
            let stats = mq.queue_stats("slow").expect("stats");
            stats.acked == MESSAGES as u64 && stats.unacked == 0 && stats.depth == 0
        },
    );

    slow.close();
    fast.close();
    proxy.shutdown();
    server.shutdown();
}
