//! Live elasticity: the whole control loop on the real middleware — a
//! Supervisor enforcing pool size on RemoteBroker slaves, an AutoScaler
//! fed by real queue-side observations, and SyncService instances being
//! spawned/retired while clients keep committing.

use integration_tests::wait_until;
use metadata::{InMemoryStore, MetadataStore};
use mqsim::QueueStats;
use objectmq::provision::{
    AutoScaler, GgOneModel, PredictiveProvisioner, ReactiveProvisioner, ScalingPolicy,
};
use objectmq::{Broker, RemoteBroker, Supervisor, SupervisorConfig};
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService, SYNC_SERVICE_OID};
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::{LatencyModel, SwiftStore};

#[test]
fn autoscaler_grows_live_pool_under_load_and_shrinks_after() {
    let broker = Broker::in_process();
    let store = SwiftStore::new(LatencyModel::instant());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    // A deliberately slow service (20 ms per commit) so load is visible.
    let service = SyncService::builder(&broker)
        .store(meta.clone())
        .service_delay(Duration::from_millis(20))
        .build();

    // Slaves + supervisor.
    let node = RemoteBroker::start(broker.clone(), 1).unwrap();
    node.register_factory(SYNC_SERVICE_OID, service.factory());
    let supervisor = Supervisor::start(
        broker.clone(),
        SupervisorConfig {
            oid: SYNC_SERVICE_OID,
            check_interval: Duration::from_millis(80),
            command_timeout: Duration::from_millis(800),
            ..Default::default()
        },
    )
    .unwrap();
    supervisor.set_target(1);
    wait_until(
        "initial SyncService instance",
        Duration::from_secs(5),
        || node.local_count(SYNC_SERVICE_OID) == 1,
    );

    // A scaling model matched to the injected 20 ms service time with a
    // 100 ms SLA: capacity ≈ 1/(0.02 + 0.0008/0.16) = 40 req/s.
    let model = GgOneModel {
        target_response: 0.100,
        mean_service: 0.020,
        var_interarrival: 0.0002,
        var_service: 0.0002,
    };
    let predictive = PredictiveProvisioner::new(model.clone(), Duration::from_secs(900), 0.95);
    let reactive = ReactiveProvisioner::paper_defaults(model);
    let mut scaler = AutoScaler::new(predictive, reactive, ScalingPolicy::Reactive);

    let ws = provision_user(meta.as_ref(), "load", "ws").unwrap();
    let client = DesktopClient::connect(
        &broker,
        &store,
        ClientConfig::new("load", "gen").with_chunk_size(4096),
        &ws,
    )
    .unwrap();

    // Generate bursty commit load for ~1.5 s (target ≈ 100 commits/s —
    // needs ≥3 instances under the model above).
    let load_start = Instant::now();
    let mut i = 0;
    while load_start.elapsed() < Duration::from_millis(1500) {
        client
            .write_file(&format!("burst-{i}.dat"), vec![i as u8; 256])
            .unwrap();
        i += 1;
        std::thread::sleep(Duration::from_millis(8));
    }

    // Reactive decision from the real queue-side observation.
    let observed = broker
        .messaging()
        .queue_arrival_rate(SYNC_SERVICE_OID.as_str())
        .unwrap();
    assert!(observed > 10.0, "observed rate too low: {observed}");
    let target = scaler.reactive_tick(observed).expect("must react");
    assert!(target >= 2, "load must demand ≥2 instances, got {target}");
    supervisor.set_target(target);
    wait_until(
        &format!("pool to reach the scaler target {target}"),
        Duration::from_secs(5),
        || node.local_count(SYNC_SERVICE_OID) == target,
    );

    // All commits must land despite the scaling churn.
    wait_until(
        &format!("all {i} burst commits to be processed"),
        Duration::from_secs(20),
        || service.commits_processed() as usize >= i,
    );

    // Load stops; the scaler shrinks the pool back.
    std::thread::sleep(Duration::from_millis(600));
    let idle_rate = 0.5; // post-burst observation
    if let Some(down) = scaler.reactive_tick(idle_rate) {
        supervisor.set_target(down);
    }
    wait_until("pool to shrink back to 1", Duration::from_secs(5), || {
        node.local_count(SYNC_SERVICE_OID) == 1
    });

    supervisor.stop();
    node.stop();
}

#[test]
fn queue_stats_expose_provisioning_signals() {
    // The fine-grained metrics the paper argues for: queue depth and
    // arrival rate must be observable while a slow pool lags behind.
    let broker = Broker::in_process();
    let store = SwiftStore::new(LatencyModel::instant());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::builder(&broker)
        .store(meta.clone())
        .service_delay(Duration::from_millis(50))
        .build();
    let server = service.bind(&broker).unwrap();
    let ws = provision_user(meta.as_ref(), "sig", "ws").unwrap();
    let client = DesktopClient::connect(
        &broker,
        &store,
        ClientConfig::new("sig", "dev").with_chunk_size(4096),
        &ws,
    )
    .unwrap();

    for i in 0..30 {
        client.write_file(&format!("f{i}"), vec![0u8; 64]).unwrap();
    }
    let stats: QueueStats = broker
        .messaging()
        .queue_stats(SYNC_SERVICE_OID.as_str())
        .unwrap();
    assert!(stats.published >= 30);
    assert!(
        stats.depth + stats.unacked > 0,
        "a 50 ms/commit instance must lag behind 30 instant commits"
    );
    let info = broker
        .pool_info(SYNC_SERVICE_OID, &[server.stats().snapshot()])
        .unwrap();
    assert_eq!(info.instances, 1);
    assert!(info.arrival_rate > 0.0);
    wait_until("all 30 commits to drain", Duration::from_secs(20), || {
        service.commits_processed() >= 30
    });
    server.shutdown();
}
