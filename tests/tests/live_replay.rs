//! Live UB1 trace replay (scaled down): a two-minute compressed day
//! driven by `elastic::live::run_live` — hundreds of real TCP clients,
//! synchronous commits building per-client version chains, the
//! predictive+reactive AutoScaler resizing the pool through the real
//! Supervisor, and a crash loop killing instances along the way. The
//! faultsim history checker proves the day lost nothing.

use elastic::live::{run_live, LiveConfig};
use objectmq::provision::GgOneModel;
use std::time::Duration;
use workload::Ub1Config;

#[test]
fn compressed_day_scales_pool_and_loses_nothing() {
    let config = LiveConfig {
        clients: 200,
        probe_clients: 4,
        probe_interval: Duration::from_millis(20),
        ub1: Ub1Config {
            peak_per_min: 4.0,
            ..Ub1Config::default()
        },
        // The whole day in two wall minutes: wall peak ≈ 48 req/s.
        compression: 720.0,
        service_delay: Duration::from_millis(10),
        // Capacity ≈ 8.7 req/s per instance, so the diurnal swing moves
        // the pool by several instances.
        model: GgOneModel {
            target_response: 0.200,
            mean_service: 0.010,
            var_interarrival: 0.04,
            var_service: 0.0004,
        },
        drivers: 8,
        // Closed-loop commits: every client serializes versions 1..k of
        // its single item, so the store must end with gap-free chains.
        sync_commits: true,
        // And an instance dies every 10 s while the day runs.
        crash_period: Some(Duration::from_secs(10)),
        seed: 0x11FE,
        drain_timeout: Duration::from_secs(60),
        ..LiveConfig::default()
    };

    let report = run_live(&config).expect("live replay must complete");

    assert!(
        report.offered > 500,
        "the day must offer real load, got {}",
        report.offered
    );
    assert!(report.drained, "service queue must drain after the day");
    assert!(
        report.crashes >= 3,
        "the crash loop must actually bite, got {}",
        report.crashes
    );
    assert!(
        report.history_violations.is_empty(),
        "no lost commits, no gaps, no double commits despite {} crashes: {:?}",
        report.crashes,
        report.history_violations
    );
    assert!(
        report.committed >= report.accepted,
        "every accepted commit must be processed ({} < {})",
        report.committed,
        report.accepted
    );

    // Elasticity: the pool must follow the diurnal shape — grow by at
    // least 2 instances into the midday peak and come back down after.
    assert!(
        report.peak_live >= report.trough_live + 2,
        "pool must scale up ≥2 at peak (trough {}, peak {})",
        report.trough_live,
        report.peak_live
    );
    let last = report.slots.last().expect("slots recorded");
    assert!(
        last.live < report.peak_live,
        "pool must scale back down after the peak (last slot {}, peak {})",
        last.live,
        report.peak_live
    );
    assert!(report.decisions >= 2, "both cadences must fire over a day");
}
