//! Host crate for the cross-crate integration tests in `tests/tests/`.
