//! Host crate for the cross-crate integration tests in `tests/tests/`.

use std::time::{Duration, Instant};

/// Waits (politely, not spinning hot) until `cond` holds, or panics naming
/// exactly what it was waiting for.
///
/// The integration tests used to hand-roll `while Instant::now() <
/// deadline` loops; when one timed out, the assertion that followed knew
/// nothing about *what* never happened. Every bounded wait goes through
/// here instead, so a timeout reads as "timed out after 5s waiting for:
/// pool to reach 2 instances" — the first thing a flake triager needs.
///
/// Deterministic tests should not need this at all: anything driven by
/// `faultsim`'s simulation or `mqsim::VirtualClock` finishes without
/// waiting on wall time. This helper is for the tests that keep real
/// threads and real sockets on purpose.
#[track_caller]
pub fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < timeout,
            "timed out after {timeout:?} waiting for: {what}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Like [`wait_until`] but returns whether the condition held instead of
/// panicking, for tests that assert the *absence* of a state change.
pub fn became_true(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while !cond() {
        if start.elapsed() >= timeout {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    true
}
