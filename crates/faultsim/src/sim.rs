//! The crash-loop simulation: real StackSync components driven by a
//! deterministic, seeded scheduler.
//!
//! This is the harness's answer to the threaded chaos test
//! `crash_loop_under_live_traffic_loses_no_commit`: several writer devices
//! race commits against a SyncService pool whose instances keep crashing
//! mid-request, over a broker whose delivery the fault plan perturbs. The
//! difference is that *nothing here runs on a thread or a clock*. The
//! simulation is one loop; each iteration the seeded RNG picks the next
//! enabled action (submit a commit, let a server instance take a delivery
//! and maybe crash before dispatch or before ack, deliver a push
//! notification to a reader). The components are the real ones — the real
//! [`mqsim::MessageBroker`] with a [`FaultPlan`] installed, the real
//! [`stacksync::SyncService`] dispatch path, the real
//! [`metadata::InMemoryStore`] — so the invariants checked are properties
//! of production code, not of a model. Same seed ⇒ same schedule, same
//! history, same verdict, every time, in milliseconds.
//!
//! A "crash" is exactly what the paper's supervisor-respawned instances do
//! (§4.2.2, evaluated in Fig. 8's kill experiments): the instance vanishes
//! holding an unacked delivery, the broker requeues it at the front, and
//! the next instance — here, the next `Process` step — picks it up. The
//! metadata store's idempotent-replay rule is what keeps the redelivery
//! from double-committing, and the checker verifies that end to end.

use crate::history::{Event, History, SubmitFate};
use crate::plan::{FaultPlan, FaultRates};
use crate::rng::SimRng;
use content::ChunkId;
use metadata::{InMemoryStore, ItemMetadata, MetadataStore, ShardedStore};
use objectmq::{Broker, BrokerConfig, RemoteObject, Request};
use stacksync::{provision_user, workspace_notification_oid, SyncService};
use std::collections::BTreeMap;
use std::sync::Arc;
use wire::{Codec, Value};

/// Queue carrying commit requests from writers to the service. The fault
/// plan targets this prefix, so ObjectMQ's internal reply queues stay
/// clean.
const COMMIT_QUEUE: &str = "faultsim.commits";
/// Queue a reader device binds to the workspace notification fanout.
const READER_QUEUE: &str = "faultsim.reader";
/// Item id of the file all writers fight over.
const SHARED_ITEM: u64 = 1;
/// Item ids `OWN_ITEM_BASE + w` are private to writer `w`.
const OWN_ITEM_BASE: u64 = 100;

/// Which metadata back-end the simulated stack commits against.
///
/// The store is pure state — it consumes no scheduler randomness — so for
/// any seed the run's fingerprint must be identical across selections: the
/// sharding identity property checked end-to-end through the real broker,
/// service, and fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreSelection {
    /// The global-mutex [`InMemoryStore`].
    Global,
    /// A [`ShardedStore`] with the given shard count.
    Sharded(usize),
    /// A WAL-backed [`ShardedStore`] ([`ShardedStore::open_durable`]) with
    /// the given shard count, rooted in a per-run scratch directory that is
    /// removed when the run finishes. The directory name is derived from
    /// the seed (never from scheduler draws), so durability costs no
    /// randomness and the fingerprint-identity property extends to it.
    Durable(usize),
}

impl StoreSelection {
    fn build(self, seed: u64) -> (Arc<dyn MetadataStore>, Option<std::path::PathBuf>) {
        match self {
            StoreSelection::Global => (Arc::new(InMemoryStore::new()), None),
            StoreSelection::Sharded(n) => (Arc::new(ShardedStore::with_shards(n)), None),
            StoreSelection::Durable(n) => {
                static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                let unique = NEXT.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let dir = std::env::temp_dir().join(format!(
                    "faultsim-durable-{}-{seed}-{unique}",
                    std::process::id()
                ));
                let mut cfg = wal::LogConfig::named("faultsim");
                // Manual sync: flushes happen inline in ticket waits, so
                // the run stays single-threaded and deterministic.
                cfg.sync = wal::SyncPolicy::Manual;
                let (store, _) =
                    ShardedStore::open_durable(&dir, n, std::time::Duration::ZERO, cfg)
                        .expect("open durable store in scratch dir");
                (Arc::new(store), Some(dir))
            }
        }
    }
}

/// Shape of one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Concurrent writer devices.
    pub writers: usize,
    /// Commits each writer submits.
    pub commits_per_writer: usize,
    /// Broker fault probabilities while writers are active.
    pub rates: FaultRates,
    /// Chance (permille) that the serving instance crashes at each of the
    /// two windows: before dispatching a delivery, and after processing but
    /// before acking.
    pub crash_permille: u32,
    /// Scheduler-step bound; exceeding it is reported as a violation.
    pub max_steps: u64,
    /// Metadata back-end under test.
    pub store: StoreSelection,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            writers: 3,
            commits_per_writer: 8,
            rates: FaultRates::chaotic(),
            crash_permille: 150,
            max_steps: 100_000,
            store: StoreSelection::Global,
        }
    }
}

/// Everything one run produced.
#[derive(Debug)]
pub struct SimReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Scheduler steps executed.
    pub steps: u64,
    /// Commit requests submitted (all writers).
    pub submissions: u64,
    /// Faults the plan injected.
    pub faults_injected: u64,
    /// Server crashes injected.
    pub crashes: u64,
    /// The recorded client-visible history.
    pub history: History,
    /// The fault plan's schedule trace.
    pub fault_trace: Vec<String>,
    /// Invariant violations; empty = the run passed.
    pub violations: Vec<String>,
}

impl SimReport {
    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fingerprint over schedule *and* history: two runs match iff the
    /// fault schedule and every client-visible event were identical.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = self.history.fingerprint();
        for line in &self.fault_trace {
            for byte in line.bytes().chain([b'\n']) {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }

    /// The replay artifact for a failing seed: violations, fault schedule
    /// and full event history.
    pub fn transcript(&self) -> String {
        let mut out = format!(
            "seed {} — {} steps, {} submissions, {} faults, {} crashes\n",
            self.seed, self.steps, self.submissions, self.faults_injected, self.crashes
        );
        for v in &self.violations {
            out.push_str(&format!("VIOLATION: {v}\n"));
        }
        out.push_str("--- fault schedule ---\n");
        for line in &self.fault_trace {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("--- history ---\n");
        out.push_str(&self.history.render());
        out
    }
}

/// One in-flight commit request as encoded into the queue payload.
struct Proposal {
    device: String,
    item: ItemMetadata,
}

fn encode_proposal(proposal: &Proposal) -> Vec<u8> {
    let value = Value::Map(vec![
        ("device".into(), Value::Str(proposal.device.clone())),
        (
            "item".into(),
            stacksync::protocol::item_to_value(&proposal.item),
        ),
    ]);
    wire::BinaryCodec.encode(&value)
}

fn decode_proposal(payload: &[u8]) -> Result<Proposal, String> {
    let value = wire::BinaryCodec
        .decode(payload)
        .map_err(|e| e.to_string())?;
    Ok(Proposal {
        device: value
            .field("device")
            .and_then(wire::Value::as_str)
            .map_err(|e| e.to_string())?
            .to_string(),
        item: stacksync::protocol::item_from_value(value.field("item").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?,
    })
}

/// Runs one seeded simulation to completion and returns its report.
pub fn run(seed: u64, config: &SimConfig) -> SimReport {
    let mut rng = SimRng::new(seed);
    let mut history = History::default();
    let mut violations: Vec<String> = Vec::new();

    // Real broker, hooked by a plan drawing from a forked stream so the
    // scheduler's own draws stay aligned regardless of how many messages
    // the broker sees.
    let mq = mqsim::MessageBroker::new();
    let plan =
        Arc::new(FaultPlan::new(rng.fork().next_u64(), config.rates).targeting(&["faultsim."]));
    mq.set_interceptor(Some(plan.clone()));

    // Real metadata tier and SyncService, talking through the hooked broker.
    let (meta, scratch_dir): (Arc<dyn MetadataStore>, _) = config.store.build(seed);
    let broker = Broker::over(
        Arc::new(mq.clone()) as Arc<dyn mqsim::Messaging>,
        BrokerConfig::default(),
    );
    let ws = provision_user(meta.as_ref(), "alice", "Sim").expect("fresh store provisions");
    let service = SyncService::builder(&broker).store(meta.clone()).build();

    // Commit path: writers publish proposals here; "the pool" consumes.
    mq.declare_queue(COMMIT_QUEUE, mqsim::QueueOptions::default())
        .expect("declare commit queue");
    let commits_in = mq.subscribe(COMMIT_QUEUE).expect("subscribe commit queue");

    // Notification path: wire one reader device onto the workspace fanout,
    // the same shape `Broker::bind` builds for real notification listeners.
    let notify_oid = workspace_notification_oid(&ws);
    let multi_exchange = format!("omq.multi.{notify_oid}");
    mq.declare_queue(notify_oid.as_str(), mqsim::QueueOptions::default())
        .expect("declare notification oid queue");
    mq.declare_exchange(&multi_exchange, mqsim::ExchangeKind::Fanout)
        .expect("declare notification fanout");
    mq.declare_queue(READER_QUEUE, mqsim::QueueOptions::default())
        .expect("declare reader queue");
    mq.bind_queue(&multi_exchange, "", READER_QUEUE)
        .expect("bind reader to fanout");
    let reader_in = mq.subscribe(READER_QUEUE).expect("subscribe reader queue");

    let mut remaining: Vec<usize> = vec![config.commits_per_writer; config.writers];
    let mut submissions: u64 = 0;
    let mut crashes: u64 = 0;
    let mut step: u64 = 0;
    let mut faulting = true;

    loop {
        let writers_left = remaining.iter().any(|r| *r > 0);
        let commit_stats = mq.queue_stats(COMMIT_QUEUE).expect("commit queue stats");
        let reader_depth = mq.queue_depth(READER_QUEUE).expect("reader queue depth");
        if !writers_left
            && commit_stats.depth == 0
            && commit_stats.unacked == 0
            && reader_depth == 0
        {
            break;
        }
        // Writers done: stop injecting so the drain converges. The plan
        // stops drawing entirely, so the tail stays deterministic.
        if !writers_left && faulting {
            plan.deactivate();
            faulting = false;
        }
        step += 1;
        if step > config.max_steps {
            violations.push(format!(
                "stuck: {} steps without draining (queue depth {}, unacked {})",
                config.max_steps, commit_stats.depth, commit_stats.unacked
            ));
            break;
        }

        // Pick uniformly among the actions enabled right now.
        #[derive(Clone, Copy)]
        enum Action {
            Submit,
            Process,
            Read,
        }
        let mut enabled = Vec::with_capacity(3);
        if writers_left {
            enabled.push(Action::Submit);
        }
        if commit_stats.depth > 0 {
            enabled.push(Action::Process);
        }
        if reader_depth > 0 {
            enabled.push(Action::Read);
        }
        let action = enabled[rng.below(enabled.len() as u64) as usize];

        match action {
            Action::Submit => {
                let eligible: Vec<usize> =
                    (0..config.writers).filter(|w| remaining[*w] > 0).collect();
                let w = eligible[rng.below(eligible.len() as u64) as usize];
                remaining[w] -= 1;
                submissions += 1;
                let device = format!("w{w}");
                let (item_id, path) = if rng.chance(500) {
                    (SHARED_ITEM, "shared.txt".to_string())
                } else {
                    (OWN_ITEM_BASE + w as u64, format!("w{w}.txt"))
                };
                let version = meta
                    .get_current(item_id)
                    .map(|m| m.version + 1)
                    .unwrap_or(1);
                // Chunks unique per submission: a *redelivery* of this
                // message replays idempotently, but a second independent
                // submission of the same version is a genuine conflict.
                let chunk =
                    ChunkId::of(format!("{device}-{item_id}-v{version}-s{submissions}").as_bytes());
                let item = ItemMetadata {
                    item_id,
                    workspace: ws.clone(),
                    path,
                    version,
                    chunks: vec![chunk],
                    size: 64 + version,
                    is_deleted: false,
                    modified_by: device.clone(),
                };
                let payload = encode_proposal(&Proposal {
                    device: device.clone(),
                    item: item.clone(),
                });
                let depth_before = mq.queue_depth(COMMIT_QUEUE).expect("depth");
                mq.publish_to_queue(COMMIT_QUEUE, mqsim::Message::from_bytes(payload))
                    .expect("publish commit");
                let fate = match mq.queue_depth(COMMIT_QUEUE).expect("depth") - depth_before {
                    0 => SubmitFate::Dropped,
                    1 => SubmitFate::Enqueued,
                    _ => SubmitFate::Duplicated,
                };
                history.push(Event::Submitted {
                    step,
                    device,
                    item: item_id,
                    version,
                    fate,
                });
            }
            Action::Process => {
                // `try_recv` may come back empty even with depth > 0 when
                // the plan defers everything ready; the step is then a
                // no-op and a later step retries.
                let Some(delivery) = commits_in.try_recv() else {
                    continue;
                };
                if faulting && rng.chance(config.crash_permille) {
                    crashes += 1;
                    history.push(Event::Crashed {
                        step,
                        before_dispatch: true,
                    });
                    drop(delivery); // instance dies; broker requeues at front
                    continue;
                }
                let proposal = match decode_proposal(delivery.message.payload()) {
                    Ok(p) => p,
                    Err(e) => {
                        violations.push(format!("undecodable commit payload: {e}"));
                        delivery.ack();
                        continue;
                    }
                };
                // Snapshot the store's word on this item so the dispatch
                // outcome can be read back precisely (the RPC returns Null).
                let before = meta.get_current(proposal.item.item_id).ok();
                let len_before = meta
                    .history(proposal.item.item_id)
                    .map(|h| h.len())
                    .unwrap_or(0);
                let args = vec![
                    Value::from(ws.0.as_str()),
                    Value::from(proposal.device.as_str()),
                    Value::List(vec![stacksync::protocol::item_to_value(&proposal.item)]),
                ];
                if let Err(e) = service.dispatch("commit_request", &args) {
                    violations.push(format!("commit_request failed: {e}"));
                    delivery.ack();
                    continue;
                }
                // Mirror of the store's Algorithm 1 decision: a fresh
                // append, or an idempotent replay confirm; anything else
                // was a conflict.
                let chain = meta.history(proposal.item.item_id).unwrap_or_default();
                let committed = (chain.len() == len_before + 1
                    && chain.last().is_some_and(|last| {
                        last.version == proposal.item.version
                            && last.chunks == proposal.item.chunks
                            && last.modified_by == proposal.item.modified_by
                    }))
                    || before.is_some_and(|cur| {
                        cur.version == proposal.item.version
                            && cur.chunks == proposal.item.chunks
                            && cur.modified_by == proposal.item.modified_by
                            && cur.is_deleted == proposal.item.is_deleted
                    });
                history.push(Event::Processed {
                    step,
                    device: proposal.device.clone(),
                    item: proposal.item.item_id,
                    version: proposal.item.version,
                    committed,
                });
                if faulting && rng.chance(config.crash_permille) {
                    crashes += 1;
                    history.push(Event::Crashed {
                        step,
                        before_dispatch: false,
                    });
                    drop(delivery); // crash after commit, before ack
                } else {
                    delivery.ack();
                    history.push(Event::Acked { step });
                }
            }
            Action::Read => {
                let Some(delivery) = reader_in.try_recv() else {
                    continue;
                };
                match decode_notification(delivery.message.payload()) {
                    Ok(notification) => {
                        for change in &notification.changes {
                            history.push(Event::Notified {
                                step,
                                committer: notification.committer.clone(),
                                item: change.metadata.item_id,
                                version: change.metadata.version,
                                confirmed: change.confirmed,
                            });
                        }
                    }
                    Err(e) => violations.push(format!("undecodable notification: {e}")),
                }
                delivery.ack();
            }
        }
    }

    // Final-state checks: the history against the store's own records, and
    // the read path against the write path (a fresh `get_changes` must
    // agree with what the store says is current).
    let mut current_versions = BTreeMap::new();
    let mut store_histories = BTreeMap::new();
    let mut item_ids: Vec<u64> = vec![SHARED_ITEM];
    item_ids.extend((0..config.writers).map(|w| OWN_ITEM_BASE + w as u64));
    for item_id in item_ids {
        if let Ok(cur) = meta.get_current(item_id) {
            current_versions.insert(item_id, cur.version);
            store_histories.insert(
                item_id,
                meta.history(item_id)
                    .unwrap_or_default()
                    .iter()
                    .map(|m| m.version)
                    .collect(),
            );
        }
    }
    match service.dispatch("get_changes", &[Value::from(ws.0.as_str())]) {
        Ok(Value::List(items)) => {
            for value in &items {
                match stacksync::protocol::item_from_value(value) {
                    Ok(item) => {
                        if current_versions.get(&item.item_id) != Some(&item.version) {
                            violations.push(format!(
                                "get_changes reports item {} at v{}, store says {:?}",
                                item.item_id,
                                item.version,
                                current_versions.get(&item.item_id)
                            ));
                        }
                    }
                    Err(e) => violations.push(format!("get_changes returned bad item: {e}")),
                }
            }
            if items.len() != current_versions.len() {
                violations.push(format!(
                    "get_changes returned {} items, store tracks {}",
                    items.len(),
                    current_versions.len()
                ));
            }
        }
        Ok(other) => violations.push(format!("get_changes returned non-list: {other:?}")),
        Err(e) => violations.push(format!("get_changes failed: {e}")),
    }

    violations.extend(history.check(&current_versions, &store_histories));

    if let Some(dir) = scratch_dir {
        std::fs::remove_dir_all(&dir).ok();
    }

    SimReport {
        seed,
        steps: step,
        submissions,
        faults_injected: plan.faults_injected(),
        crashes,
        history,
        fault_trace: plan.trace(),
        violations,
    }
}

fn decode_notification(payload: &[u8]) -> Result<stacksync::CommitNotification, String> {
    let value = wire::BinaryCodec
        .decode(payload)
        .map_err(|e| e.to_string())?;
    let request = Request::from_value(&value).map_err(|e| e.to_string())?;
    if request.method != "notify_commit" {
        return Err(format!("unexpected method {}", request.method));
    }
    let arg = request
        .args
        .first()
        .ok_or("notify_commit without payload")?;
    stacksync::CommitNotification::from_value(arg).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_run_completes_and_passes() {
        let report = run(1, &SimConfig::default());
        assert!(report.passed(), "{}", report.transcript());
        assert!(report.submissions == 24, "3 writers x 8 commits");
        assert!(!report.history.is_empty());
    }

    #[test]
    fn crash_heavy_run_still_loses_nothing() {
        let config = SimConfig {
            crash_permille: 400,
            ..SimConfig::default()
        };
        let report = run(7, &config);
        assert!(report.passed(), "{}", report.transcript());
        assert!(report.crashes > 0, "a 40% crash rate must crash sometimes");
    }

    #[test]
    fn fault_free_run_is_clean() {
        let config = SimConfig {
            rates: FaultRates::default(),
            crash_permille: 0,
            ..SimConfig::default()
        };
        let report = run(3, &config);
        assert!(report.passed(), "{}", report.transcript());
        assert_eq!(report.faults_injected, 0);
        assert_eq!(report.crashes, 0);
    }

    #[test]
    fn sharded_store_run_passes() {
        let config = SimConfig {
            store: StoreSelection::Sharded(8),
            ..SimConfig::default()
        };
        let report = run(1, &config);
        assert!(report.passed(), "{}", report.transcript());
    }

    #[test]
    fn durable_store_run_passes() {
        let config = SimConfig {
            store: StoreSelection::Durable(4),
            ..SimConfig::default()
        };
        let report = run(1, &config);
        assert!(report.passed(), "{}", report.transcript());
    }

    #[test]
    fn store_selection_does_not_change_the_run() {
        // The store consumes no scheduler randomness, so for any seed the
        // fingerprint (fault schedule + full client-visible history) must
        // be identical whichever back-end commits the metadata — including
        // the WAL-backed one, whose scratch path derives from the seed.
        for seed in [1, 7, 23] {
            let global = run(seed, &SimConfig::default());
            for store in [StoreSelection::Sharded(8), StoreSelection::Durable(8)] {
                let other = run(
                    seed,
                    &SimConfig {
                        store,
                        ..SimConfig::default()
                    },
                );
                assert!(global.passed(), "{}", global.transcript());
                assert!(other.passed(), "{}", other.transcript());
                assert_eq!(
                    global.fingerprint(),
                    other.fingerprint(),
                    "seed {seed}: {store:?} run diverged from global run"
                );
            }
        }
    }
}
