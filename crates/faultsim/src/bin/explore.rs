//! Seed-range explorer CLI.
//!
//! ```sh
//! cargo run -p faultsim --bin explore -- <start-seed> <count> [artifact-path]
//! ```
//!
//! Sweeps `count` consecutive seeds from `start-seed` through the
//! crash-loop simulation. On the first invariant violation it prints the
//! failing seed with its full schedule + history transcript, optionally
//! writes the transcript to `artifact-path` (what the CI job uploads), and
//! exits non-zero. Replay a failure with the same binary:
//! `explore <failing-seed> 1`.

use faultsim::{explore, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: explore <start-seed> <count> [artifact-path]";
    let (Some(start), Some(count)) = (
        args.get(1).and_then(|a| a.parse::<u64>().ok()),
        args.get(2).and_then(|a| a.parse::<u64>().ok()),
    ) else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let artifact = args.get(3);

    let outcome = explore(start, count, &SimConfig::default());
    match outcome.failure {
        None => {
            println!(
                "{} seed(s) explored from {start}: every invariant held",
                outcome.passed
            );
        }
        Some(failure) => {
            eprintln!("{failure}");
            if let Some(path) = artifact {
                if let Err(e) = std::fs::write(path, failure.to_string()) {
                    eprintln!("could not write artifact {path}: {e}");
                } else {
                    eprintln!("artifact written to {path}");
                }
            }
            std::process::exit(1);
        }
    }
}
