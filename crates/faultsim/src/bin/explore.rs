//! Seed-range explorer CLI.
//!
//! ```sh
//! cargo run -p faultsim --bin explore -- <start-seed> <count> [artifact-path] [--sharded[=N]]
//! ```
//!
//! Sweeps `count` consecutive seeds from `start-seed` through the
//! crash-loop simulation. On the first invariant violation it prints the
//! failing seed with its full schedule + history transcript, optionally
//! writes the transcript to `artifact-path` (what the CI job uploads), and
//! exits non-zero. Replay a failure with the same binary:
//! `explore <failing-seed> 1`.
//!
//! `--sharded` (optionally `--sharded=N` for N partitions, default 8) runs
//! the sweep against [`metadata::ShardedStore`] instead of the global-mutex
//! store; fingerprints are identical either way, so a divergence is a
//! sharding bug. `--durable[=N]` does the same against the WAL-backed
//! sharded store ([`metadata::ShardedStore::open_durable`]) in a per-run
//! scratch directory — same fingerprints again, now with every commit
//! journaled. `--kill-restart` switches to the kill-restart sweep
//! ([`faultsim::explore_kills`]): seeded crash-replay of the durable store
//! *and* durable broker, checking no acked commit is lost, nothing
//! double-commits, and unacked publishes are redelivered.

use faultsim::{explore, explore_kills, KillConfig, SimConfig, StoreSelection};

fn main() {
    let mut store = StoreSelection::Global;
    let mut kill_restart = false;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--sharded" {
            store = StoreSelection::Sharded(8);
        } else if let Some(n) = arg.strip_prefix("--sharded=") {
            match n.parse::<usize>() {
                Ok(n) if n > 0 => store = StoreSelection::Sharded(n),
                _ => {
                    eprintln!("--sharded=N needs a positive shard count, got `{n}`");
                    std::process::exit(2);
                }
            }
        } else if arg == "--durable" {
            store = StoreSelection::Durable(8);
        } else if let Some(n) = arg.strip_prefix("--durable=") {
            match n.parse::<usize>() {
                Ok(n) if n > 0 => store = StoreSelection::Durable(n),
                _ => {
                    eprintln!("--durable=N needs a positive shard count, got `{n}`");
                    std::process::exit(2);
                }
            }
        } else if arg == "--kill-restart" {
            kill_restart = true;
        } else {
            positional.push(arg);
        }
    }

    let usage =
        "usage: explore <start-seed> <count> [artifact-path] [--sharded[=N]] [--durable[=N]] [--kill-restart]";
    let (Some(start), Some(count)) = (
        positional.first().and_then(|a| a.parse::<u64>().ok()),
        positional.get(1).and_then(|a| a.parse::<u64>().ok()),
    ) else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let artifact = positional.get(2);

    if kill_restart {
        let (passed, failure) = explore_kills(start, count, &KillConfig::default());
        match failure {
            None => {
                println!(
                    "{passed} kill-restart seed(s) explored from {start}: every invariant held"
                );
                return;
            }
            Some(report) => {
                eprintln!("{}", report.transcript());
                if let Some(path) = artifact {
                    if let Err(e) = std::fs::write(path, report.transcript()) {
                        eprintln!("could not write artifact {path}: {e}");
                    } else {
                        eprintln!("artifact written to {path}");
                    }
                }
                std::process::exit(1);
            }
        }
    }

    let config = SimConfig {
        store,
        ..SimConfig::default()
    };
    let outcome = explore(start, count, &config);
    match outcome.failure {
        None => {
            println!(
                "{} seed(s) explored from {start} against {store:?}: every invariant held",
                outcome.passed
            );
        }
        Some(failure) => {
            eprintln!("{failure}");
            if let Some(path) = artifact {
                if let Err(e) = std::fs::write(path, failure.to_string()) {
                    eprintln!("could not write artifact {path}: {e}");
                } else {
                    eprintln!("artifact written to {path}");
                }
                // The flight recorder rode along through the failing run;
                // dump it next to the transcript so CI uploads both.
                let flight_path = format!("{path}.flight.json");
                match obs::flight::dump_to(&flight_path) {
                    Ok(()) => eprintln!("flight recorder dumped to {flight_path}"),
                    Err(e) => eprintln!("could not write flight dump {flight_path}: {e}"),
                }
            }
            std::process::exit(1);
        }
    }
}
