//! The client-visible history a simulation records, and the checker that
//! judges it.
//!
//! Every observable event — a commit request submitted, its broker fate
//! (enqueued / dropped / duplicated), a server crash, an ack, a push
//! notification arriving at a reader — is appended as an [`Event`] with the
//! logical step at which it happened. The checker then verifies the
//! safety properties the paper's architecture promises:
//!
//! * **No lost commit** (at-least-once): every proposal the broker accepted
//!   is eventually processed and decided, despite crashes before ack.
//! * **Linearizable versions**: each item's committed versions form exactly
//!   `1..=current`, each committed once, and the store history agrees.
//! * **Honest notifications**: every confirmed change pushed to readers
//!   corresponds to a version the store committed, attributed to the device
//!   that committed it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Broker-side fate of one submitted commit request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitFate {
    /// One copy sits in the queue.
    Enqueued,
    /// The fault plan discarded it before it hit the queue.
    Dropped,
    /// The fault plan enqueued two copies.
    Duplicated,
}

/// One observable event in a run. `step` is the logical time: the scheduler
/// iteration at which the event happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A writer handed a proposal to the broker.
    Submitted {
        /// Scheduler step.
        step: u64,
        /// Committing device.
        device: String,
        /// Item the proposal targets.
        item: u64,
        /// Proposed version.
        version: u64,
        /// What the broker did with it.
        fate: SubmitFate,
    },
    /// A server instance crashed while holding (or before acking) a
    /// delivery; the broker requeues it.
    Crashed {
        /// Scheduler step.
        step: u64,
        /// `true` if the crash hit before the request was dispatched,
        /// `false` if after processing but before the ack.
        before_dispatch: bool,
    },
    /// A delivery was processed by the service and decided.
    Processed {
        /// Scheduler step.
        step: u64,
        /// Committing device.
        device: String,
        /// Item the proposal targeted.
        item: u64,
        /// Proposed version.
        version: u64,
        /// Store decision: committed or conflict.
        committed: bool,
    },
    /// The delivery was acknowledged to the broker.
    Acked {
        /// Scheduler step.
        step: u64,
    },
    /// A reader received a push notification for one change.
    Notified {
        /// Scheduler step.
        step: u64,
        /// Device the notification names as committer.
        committer: String,
        /// Item the change applies to.
        item: u64,
        /// Version the change proposed.
        version: u64,
        /// Whether the notification reports the change as committed.
        confirmed: bool,
    },
}

impl Event {
    fn describe(&self, out: &mut String) {
        match self {
            Event::Submitted {
                step,
                device,
                item,
                version,
                fate,
            } => {
                let _ = write!(
                    out,
                    "[{step:5}] submit  {device} item={item} v{version} {fate:?}"
                );
            }
            Event::Crashed {
                step,
                before_dispatch,
            } => {
                let phase = if *before_dispatch {
                    "pre-dispatch"
                } else {
                    "pre-ack"
                };
                let _ = write!(out, "[{step:5}] crash   {phase}");
            }
            Event::Processed {
                step,
                device,
                item,
                version,
                committed,
            } => {
                let verdict = if *committed { "committed" } else { "conflict" };
                let _ = write!(
                    out,
                    "[{step:5}] process {device} item={item} v{version} {verdict}"
                );
            }
            Event::Acked { step } => {
                let _ = write!(out, "[{step:5}] ack");
            }
            Event::Notified {
                step,
                committer,
                item,
                version,
                confirmed,
            } => {
                let verdict = if *confirmed { "committed" } else { "conflict" };
                let _ = write!(
                    out,
                    "[{step:5}] notify  {committer} item={item} v{version} {verdict}"
                );
            }
        }
    }
}

/// The ordered event log of one run.
#[derive(Debug, Default, Clone)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// Appends one event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// All events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// FNV-1a hash over the rendered history: two runs with the same
    /// fingerprint saw the same events in the same order. This is what the
    /// determinism tests compare across replays of one seed.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.render().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Human-readable transcript, one line per event — the artifact printed
    /// for a failing seed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            event.describe(&mut out);
            out.push('\n');
        }
        out
    }

    /// Checks every invariant against this history plus the store's final
    /// word on each item (`current_versions`: item id → latest committed
    /// version; `store_histories`: item id → committed versions in commit
    /// order). Returns all violations, empty = pass.
    pub fn check(
        &self,
        current_versions: &BTreeMap<u64, u64>,
        store_histories: &BTreeMap<u64, Vec<u64>>,
    ) -> Vec<String> {
        let mut violations = Vec::new();

        // Copies the broker accepted per (device, item, version) proposal.
        let mut accepted: BTreeMap<(String, u64, u64), u64> = BTreeMap::new();
        // Times each proposal was processed (>= accepted copies - crashes is
        // implied; what we require is >= 1 when accepted >= 1: no loss).
        let mut processed: BTreeMap<(String, u64, u64), u64> = BTreeMap::new();
        // Item → set of versions the store reported committed, with the
        // committing device. A version committed by two different proposals
        // is a double-commit violation (a redelivered duplicate must replay
        // idempotently, i.e. same device+version).
        let mut committed: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();

        for event in &self.events {
            match event {
                Event::Submitted {
                    device,
                    item,
                    version,
                    fate,
                    ..
                } => {
                    let copies = match fate {
                        SubmitFate::Dropped => 0,
                        SubmitFate::Enqueued => 1,
                        SubmitFate::Duplicated => 2,
                    };
                    *accepted
                        .entry((device.clone(), *item, *version))
                        .or_insert(0) += copies;
                }
                Event::Processed {
                    device,
                    item,
                    version,
                    committed: was_committed,
                    ..
                } => {
                    *processed
                        .entry((device.clone(), *item, *version))
                        .or_insert(0) += 1;
                    if *was_committed {
                        let devices = committed.entry((*item, *version)).or_default();
                        if !devices.contains(device) {
                            devices.push(device.clone());
                        }
                    }
                }
                Event::Notified {
                    committer,
                    item,
                    version,
                    confirmed,
                    ..
                } => {
                    if *confirmed {
                        // A confirmed notification must match a commit the
                        // store actually performed for that device.
                        let genuine = committed
                            .get(&(*item, *version))
                            .is_some_and(|devs| devs.contains(committer));
                        if !genuine {
                            violations.push(format!(
                                "notification claims {committer} committed item {item} v{version}, \
                                 but no such commit was processed"
                            ));
                        }
                    }
                }
                Event::Crashed { .. } | Event::Acked { .. } => {}
            }
        }

        // No lost commit: every accepted proposal was processed at least
        // once (at-least-once delivery through crashes and requeues).
        for ((device, item, version), copies) in &accepted {
            if *copies > 0
                && processed
                    .get(&(device.clone(), *item, *version))
                    .copied()
                    .unwrap_or(0)
                    == 0
            {
                violations.push(format!(
                    "lost commit: {device} item {item} v{version} was enqueued \
                     ({copies} cop{}) but never processed",
                    if *copies == 1 { "y" } else { "ies" }
                ));
            }
        }

        // No double-commit: one version of one item belongs to one device.
        for ((item, version), devices) in &committed {
            if devices.len() > 1 {
                violations.push(format!(
                    "double commit: item {item} v{version} committed by {devices:?}"
                ));
            }
        }

        // Linearizable per-item version chain: the committed versions the
        // history saw are exactly 1..=current, and the store's own history
        // agrees in length and order.
        for (item, current) in current_versions {
            for version in 1..=*current {
                if !committed.contains_key(&(*item, version)) {
                    violations.push(format!(
                        "gap: item {item} is at v{current} but v{version} was never \
                         observed committing"
                    ));
                }
            }
            for (observed_item, version) in committed.keys() {
                if observed_item == item && *version > *current {
                    violations.push(format!(
                        "phantom: item {item} observed committing v{version} beyond \
                         final v{current}"
                    ));
                }
            }
            match store_histories.get(item) {
                Some(chain) => {
                    let expect: Vec<u64> = (1..=*current).collect();
                    if chain != &expect {
                        violations.push(format!(
                            "store history for item {item} is {chain:?}, expected {expect:?}"
                        ));
                    }
                }
                None => violations.push(format!("store has no history for item {item}")),
            }
        }

        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submitted(device: &str, item: u64, version: u64, fate: SubmitFate) -> Event {
        Event::Submitted {
            step: 0,
            device: device.into(),
            item,
            version,
            fate,
        }
    }

    fn processed(device: &str, item: u64, version: u64, committed: bool) -> Event {
        Event::Processed {
            step: 1,
            device: device.into(),
            item,
            version,
            committed,
        }
    }

    #[test]
    fn clean_run_passes() {
        let mut h = History::default();
        h.push(submitted("w0", 1, 1, SubmitFate::Enqueued));
        h.push(processed("w0", 1, 1, true));
        h.push(Event::Acked { step: 2 });
        h.push(Event::Notified {
            step: 3,
            committer: "w0".into(),
            item: 1,
            version: 1,
            confirmed: true,
        });
        let current = BTreeMap::from([(1u64, 1u64)]);
        let chains = BTreeMap::from([(1u64, vec![1u64])]);
        assert_eq!(h.check(&current, &chains), Vec::<String>::new());
    }

    #[test]
    fn lost_commit_is_flagged() {
        let mut h = History::default();
        h.push(submitted("w0", 1, 1, SubmitFate::Enqueued));
        let violations = h.check(&BTreeMap::new(), &BTreeMap::new());
        assert!(
            violations.iter().any(|v| v.contains("lost commit")),
            "{violations:?}"
        );
    }

    #[test]
    fn dropped_submission_is_not_a_loss() {
        let mut h = History::default();
        h.push(submitted("w0", 1, 1, SubmitFate::Dropped));
        assert!(h.check(&BTreeMap::new(), &BTreeMap::new()).is_empty());
    }

    #[test]
    fn double_commit_is_flagged() {
        let mut h = History::default();
        h.push(submitted("w0", 1, 1, SubmitFate::Enqueued));
        h.push(submitted("w1", 1, 1, SubmitFate::Enqueued));
        h.push(processed("w0", 1, 1, true));
        h.push(processed("w1", 1, 1, true));
        let current = BTreeMap::from([(1u64, 1u64)]);
        let chains = BTreeMap::from([(1u64, vec![1u64])]);
        let violations = h.check(&current, &chains);
        assert!(
            violations.iter().any(|v| v.contains("double commit")),
            "{violations:?}"
        );
    }

    #[test]
    fn version_gap_is_flagged() {
        let mut h = History::default();
        h.push(submitted("w0", 1, 2, SubmitFate::Enqueued));
        h.push(processed("w0", 1, 2, true));
        let current = BTreeMap::from([(1u64, 2u64)]);
        let chains = BTreeMap::from([(1u64, vec![1u64, 2u64])]);
        let violations = h.check(&current, &chains);
        assert!(
            violations.iter().any(|v| v.contains("gap")),
            "{violations:?}"
        );
    }

    #[test]
    fn dishonest_notification_is_flagged() {
        let mut h = History::default();
        h.push(Event::Notified {
            step: 0,
            committer: "w9".into(),
            item: 3,
            version: 1,
            confirmed: true,
        });
        let violations = h.check(&BTreeMap::new(), &BTreeMap::new());
        assert!(
            violations.iter().any(|v| v.contains("notification")),
            "{violations:?}"
        );
    }

    #[test]
    fn fingerprint_tracks_content_and_order() {
        let mut a = History::default();
        let mut b = History::default();
        a.push(submitted("w0", 1, 1, SubmitFate::Enqueued));
        a.push(Event::Acked { step: 2 });
        b.push(submitted("w0", 1, 1, SubmitFate::Enqueued));
        b.push(Event::Acked { step: 2 });
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.push(Event::Acked { step: 3 });
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
