//! The fault plan: a seeded [`DeliveryInterceptor`] describing *which*
//! faults to inject at the broker choke point and *how often*.
//!
//! A [`FaultPlan`] is pure state-machine randomness: every decision comes
//! from its own [`SimRng`] stream, there is no wall clock and no global
//! state, so a plan constructed from the same seed makes the same calls in
//! the same order given the same traffic. The plan keeps a trace of every
//! non-identity action it took — the schedule half of a failure artifact.

use crate::rng::SimRng;
use mqsim::{DeliverFault, DeliveryInterceptor, PublishFault};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Fault probabilities in permille (so plans are integer-only and replay
/// without floating-point drift).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultRates {
    /// Chance a published message is silently dropped.
    pub drop: u32,
    /// Chance a published message is enqueued twice.
    pub duplicate: u32,
    /// Chance a published message jumps to the front of the queue.
    pub front: u32,
    /// Chance a ready message is deferred behind the rest of the queue on
    /// its way to a consumer.
    pub defer: u32,
}

impl FaultRates {
    /// A moderately hostile network: some loss, duplication and reordering
    /// on both legs.
    pub fn chaotic() -> Self {
        FaultRates {
            drop: 80,
            duplicate: 120,
            front: 150,
            defer: 200,
        }
    }
}

/// Seeded fault-injection plan, installable on a broker with
/// [`mqsim::MessageBroker::set_interceptor`].
pub struct FaultPlan {
    rates: FaultRates,
    /// Only queues whose name starts with one of these prefixes are
    /// faulted. Empty = every queue. The filter is applied *before* any RNG
    /// draw, so untargeted traffic (e.g. internal reply queues) does not
    /// perturb the decision stream.
    targets: Vec<String>,
    active: AtomicBool,
    rng: Mutex<SimRng>,
    trace: Mutex<Vec<String>>,
    faults_injected: AtomicU64,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("rates", &self.rates)
            .field("targets", &self.targets)
            .field("active", &self.active.load(Ordering::Relaxed))
            .field("faults_injected", &self.faults_injected())
            .finish()
    }
}

impl FaultPlan {
    /// A plan injecting faults at `rates`, drawing from `seed`.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        FaultPlan {
            rates,
            targets: Vec::new(),
            active: AtomicBool::new(true),
            rng: Mutex::new(SimRng::new(seed)),
            trace: Mutex::new(Vec::new()),
            faults_injected: AtomicU64::new(0),
        }
    }

    /// The identity plan: installed but injecting nothing. Exists so tests
    /// can prove the hooked broker is bit-identical to the un-hooked one.
    pub fn identity() -> Self {
        FaultPlan::new(0, FaultRates::default())
    }

    /// Restricts faults to queues whose name starts with any of `prefixes`.
    #[must_use]
    pub fn targeting(mut self, prefixes: &[&str]) -> Self {
        self.targets = prefixes.iter().map(|p| (*p).to_string()).collect();
        self
    }

    /// Deactivates fault injection (used to drain a simulation
    /// deterministically after the hostile phase).
    pub fn deactivate(&self) {
        self.active.store(false, Ordering::Release);
    }

    /// Re-enables fault injection.
    pub fn activate(&self) {
        self.active.store(true, Ordering::Release);
    }

    /// Count of non-identity actions taken so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    /// The schedule trace: one line per injected fault, in order.
    pub fn trace(&self) -> Vec<String> {
        self.trace.lock().clone()
    }

    fn applies_to(&self, queue: &str) -> bool {
        if !self.active.load(Ordering::Acquire) {
            return false;
        }
        self.targets.is_empty() || self.targets.iter().any(|p| queue.starts_with(p.as_str()))
    }

    fn record(&self, queue: &str, action: &str) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
        self.trace.lock().push(format!("{action} {queue}"));
        obs::flight_event!("faultsim", "{action} {queue}");
    }
}

impl DeliveryInterceptor for FaultPlan {
    fn on_publish(&self, queue: &str, _payload: &[u8]) -> PublishFault {
        if !self.applies_to(queue) {
            return PublishFault::Deliver;
        }
        let mut rng = self.rng.lock();
        // One draw per possible fault, in a fixed order, whether or not an
        // earlier one fired: the draw count per message is constant, which
        // keeps the stream aligned across replays even if rates change.
        let dropped = rng.chance(self.rates.drop);
        let duplicated = rng.chance(self.rates.duplicate);
        let fronted = rng.chance(self.rates.front);
        drop(rng);
        if dropped {
            self.record(queue, "drop");
            PublishFault::Drop
        } else if duplicated {
            self.record(queue, "duplicate");
            PublishFault::Duplicate
        } else if fronted {
            self.record(queue, "front");
            PublishFault::Front
        } else {
            PublishFault::Deliver
        }
    }

    fn on_deliver(&self, queue: &str, _payload: &[u8]) -> DeliverFault {
        if !self.applies_to(queue) {
            return DeliverFault::Deliver;
        }
        let deferred = self.rng.lock().chance(self.rates.defer);
        if deferred {
            self.record(queue, "defer");
            DeliverFault::Defer
        } else {
            DeliverFault::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_plan_never_faults() {
        let plan = FaultPlan::identity();
        for i in 0..500 {
            assert_eq!(plan.on_publish("q", &[i as u8]), PublishFault::Deliver);
            assert_eq!(plan.on_deliver("q", &[i as u8]), DeliverFault::Deliver);
        }
        assert_eq!(plan.faults_injected(), 0);
        assert!(plan.trace().is_empty());
    }

    #[test]
    fn same_seed_same_decisions() {
        let mk = || FaultPlan::new(1234, FaultRates::chaotic());
        let (a, b) = (mk(), mk());
        for i in 0..300u32 {
            let payload = i.to_be_bytes();
            assert_eq!(a.on_publish("q", &payload), b.on_publish("q", &payload));
            assert_eq!(a.on_deliver("q", &payload), b.on_deliver("q", &payload));
        }
        assert_eq!(a.trace(), b.trace());
        assert!(a.faults_injected() > 0, "chaotic rates must fire sometimes");
    }

    #[test]
    fn targeting_skips_rng_for_other_queues() {
        let targeted = FaultPlan::new(7, FaultRates::chaotic()).targeting(&["app."]);
        let reference = FaultPlan::new(7, FaultRates::chaotic()).targeting(&["app."]);
        // Interleave untargeted traffic on one plan only: decisions on the
        // targeted queue must stay aligned because untargeted queues never
        // consume from the RNG stream.
        for i in 0..200u32 {
            let payload = i.to_be_bytes();
            let _ = targeted.on_publish("omq.resp.17", &payload);
            let _ = targeted.on_deliver("internal", &payload);
            assert_eq!(
                targeted.on_publish("app.commits", &payload),
                reference.on_publish("app.commits", &payload)
            );
        }
    }

    #[test]
    fn deactivate_stops_faulting_and_draws() {
        let plan = FaultPlan::new(99, FaultRates::chaotic());
        plan.deactivate();
        for i in 0..200 {
            assert_eq!(plan.on_publish("q", &[i as u8]), PublishFault::Deliver);
            assert_eq!(plan.on_deliver("q", &[i as u8]), DeliverFault::Deliver);
        }
        assert_eq!(plan.faults_injected(), 0);
    }
}
