//! Kill-restart schedules: seeded crash-replay over the *durable* stack.
//!
//! Where [`crate::sim`] proves the protocol survives crashed service
//! instances, this module proves the **commit plane** survives crashed
//! *processes*: a WAL-backed [`metadata::ShardedStore`] and a durable
//! [`mqsim::MessageBroker`] are driven through a seeded schedule of
//! commits, publishes, acks and checkpoints; at random points the whole
//! process "dies" ([`metadata::ShardedStore::wal_simulate_crash`] +
//! [`mqsim::MessageBroker::journal_simulate_crash`]), both components are
//! reopened from disk, and the recovered state is checked against a shadow
//! model kept by the harness:
//!
//! * **No lost acked commit** — every commit the store acknowledged before
//!   the kill is present after recovery (the reopened snapshot must equal
//!   the pre-kill snapshot bit for bit, and every item's version must
//!   match the shadow model).
//! * **No double-commit** — version chains replay to exactly `1..=n`,
//!   never gaining a duplicate from WAL replay (checked through the same
//!   snapshot equality plus explicit chain inspection).
//! * **At-least-once delivery** — every unacked durable publish is
//!   redelivered; a *dirty* kill (buffered ack records lost with the
//!   un-fsynced tail) may additionally redeliver acked messages, but a
//!   kill after [`mqsim::MessageBroker::journal_flush`] must recover
//!   exactly the unacked set. Recovered messages are never fabricated.
//!
//! Everything is single-threaded and seeded: same seed ⇒ same schedule,
//! same kills, same verdict.

use crate::rng::SimRng;
use content::ChunkId;
use metadata::{ItemMetadata, MetadataError, MetadataStore, ShardedStore, WorkspaceId};
use mqsim::{Message, MessageBroker, MqError, QueueOptions};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::time::Duration;

/// The durable queue the schedule publishes to.
const QUEUE: &str = "killsim.jobs";

/// Shape of one kill-restart run.
#[derive(Debug, Clone, Copy)]
pub struct KillConfig {
    /// Shard count of the durable store.
    pub shards: usize,
    /// Scheduler steps per run (kills included).
    pub steps: u32,
    /// Chance (permille) that a step is a kill-restart.
    pub kill_permille: u32,
    /// Chance (permille) that a step checkpoints the store.
    pub checkpoint_permille: u32,
}

impl Default for KillConfig {
    fn default() -> Self {
        KillConfig {
            shards: 4,
            steps: 60,
            kill_permille: 80,
            checkpoint_permille: 60,
        }
    }
}

/// What one kill-restart run did, and whether the invariants held.
#[derive(Debug)]
pub struct KillReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Commits acknowledged across all lives of the store.
    pub commits: u64,
    /// Durable publishes acknowledged.
    pub publishes: u64,
    /// Kill-restart cycles executed (always ≥ 1).
    pub kills: u64,
    /// Snapshot-and-truncate checkpoints taken.
    pub checkpoints: u64,
    /// Invariant violations; empty = the run passed.
    pub violations: Vec<String>,
}

impl KillReport {
    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable failure artifact.
    pub fn transcript(&self) -> String {
        let mut out = format!(
            "kill-restart seed {} — {} commits, {} publishes, {} kills, {} checkpoints\n",
            self.seed, self.commits, self.publishes, self.kills, self.checkpoints
        );
        for v in &self.violations {
            out.push_str(&format!("VIOLATION: {v}\n"));
        }
        out
    }
}

fn scratch_dir(seed: u64) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let unique = NEXT.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "faultsim-kill-{}-{seed}-{unique}",
        std::process::id()
    ))
}

fn manual(name: &str) -> wal::LogConfig {
    let mut cfg = wal::LogConfig::named(name);
    cfg.sync = wal::SyncPolicy::Manual;
    cfg
}

fn open_store(dir: &PathBuf, shards: usize) -> std::io::Result<ShardedStore> {
    ShardedStore::open_durable(dir, shards, Duration::ZERO, manual("killsim-meta")).map(|(s, _)| s)
}

fn open_broker(dir: &PathBuf) -> std::io::Result<MessageBroker> {
    MessageBroker::open_durable(dir, manual("killsim-mq")).map(|(b, _)| b)
}

/// Runs one seeded kill-restart schedule to completion.
pub fn run_kill_restart(seed: u64, config: &KillConfig) -> KillReport {
    let mut rng = SimRng::new(seed);
    let mut violations: Vec<String> = Vec::new();

    let root = scratch_dir(seed);
    let meta_dir = root.join("meta");
    let mq_dir = root.join("mq");

    let mut meta = match open_store(&meta_dir, config.shards) {
        Ok(s) => s,
        Err(e) => {
            return KillReport {
                seed,
                commits: 0,
                publishes: 0,
                kills: 0,
                checkpoints: 0,
                violations: vec![format!("could not open durable store: {e}")],
            }
        }
    };
    let mut mq = match open_broker(&mq_dir) {
        Ok(b) => b,
        Err(e) => {
            return KillReport {
                seed,
                commits: 0,
                publishes: 0,
                kills: 0,
                checkpoints: 0,
                violations: vec![format!("could not open durable broker: {e}")],
            }
        }
    };

    let ws = match meta
        .create_user("killer")
        .and_then(|()| meta.create_workspace("killer", "Kills"))
    {
        Ok(ws) => ws,
        Err(e) => {
            return KillReport {
                seed,
                commits: 0,
                publishes: 0,
                kills: 0,
                checkpoints: 0,
                violations: vec![format!("could not provision workspace: {e}")],
            }
        }
    };
    mq.declare_queue(QUEUE, QueueOptions::durable())
        .expect("declare durable queue");

    // Shadow model: what the harness knows it was acknowledged for.
    let mut versions: BTreeMap<u64, u64> = BTreeMap::new(); // item -> head version
    let mut outstanding: BTreeSet<String> = BTreeSet::new(); // published, never acked
    let mut acked: BTreeSet<String> = BTreeSet::new(); // acked since the last flush point
    let mut payload_seq: u64 = 0;

    let mut commits: u64 = 0;
    let mut publishes: u64 = 0;
    let mut kills: u64 = 0;
    let mut checkpoints: u64 = 0;

    let mut step = 0;
    loop {
        let forced_final_kill = step >= config.steps;
        step += 1;

        if forced_final_kill || rng.chance(config.kill_permille) {
            kills += 1;
            // A clean kill flushes buffered ack records first, making the
            // recovered set exactly predictable; a dirty kill may lose the
            // buffered acks (torn tail), which may only ever *redeliver*.
            let clean = rng.chance(500);
            if clean {
                if let Err(e) = mq.journal_flush() {
                    violations.push(format!("kill {kills}: journal flush failed: {e}"));
                }
            }
            let expected_snapshot = meta.snapshot();
            meta.wal_simulate_crash(0);
            let survive = (rng.below(64)) as usize; // torn tail of buffered acks
            mq.journal_simulate_crash(survive);

            // A crashed store must refuse writes rather than diverge. The
            // probe is a *fresh* item so it would genuinely append (an
            // all-conflict commit never reaches the WAL at all).
            let probe_item = 1_000_000 + kills;
            match meta.commit(&ws, vec![proposal(&ws, probe_item, 1, &mut payload_seq)]) {
                Err(MetadataError::Durability(_)) => {}
                other => violations.push(format!(
                    "kill {kills}: crashed store accepted a commit: {other:?}"
                )),
            }
            match mq.publish_to_queue(QUEUE, Message::from_static(b"post-crash")) {
                Err(MqError::Durability(_)) => {}
                other => violations.push(format!(
                    "kill {kills}: crashed broker accepted a publish: {other:?}"
                )),
            }

            drop(meta);
            drop(mq);

            let reopened = open_store(&meta_dir, config.shards)
                .map_err(|e| format!("store reopen failed: {e}"))
                .and_then(|s| {
                    open_broker(&mq_dir)
                        .map(|b| (s, b))
                        .map_err(|e| format!("broker reopen failed: {e}"))
                });
            match reopened {
                Ok((s, b)) => {
                    meta = s;
                    mq = b;
                }
                Err(e) => {
                    violations.push(format!("kill {kills}: {e}"));
                    std::fs::remove_dir_all(&root).ok();
                    return KillReport {
                        seed,
                        commits,
                        publishes,
                        kills,
                        checkpoints,
                        violations,
                    };
                }
            }

            // Invariant: no lost acked commit, no double-commit. The
            // reopened store must carry exactly the pre-kill state.
            if meta.snapshot() != expected_snapshot {
                violations.push(format!(
                    "kill {kills}: recovered store diverges from pre-kill snapshot"
                ));
            }
            for (&item, &head) in &versions {
                match meta.history(item) {
                    Ok(chain) => {
                        let got: Vec<u64> = chain.iter().map(|m| m.version).collect();
                        let want: Vec<u64> = (1..=head).collect();
                        if got != want {
                            violations.push(format!(
                                "kill {kills}: item {item} chain is {got:?}, shadow says {want:?}"
                            ));
                        }
                    }
                    Err(e) => violations.push(format!(
                        "kill {kills}: acked item {item} lost in recovery: {e}"
                    )),
                }
            }

            // Invariant: at-least-once delivery. Drain the recovered queue.
            let mut recovered: BTreeSet<String> = BTreeSet::new();
            let consumer = mq.subscribe(QUEUE).expect("subscribe recovered queue");
            while let Some(delivery) = consumer.try_recv() {
                let payload = String::from_utf8_lossy(delivery.message.payload()).into_owned();
                if !delivery.redelivered {
                    violations.push(format!(
                        "kill {kills}: recovered message {payload} not flagged redelivered"
                    ));
                }
                if !recovered.insert(payload.clone()) {
                    violations.push(format!("kill {kills}: message {payload} recovered twice"));
                }
                delivery.ack();
            }
            for payload in &outstanding {
                if !recovered.contains(payload) {
                    violations.push(format!(
                        "kill {kills}: unacked publish {payload} lost in recovery"
                    ));
                }
            }
            for payload in &recovered {
                if !outstanding.contains(payload) && !acked.contains(payload) {
                    violations.push(format!(
                        "kill {kills}: recovery fabricated message {payload}"
                    ));
                }
                if clean && acked.contains(payload) {
                    violations.push(format!(
                        "kill {kills}: flushed ack for {payload} forgotten (redelivered after clean kill)"
                    ));
                }
            }
            // The drain acked everything; flush so the next kill starts
            // from a known-durable point.
            if let Err(e) = mq.journal_flush() {
                violations.push(format!("kill {kills}: post-recovery flush failed: {e}"));
            }
            outstanding.clear();
            acked.clear();

            if forced_final_kill {
                break;
            }
            continue;
        }

        if rng.chance(config.checkpoint_permille) {
            checkpoints += 1;
            if let Err(e) = meta.checkpoint() {
                violations.push(format!("checkpoint {checkpoints} failed: {e}"));
            }
            continue;
        }

        // Regular work: a commit, a publish, or an ack, uniformly.
        match rng.below(3) {
            0 => {
                let item = 1 + rng.below(5);
                let version = versions.get(&item).copied().unwrap_or(0) + 1;
                match meta.commit(&ws, vec![proposal(&ws, item, version, &mut payload_seq)]) {
                    Ok(outcomes) => {
                        if outcomes.iter().all(|o| o.is_committed()) {
                            commits += 1;
                            versions.insert(item, version);
                        } else {
                            violations.push(format!(
                                "single-writer commit of item {item} v{version} conflicted"
                            ));
                        }
                    }
                    Err(e) => {
                        violations.push(format!("commit of item {item} v{version} failed: {e}"))
                    }
                }
            }
            1 => {
                payload_seq += 1;
                let payload = format!("job-{payload_seq}");
                match mq.publish_to_queue(QUEUE, Message::from_bytes(payload.clone().into_bytes()))
                {
                    Ok(()) => {
                        publishes += 1;
                        outstanding.insert(payload);
                    }
                    Err(e) => violations.push(format!("publish {payload} failed: {e}")),
                }
            }
            _ => {
                let consumer = mq.subscribe(QUEUE).expect("subscribe queue");
                if let Some(delivery) = consumer.try_recv() {
                    let payload = String::from_utf8_lossy(delivery.message.payload()).into_owned();
                    delivery.ack();
                    outstanding.remove(&payload);
                    acked.insert(payload);
                }
            }
        }
    }

    drop(meta);
    drop(mq);
    std::fs::remove_dir_all(&root).ok();

    KillReport {
        seed,
        commits,
        publishes,
        kills,
        checkpoints,
        violations,
    }
}

fn proposal(ws: &WorkspaceId, item: u64, version: u64, seq: &mut u64) -> ItemMetadata {
    *seq += 1;
    ItemMetadata {
        item_id: item,
        workspace: ws.clone(),
        path: format!("item-{item}.txt"),
        version,
        chunks: vec![ChunkId::of(format!("{item}-v{version}-{seq}").as_bytes())],
        size: 64 + version,
        is_deleted: false,
        modified_by: "killer".into(),
    }
}

/// Sweeps `count` consecutive kill-restart seeds from `start`, stopping at
/// the first failure. Returns `(passed, first_failure)`.
pub fn explore_kills(start: u64, count: u64, config: &KillConfig) -> (u64, Option<KillReport>) {
    let mut passed = 0;
    for seed in start..start.saturating_add(count) {
        let report = run_kill_restart(seed, config);
        if report.passed() {
            passed += 1;
        } else {
            return (passed, Some(report));
        }
    }
    (passed, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_kill_schedule_passes() {
        let report = run_kill_restart(1, &KillConfig::default());
        assert!(report.passed(), "{}", report.transcript());
        assert!(report.kills >= 1, "a forced final kill always runs");
    }

    #[test]
    fn kill_heavy_schedule_passes() {
        let config = KillConfig {
            kill_permille: 300,
            ..KillConfig::default()
        };
        let report = run_kill_restart(7, &config);
        assert!(report.passed(), "{}", report.transcript());
        assert!(
            report.kills >= 3,
            "a 30% kill rate over 60 steps kills often"
        );
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = run_kill_restart(11, &KillConfig::default());
        let b = run_kill_restart(11, &KillConfig::default());
        assert!(a.passed(), "{}", a.transcript());
        assert_eq!(
            (a.commits, a.publishes, a.kills, a.checkpoints),
            (b.commits, b.publishes, b.kills, b.checkpoints),
        );
    }

    #[test]
    fn small_sweep_passes() {
        let (passed, failure) = explore_kills(0, 8, &KillConfig::default());
        assert!(failure.is_none(), "{}", failure.unwrap().transcript());
        assert_eq!(passed, 8);
    }
}
