//! The schedule explorer: run many seeds, report the first failure with a
//! replayable artifact.
//!
//! Each seed is one independent simulated run ([`crate::sim::run`]); the
//! explorer is just the loop CI and `cargo test` use to sweep seed ranges.
//! When a seed fails, everything needed to replay it — the seed, the
//! violations, the fault schedule, the full history — is carried in the
//! [`SimFailure`] and rendered by [`SimFailure::to_string`]. Replaying is
//! `faultsim::run_seed(SEED)` or `cargo run -p faultsim --bin explore -- SEED 1`.

use crate::sim::{self, SimConfig, SimReport};

/// A seed whose run violated an invariant, with its replay artifact.
#[derive(Debug)]
pub struct SimFailure {
    /// The failing seed — feed it back to [`run_seed`] to replay.
    pub seed: u64,
    /// The invariants that broke.
    pub violations: Vec<String>,
    /// Fault schedule + event history of the failing run.
    pub transcript: String,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "seed {} violated {} invariant(s); replay with faultsim::run_seed({})",
            self.seed,
            self.violations.len(),
            self.seed
        )?;
        write!(f, "{}", self.transcript)
    }
}

/// Runs one seed under the default configuration.
///
/// # Errors
///
/// Returns the failure artifact when the run violates an invariant.
pub fn run_seed(seed: u64) -> Result<SimReport, Box<SimFailure>> {
    run_seed_with(seed, &SimConfig::default())
}

/// Runs one seed under an explicit configuration.
///
/// # Errors
///
/// Returns the failure artifact when the run violates an invariant.
pub fn run_seed_with(seed: u64, config: &SimConfig) -> Result<SimReport, Box<SimFailure>> {
    let report = sim::run(seed, config);
    if report.passed() {
        Ok(report)
    } else {
        Err(Box::new(SimFailure {
            seed,
            violations: report.violations.clone(),
            transcript: report.transcript(),
        }))
    }
}

/// Aggregate of an exploration sweep.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Seeds that passed before the sweep ended.
    pub passed: u64,
    /// The first failing seed, if any (the sweep stops there).
    pub failure: Option<Box<SimFailure>>,
}

impl ExploreOutcome {
    /// True when every seed in the sweep passed.
    pub fn all_passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Sweeps `count` consecutive seeds starting at `start`, stopping at the
/// first failure.
pub fn explore(start: u64, count: u64, config: &SimConfig) -> ExploreOutcome {
    let mut passed = 0;
    for seed in start..start.saturating_add(count) {
        match run_seed_with(seed, config) {
            Ok(_) => passed += 1,
            Err(failure) => {
                return ExploreOutcome {
                    passed,
                    failure: Some(failure),
                }
            }
        }
    }
    ExploreOutcome {
        passed,
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explore_counts_passes() {
        let outcome = explore(100, 3, &SimConfig::default());
        assert!(outcome.all_passed(), "{:?}", outcome.failure);
        assert_eq!(outcome.passed, 3);
    }

    #[test]
    fn failure_artifact_is_replayable() {
        // Force a failure with an impossible step bound; the artifact must
        // name the seed and carry the transcript.
        let config = SimConfig {
            max_steps: 1,
            ..SimConfig::default()
        };
        let failure = run_seed_with(42, &config).expect_err("1 step cannot drain");
        assert_eq!(failure.seed, 42);
        assert!(!failure.violations.is_empty());
        assert!(failure.to_string().contains("run_seed(42)"));
    }
}
