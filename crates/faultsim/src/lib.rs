//! # faultsim — seeded fault injection and schedule exploration
//!
//! Dropbox-style sync must survive exactly the failures that are hardest
//! to test: crashed SyncService instances holding unacked requests, lossy
//! and reordering message delivery, severed TCP links mid-frame. The
//! repo's original chaos tests provoked these with real threads, real
//! sleeps and real sockets — honest, but slow and unreproducible: a
//! failure seen once in CI was gone forever.
//!
//! This crate makes those failures *deterministic*. Three pieces:
//!
//! * **[`FaultPlan`]** — a seeded [`mqsim::DeliveryInterceptor`] injecting
//!   message drop / duplicate / reorder / defer at the broker choke point,
//!   with every decision drawn from a [`SimRng`] stream. The byte-level
//!   twin for real sockets is [`net::FaultProxy`], which severs, stalls
//!   and corrupts TCP mid-frame.
//! * **[`sim`]** — a single-threaded discrete-event scheduler driving the
//!   *real* stack (broker, SyncService dispatch, metadata store) through a
//!   crash-loop workload: no threads, no clocks, same seed ⇒ same run.
//!   Threaded tests that must keep their threads use
//!   [`mqsim::VirtualClock`] instead for stepped time.
//! * **[`History`]** — the recorded client-visible events plus the checker
//!   for the safety invariants: no accepted commit is lost
//!   (at-least-once through crashes), versions linearize into `1..=n`
//!   with no double-commit, notifications tell the truth.
//!
//! The explorer sweeps seed ranges ([`explore`]) and hands back a
//! replayable artifact ([`SimFailure`]) for the first seed that breaks an
//! invariant:
//!
//! ```
//! let report = faultsim::run_seed(1).expect("seed 1 holds every invariant");
//! assert!(report.crashes > 0 || report.faults_injected > 0);
//! // Same seed, same schedule, same history — always:
//! assert_eq!(report.fingerprint(), faultsim::run_seed(1).unwrap().fingerprint());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explorer;
mod history;
pub mod kill;
mod plan;
mod rng;
pub mod sim;

pub use explorer::{explore, run_seed, run_seed_with, ExploreOutcome, SimFailure};
pub use history::{Event, History, SubmitFate};
pub use kill::{explore_kills, run_kill_restart, KillConfig, KillReport};
pub use plan::{FaultPlan, FaultRates};
pub use rng::SimRng;
pub use sim::{SimConfig, SimReport, StoreSelection};
