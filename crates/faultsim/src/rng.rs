//! The harness RNG: a tiny splitmix64 generator.
//!
//! Everything random in the harness — fault decisions, schedule choices,
//! workload shapes — flows from one [`SimRng`] seeded by the explorer, so a
//! failing seed replays the exact same run. The generator is the same
//! splitmix64 construction the proptest shim uses; it is deterministic,
//! allocation-free and good enough for schedule exploration (we need
//! decorrelated bits, not cryptographic ones).

/// Deterministic splitmix64 stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from an explorer seed.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`; `bound == 0` yields 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift reduction: unbiased enough for schedule choice and
        // branch-free, so replays cost the same RNG draws every time.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// True with probability `permille`/1000.
    pub fn chance(&mut self, permille: u32) -> bool {
        self.below(1000) < u64::from(permille)
    }

    /// Forks an independent stream (for a component that must not perturb
    /// the parent's draw sequence as its own consumption grows).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 4,
            "streams should be decorrelated, {same} collisions"
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn fork_decouples_streams() {
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        // Consuming different amounts from the forks leaves the parents in
        // lockstep.
        for _ in 0..10 {
            fa.next_u64();
        }
        fb.next_u64();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
