//! The identity property: a broker with [`faultsim::FaultPlan::identity`]
//! installed is observationally *bit-identical* to an un-hooked broker.
//!
//! This is what makes the interceptor hook safe to keep in the production
//! `mqsim` hot path: the hook must be pure overhead-free observation
//! unless a plan actively decides otherwise. Randomized op sequences run
//! against a hooked and an un-hooked broker in lockstep; every delivered
//! payload, every redelivery flag, every queue statistic must match.

use faultsim::FaultPlan;
use mqsim::{Message, MessageBroker, QueueOptions};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Publish(u8),
    ConsumeAck,
    ConsumeDrop,
    ConsumeRequeue,
    Purge,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u8>().prop_map(Op::Publish),
        3 => Just(Op::ConsumeAck),
        1 => Just(Op::ConsumeDrop),
        1 => Just(Op::ConsumeRequeue),
        1 => Just(Op::Purge),
    ]
}

#[derive(Debug, Clone)]
enum BatchOp {
    /// Publish the payloads as one batch (or one-by-one on the singles side).
    PublishGroup(Vec<u8>),
    /// Drain up to `max_n` ready deliveries and ack them all.
    ConsumeBatch(usize),
    /// Take one delivery and put it back.
    ConsumeRequeue,
}

fn arb_batch_op() -> impl Strategy<Value = BatchOp> {
    prop_oneof![
        4 => proptest::collection::vec(any::<u8>(), 1..12).prop_map(BatchOp::PublishGroup),
        3 => (1usize..8).prop_map(BatchOp::ConsumeBatch),
        1 => Just(BatchOp::ConsumeRequeue),
    ]
}

/// Applies one op to a broker, returning what a client could observe of
/// it: the payload and redelivery flag of any delivery, and the purge
/// count.
fn observe(broker: &MessageBroker, consumer: &mqsim::Consumer, op: &Op) -> Vec<(Vec<u8>, bool)> {
    match op {
        Op::Publish(b) => {
            broker
                .publish_to_queue("q", Message::from_bytes(vec![*b]))
                .unwrap();
            Vec::new()
        }
        Op::ConsumeAck => match consumer.try_recv() {
            Some(d) => {
                let seen = vec![(d.message.payload().to_vec(), d.redelivered)];
                d.ack();
                seen
            }
            None => Vec::new(),
        },
        Op::ConsumeDrop => match consumer.try_recv() {
            Some(d) => vec![(d.message.payload().to_vec(), d.redelivered)],
            None => Vec::new(),
        },
        Op::ConsumeRequeue => match consumer.try_recv() {
            Some(d) => {
                let seen = vec![(d.message.payload().to_vec(), d.redelivered)];
                d.requeue();
                seen
            }
            None => Vec::new(),
        },
        Op::Purge => vec![(vec![broker.purge_queue("q").unwrap() as u8], false)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every observable — delivery order, payloads, redelivery flags,
    /// purge counts, final stats — matches between a hooked and an
    /// un-hooked broker across arbitrary op sequences.
    #[test]
    fn identity_plan_is_observationally_invisible(
        ops in proptest::collection::vec(arb_op(), 1..150)
    ) {
        let hooked = MessageBroker::new();
        hooked.set_interceptor(Some(Arc::new(FaultPlan::identity())));
        let bare = MessageBroker::new();
        for broker in [&hooked, &bare] {
            broker.declare_queue("q", QueueOptions::default()).unwrap();
        }
        let hooked_consumer = hooked.subscribe("q").unwrap();
        let bare_consumer = bare.subscribe("q").unwrap();

        for (i, op) in ops.iter().enumerate() {
            let h = observe(&hooked, &hooked_consumer, op);
            let b = observe(&bare, &bare_consumer, op);
            prop_assert_eq!(h, b, "divergence at op {} ({:?})", i, op);
        }

        let hs = hooked.queue_stats("q").unwrap();
        let bs = bare.queue_stats("q").unwrap();
        prop_assert_eq!(hs.depth, bs.depth);
        prop_assert_eq!(hs.unacked, bs.unacked);
        prop_assert_eq!(hs.published, bs.published);
        prop_assert_eq!(hs.delivered, bs.delivered);
        prop_assert_eq!(hs.acked, bs.acked);
        prop_assert_eq!(hs.redelivered, bs.redelivered);
    }

    /// The batched fast paths (`publish_batch_to_queue`, `try_recv_batch`,
    /// `ack_all`) are observationally identical to the one-at-a-time
    /// protocol — including under an installed identity [`FaultPlan`], so
    /// the interceptor staging inside `push_batch` sees exactly the same
    /// per-message decisions the singles path would.
    #[test]
    fn batched_path_matches_singles_under_identity_plan(
        ops in proptest::collection::vec(arb_batch_op(), 1..60)
    ) {
        let batched = MessageBroker::new();
        batched.set_interceptor(Some(Arc::new(FaultPlan::identity())));
        let singles = MessageBroker::new();
        for broker in [&batched, &singles] {
            broker.declare_queue("q", QueueOptions::default()).unwrap();
        }
        let batched_consumer = batched.subscribe("q").unwrap();
        let singles_consumer = singles.subscribe("q").unwrap();

        for (i, op) in ops.iter().enumerate() {
            let observed_batched: Vec<(Vec<u8>, bool)> = match op {
                BatchOp::PublishGroup(group) => {
                    let messages = group.iter().map(|b| Message::from_bytes(vec![*b])).collect();
                    batched.publish_batch_to_queue("q", messages).unwrap();
                    Vec::new()
                }
                BatchOp::ConsumeBatch(max_n) => {
                    let deliveries = batched_consumer.try_recv_batch(*max_n);
                    let seen = deliveries
                        .iter()
                        .map(|d| (d.message.payload().to_vec(), d.redelivered))
                        .collect();
                    mqsim::Delivery::ack_all(deliveries);
                    seen
                }
                BatchOp::ConsumeRequeue => match batched_consumer.try_recv() {
                    Some(d) => {
                        let seen = vec![(d.message.payload().to_vec(), d.redelivered)];
                        d.requeue();
                        seen
                    }
                    None => Vec::new(),
                },
            };
            let observed_singles: Vec<(Vec<u8>, bool)> = match op {
                BatchOp::PublishGroup(group) => {
                    for b in group {
                        singles
                            .publish_to_queue("q", Message::from_bytes(vec![*b]))
                            .unwrap();
                    }
                    Vec::new()
                }
                BatchOp::ConsumeBatch(max_n) => {
                    let mut seen = Vec::new();
                    for _ in 0..*max_n {
                        match singles_consumer.try_recv() {
                            Some(d) => {
                                seen.push((d.message.payload().to_vec(), d.redelivered));
                                d.ack();
                            }
                            None => break,
                        }
                    }
                    seen
                }
                BatchOp::ConsumeRequeue => match singles_consumer.try_recv() {
                    Some(d) => {
                        let seen = vec![(d.message.payload().to_vec(), d.redelivered)];
                        d.requeue();
                        seen
                    }
                    None => Vec::new(),
                },
            };
            prop_assert_eq!(
                observed_batched, observed_singles,
                "divergence at op {} ({:?})", i, op
            );
        }

        let bs = batched.queue_stats("q").unwrap();
        let ss = singles.queue_stats("q").unwrap();
        prop_assert_eq!(bs.depth, ss.depth);
        prop_assert_eq!(bs.unacked, ss.unacked);
        prop_assert_eq!(bs.published, ss.published);
        prop_assert_eq!(bs.delivered, ss.delivered);
        prop_assert_eq!(bs.acked, ss.acked);
        prop_assert_eq!(bs.redelivered, ss.redelivered);
    }

    /// Installing and then removing an interceptor leaves no residue: the
    /// broker behaves like one that never had a hook.
    #[test]
    fn removed_interceptor_leaves_no_residue(
        ops in proptest::collection::vec(arb_op(), 1..80)
    ) {
        let scrubbed = MessageBroker::new();
        scrubbed.set_interceptor(Some(Arc::new(FaultPlan::identity())));
        scrubbed.set_interceptor(None);
        let bare = MessageBroker::new();
        for broker in [&scrubbed, &bare] {
            broker.declare_queue("q", QueueOptions::default()).unwrap();
        }
        let scrubbed_consumer = scrubbed.subscribe("q").unwrap();
        let bare_consumer = bare.subscribe("q").unwrap();
        for op in &ops {
            let s = observe(&scrubbed, &scrubbed_consumer, op);
            let b = observe(&bare, &bare_consumer, op);
            prop_assert_eq!(s, b);
        }
    }
}
