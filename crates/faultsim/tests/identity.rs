//! The identity property: a broker with [`faultsim::FaultPlan::identity`]
//! installed is observationally *bit-identical* to an un-hooked broker.
//!
//! This is what makes the interceptor hook safe to keep in the production
//! `mqsim` hot path: the hook must be pure overhead-free observation
//! unless a plan actively decides otherwise. Randomized op sequences run
//! against a hooked and an un-hooked broker in lockstep; every delivered
//! payload, every redelivery flag, every queue statistic must match.

use faultsim::FaultPlan;
use mqsim::{Message, MessageBroker, QueueOptions};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Publish(u8),
    ConsumeAck,
    ConsumeDrop,
    ConsumeRequeue,
    Purge,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u8>().prop_map(Op::Publish),
        3 => Just(Op::ConsumeAck),
        1 => Just(Op::ConsumeDrop),
        1 => Just(Op::ConsumeRequeue),
        1 => Just(Op::Purge),
    ]
}

/// Applies one op to a broker, returning what a client could observe of
/// it: the payload and redelivery flag of any delivery, and the purge
/// count.
fn observe(broker: &MessageBroker, consumer: &mqsim::Consumer, op: &Op) -> Vec<(Vec<u8>, bool)> {
    match op {
        Op::Publish(b) => {
            broker
                .publish_to_queue("q", Message::from_bytes(vec![*b]))
                .unwrap();
            Vec::new()
        }
        Op::ConsumeAck => match consumer.try_recv() {
            Some(d) => {
                let seen = vec![(d.message.payload().to_vec(), d.redelivered)];
                d.ack();
                seen
            }
            None => Vec::new(),
        },
        Op::ConsumeDrop => match consumer.try_recv() {
            Some(d) => vec![(d.message.payload().to_vec(), d.redelivered)],
            None => Vec::new(),
        },
        Op::ConsumeRequeue => match consumer.try_recv() {
            Some(d) => {
                let seen = vec![(d.message.payload().to_vec(), d.redelivered)];
                d.requeue();
                seen
            }
            None => Vec::new(),
        },
        Op::Purge => vec![(vec![broker.purge_queue("q").unwrap() as u8], false)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every observable — delivery order, payloads, redelivery flags,
    /// purge counts, final stats — matches between a hooked and an
    /// un-hooked broker across arbitrary op sequences.
    #[test]
    fn identity_plan_is_observationally_invisible(
        ops in proptest::collection::vec(arb_op(), 1..150)
    ) {
        let hooked = MessageBroker::new();
        hooked.set_interceptor(Some(Arc::new(FaultPlan::identity())));
        let bare = MessageBroker::new();
        for broker in [&hooked, &bare] {
            broker.declare_queue("q", QueueOptions::default()).unwrap();
        }
        let hooked_consumer = hooked.subscribe("q").unwrap();
        let bare_consumer = bare.subscribe("q").unwrap();

        for (i, op) in ops.iter().enumerate() {
            let h = observe(&hooked, &hooked_consumer, op);
            let b = observe(&bare, &bare_consumer, op);
            prop_assert_eq!(h, b, "divergence at op {} ({:?})", i, op);
        }

        let hs = hooked.queue_stats("q").unwrap();
        let bs = bare.queue_stats("q").unwrap();
        prop_assert_eq!(hs.depth, bs.depth);
        prop_assert_eq!(hs.unacked, bs.unacked);
        prop_assert_eq!(hs.published, bs.published);
        prop_assert_eq!(hs.delivered, bs.delivered);
        prop_assert_eq!(hs.acked, bs.acked);
        prop_assert_eq!(hs.redelivered, bs.redelivered);
    }

    /// Installing and then removing an interceptor leaves no residue: the
    /// broker behaves like one that never had a hook.
    #[test]
    fn removed_interceptor_leaves_no_residue(
        ops in proptest::collection::vec(arb_op(), 1..80)
    ) {
        let scrubbed = MessageBroker::new();
        scrubbed.set_interceptor(Some(Arc::new(FaultPlan::identity())));
        scrubbed.set_interceptor(None);
        let bare = MessageBroker::new();
        for broker in [&scrubbed, &bare] {
            broker.declare_queue("q", QueueOptions::default()).unwrap();
        }
        let scrubbed_consumer = scrubbed.subscribe("q").unwrap();
        let bare_consumer = bare.subscribe("q").unwrap();
        for op in &ops {
            let s = observe(&scrubbed, &scrubbed_consumer, op);
            let b = observe(&bare, &bare_consumer, op);
            prop_assert_eq!(s, b);
        }
    }
}
