//! Determinism and coverage guarantees of the crash-loop simulation.
//!
//! These are the acceptance gates of the harness: a seed is only worth
//! printing if replaying it reproduces the run bit-for-bit, and the
//! checker is only trustworthy if it holds across many distinct seeds.

use faultsim::{explore, run_seed, run_seed_with, FaultRates, SimConfig, StoreSelection};
use std::time::Instant;

/// Same seed ⇒ same fault schedule, same event history, same verdict —
/// three times over, and fast enough to be a unit test, because nothing
/// in the simulation touches a thread or a wall clock.
#[test]
fn same_seed_replays_identically_three_times() {
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let start = Instant::now();
        let first = run_seed(seed).expect("seed passes");
        let second = run_seed(seed).expect("seed passes again");
        let third = run_seed(seed).expect("and again");
        assert_eq!(first.fingerprint(), second.fingerprint(), "seed {seed}");
        assert_eq!(second.fingerprint(), third.fingerprint(), "seed {seed}");
        assert_eq!(first.fault_trace, third.fault_trace, "seed {seed}");
        assert_eq!(
            first.history.events(),
            third.history.events(),
            "seed {seed}"
        );
        assert_eq!(first.steps, third.steps, "seed {seed}");
        assert!(
            start.elapsed().as_secs() < 2,
            "three replays of seed {seed} must stay under 2s"
        );
    }
}

/// Different seeds explore different schedules — otherwise the sweep is
/// rerunning one scenario 50 times.
#[test]
fn different_seeds_diverge() {
    let a = run_seed(10).expect("passes");
    let b = run_seed(11).expect("passes");
    assert_ne!(a.fingerprint(), b.fingerprint());
}

/// The CI gate: a block of consecutive seeds all hold every invariant.
/// 60 here, and the `faultsim-explore` CI job sweeps more; a failure
/// prints the seed and its transcript for replay.
#[test]
fn fifty_plus_seeds_hold_all_invariants() {
    let outcome = explore(0, 60, &SimConfig::default());
    if let Some(failure) = outcome.failure {
        panic!("{failure}");
    }
    assert_eq!(outcome.passed, 60);
}

/// The harness actually exercises the hostile paths: across a seed range,
/// runs collectively hit drops, duplicates, reorders and both crash
/// windows.
#[test]
fn fault_space_is_covered() {
    let mut total_faults = 0;
    let mut total_crashes = 0;
    let mut redeliveries_seen = false;
    for seed in 200..215 {
        let report = run_seed(seed).expect("seed passes");
        total_faults += report.faults_injected;
        total_crashes += report.crashes;
        if report
            .history
            .events()
            .iter()
            .any(|e| matches!(e, faultsim::Event::Crashed { .. }))
        {
            redeliveries_seen = true;
        }
    }
    assert!(total_faults > 20, "fault plan barely fired: {total_faults}");
    assert!(
        total_crashes > 3,
        "crash windows barely hit: {total_crashes}"
    );
    assert!(redeliveries_seen, "no crash ever forced a redelivery");
}

/// The CI gate for the partitioned metadata tier: the same fixed seed
/// block holds every invariant when the stack commits against
/// [`metadata::ShardedStore`] instead of the global-mutex store.
#[test]
fn fifty_plus_seeds_hold_all_invariants_sharded() {
    let config = SimConfig {
        store: StoreSelection::Sharded(8),
        ..SimConfig::default()
    };
    let outcome = explore(0, 60, &config);
    if let Some(failure) = outcome.failure {
        panic!("{failure}");
    }
    assert_eq!(outcome.passed, 60);
}

/// The sharding identity plan, end to end: the store consumes no scheduler
/// randomness, so a seed's fingerprint — fault schedule plus every
/// client-visible event — is the same whichever back-end commits.
#[test]
fn sharded_and_global_runs_are_indistinguishable() {
    let sharded_config = SimConfig {
        store: StoreSelection::Sharded(8),
        ..SimConfig::default()
    };
    for seed in [0u64, 5, 13, 42, 0xDEAD_BEEF] {
        let global = run_seed(seed).expect("global run passes");
        let sharded = run_seed_with(seed, &sharded_config).expect("sharded run passes");
        assert_eq!(
            global.fingerprint(),
            sharded.fingerprint(),
            "seed {seed}: sharded history diverged from global"
        );
        assert_eq!(global.history.events(), sharded.history.events());
    }
}

/// Heavier contention (more writers on the shared item) still converges
/// and still loses nothing.
#[test]
fn high_contention_configuration_passes() {
    let config = SimConfig {
        writers: 5,
        commits_per_writer: 10,
        crash_permille: 250,
        rates: FaultRates::chaotic(),
        ..SimConfig::default()
    };
    for seed in 0..10 {
        if let Err(failure) = run_seed_with(seed, &config) {
            panic!("{failure}");
        }
    }
}
