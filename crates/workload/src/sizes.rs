//! File-size distribution: a capped lognormal calibrated to the
//! measurements the paper relies on (Liu et al., CCGRID'13: "90% of files
//! are smaller than 4 MB") and to the generated trace's reported average
//! file size of 583 KB.

use rand::Rng;

/// Lognormal file-size sampler with a hard cap.
#[derive(Debug, Clone, PartialEq)]
pub struct FileSizeDist {
    /// Mean of ln(size).
    pub mu: f64,
    /// Std dev of ln(size).
    pub sigma: f64,
    /// Hard cap in bytes (the tail of real traces is long but finite).
    pub cap: u64,
    /// Minimum size in bytes.
    pub floor: u64,
}

impl FileSizeDist {
    /// The paper-calibrated distribution: median ≈ 80 KB, σ = 2.0 ⇒ mean
    /// ≈ 590 KB, and well over 90% of samples below 4 MB.
    pub fn paper() -> Self {
        FileSizeDist {
            mu: (80_000f64).ln(),
            sigma: 2.0,
            cap: 100 * 1024 * 1024,
            floor: 16,
        }
    }

    /// A tiny-scale variant for fast tests (mean a few KB).
    pub fn test_scale() -> Self {
        FileSizeDist {
            mu: (2_000f64).ln(),
            sigma: 1.0,
            cap: 64 * 1024,
            floor: 16,
        }
    }

    /// Samples one file size in bytes.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        // Box-Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let size = (self.mu + self.sigma * z).exp();
        (size as u64).clamp(self.floor, self.cap)
    }

    /// Empirical CDF helper: fraction of `samples` ≤ `threshold`.
    pub fn cdf_at(samples: &[u64], threshold: u64) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples.iter().filter(|&&s| s <= threshold).count() as f64 / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples(n: usize) -> Vec<u64> {
        let d = FileSizeDist::paper();
        let mut rng = StdRng::seed_from_u64(42);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn ninety_percent_below_4mb() {
        let s = samples(50_000);
        let frac = FileSizeDist::cdf_at(&s, 4 * 1024 * 1024);
        assert!(
            frac >= 0.90,
            "paper requires ≥90% of files < 4 MB, got {frac:.3}"
        );
    }

    #[test]
    fn mean_is_roughly_583kb() {
        let s = samples(200_000);
        let mean = s.iter().sum::<u64>() as f64 / s.len() as f64;
        assert!(
            (300_000.0..900_000.0).contains(&mean),
            "mean {mean:.0} should be in the hundreds of KB (paper: 583 KB)"
        );
    }

    #[test]
    fn respects_floor_and_cap() {
        let d = FileSizeDist {
            mu: 0.0,
            sigma: 5.0,
            cap: 1000,
            floor: 10,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((10..=1000).contains(&s));
        }
    }

    #[test]
    fn cdf_helper() {
        let s = vec![1, 2, 3, 4, 5];
        assert_eq!(FileSizeDist::cdf_at(&s, 3), 0.6);
        assert_eq!(FileSizeDist::cdf_at(&[], 3), 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let d = FileSizeDist::paper();
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
