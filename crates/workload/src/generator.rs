//! The three-parameter trace generator (paper §5.2.1): from `(initial
//! files, training iterations, snapshots)` to a sequence of ADD / UPDATE /
//! REMOVE operations with sizes and change patterns.

use crate::changes::ChangePattern;
use crate::markov::{FileState, MarkovModel};
use crate::sizes::FileSizeDist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Threshold under which files are eligible for UPDATE patterns (the paper
/// only modifies files smaller than 4 MB).
pub const UPDATE_SIZE_LIMIT: u64 = 4 * 1024 * 1024;

/// One operation in a generated trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// A file is created with the given size; `content_seed` makes its
    /// bytes reproducible.
    Add {
        /// Workspace-relative path.
        path: String,
        /// File size in bytes.
        size: u64,
        /// Seed for deterministic content generation.
        content_seed: u64,
    },
    /// An existing file is modified.
    Update {
        /// Workspace-relative path.
        path: String,
        /// Where the change lands.
        pattern: ChangePattern,
        /// Bytes touched per edit location.
        edit_size: usize,
        /// Seed for the edit bytes.
        content_seed: u64,
    },
    /// An existing file is removed.
    Remove {
        /// Workspace-relative path.
        path: String,
    },
}

impl TraceOp {
    /// The path the operation touches.
    pub fn path(&self) -> &str {
        match self {
            TraceOp::Add { path, .. } | TraceOp::Update { path, .. } | TraceOp::Remove { path } => {
                path
            }
        }
    }
}

/// Generator parameters. The defaults are the paper's (20 initial files, 5
/// training iterations, 100 snapshots) plus calibration constants chosen
/// to reproduce the paper's trace statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Files present before the first snapshot.
    pub initial_files: usize,
    /// Warm-up Markov steps applied before recording begins.
    pub training_iterations: usize,
    /// Number of recorded snapshots.
    pub snapshots: usize,
    /// Expected new files per snapshot (the paper's trace has ≈9.4).
    pub adds_per_snapshot: f64,
    /// Bytes touched per UPDATE edit location (the paper's 72 UPDATEs
    /// moved ≈14 KB in total ⇒ ≈200 B each).
    pub edit_size: usize,
    /// File-size distribution for ADDs.
    pub sizes: FileSizeDist,
    /// The lifecycle model.
    pub model: MarkovModel,
    /// RNG seed (the trace is fully deterministic given the config).
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            initial_files: 20,
            training_iterations: 5,
            snapshots: 100,
            adds_per_snapshot: 9.4,
            edit_size: 200,
            sizes: FileSizeDist::paper(),
            model: MarkovModel::homes(),
            seed: 2014,
        }
    }
}

impl GeneratorConfig {
    /// A miniature configuration for fast tests and examples.
    pub fn test_scale() -> Self {
        GeneratorConfig {
            initial_files: 5,
            training_iterations: 2,
            snapshots: 20,
            adds_per_snapshot: 2.0,
            edit_size: 32,
            sizes: FileSizeDist::test_scale(),
            model: MarkovModel::homes(),
            seed: 7,
        }
    }
}

/// A generated trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Operations in execution order.
    pub ops: Vec<TraceOp>,
}

/// Aggregate statistics of a trace (the numbers §5.2.1 reports).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of ADD operations.
    pub adds: usize,
    /// Number of UPDATE operations.
    pub updates: usize,
    /// Number of REMOVE operations.
    pub removes: usize,
    /// Total bytes introduced by ADDs.
    pub add_volume: u64,
    /// Mean ADD size in bytes.
    pub avg_file_size: u64,
}

impl Trace {
    /// Generates the trace for a configuration.
    pub fn generate(config: &GeneratorConfig) -> Trace {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut ops = Vec::new();
        // Live files: (path, size, state).
        let mut live: Vec<(String, u64, FileState)> = Vec::new();
        let mut next_file = 0usize;

        let add_file = |ops: &mut Vec<TraceOp>,
                        live: &mut Vec<(String, u64, FileState)>,
                        rng: &mut StdRng,
                        next_file: &mut usize,
                        record: bool| {
            let path = format!("dir{:02}/file{:05}.dat", *next_file % 20, *next_file);
            *next_file += 1;
            let size = config.sizes.sample(rng);
            let seed = rng.gen::<u64>();
            if record {
                ops.push(TraceOp::Add {
                    path: path.clone(),
                    size,
                    content_seed: seed,
                });
            }
            live.push((path, size, FileState::New));
        };

        // Initial population (recorded as ADDs: executing the trace must
        // reproduce the full workspace).
        for _ in 0..config.initial_files {
            add_file(&mut ops, &mut live, &mut rng, &mut next_file, true);
        }

        // Warm-up: evolve states without recording ops (the paper's
        // "training iterations" season the model's state distribution).
        for _ in 0..config.training_iterations {
            for entry in &mut live {
                entry.2 = config.model.step(entry.2, &mut rng);
            }
            live.retain(|(_, _, s)| *s != FileState::Deleted);
        }

        // Recorded snapshots.
        for _ in 0..config.snapshots {
            // New arrivals (Poisson via thinning on a geometric-ish loop).
            let mut expect = config.adds_per_snapshot;
            while expect > 0.0 {
                if expect >= 1.0 || rng.gen::<f64>() < expect {
                    add_file(&mut ops, &mut live, &mut rng, &mut next_file, true);
                }
                expect -= 1.0;
            }
            // Lifecycle transitions for existing files.
            let mut removals = Vec::new();
            for (i, entry) in live.iter_mut().enumerate() {
                let next = config.model.step(entry.2, &mut rng);
                match next {
                    FileState::Modified => {
                        // Only files below the limit get patterned updates.
                        if entry.1 < UPDATE_SIZE_LIMIT {
                            let pattern = ChangePattern::sample(&mut rng);
                            let seed = rng.gen::<u64>();
                            ops.push(TraceOp::Update {
                                path: entry.0.clone(),
                                pattern,
                                edit_size: config.edit_size,
                                content_seed: seed,
                            });
                        }
                        entry.2 = FileState::Modified;
                    }
                    FileState::Deleted => {
                        ops.push(TraceOp::Remove {
                            path: entry.0.clone(),
                        });
                        removals.push(i);
                        entry.2 = FileState::Deleted;
                    }
                    other => entry.2 = other,
                }
            }
            live.retain(|(_, _, s)| *s != FileState::Deleted);
        }

        Trace { ops }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> TraceStats {
        let mut adds = 0;
        let mut updates = 0;
        let mut removes = 0;
        let mut add_volume = 0u64;
        for op in &self.ops {
            match op {
                TraceOp::Add { size, .. } => {
                    adds += 1;
                    add_volume += size;
                }
                TraceOp::Update { .. } => updates += 1,
                TraceOp::Remove { .. } => removes += 1,
            }
        }
        TraceStats {
            adds,
            updates,
            removes,
            add_volume,
            avg_file_size: if adds > 0 {
                add_volume / adds as u64
            } else {
                0
            },
        }
    }

    /// Sizes of all ADD operations (for the Fig. 7(a) CDF).
    pub fn add_sizes(&self) -> Vec<u64> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                TraceOp::Add { size, .. } => Some(*size),
                _ => None,
            })
            .collect()
    }

    /// Splits into three single-action traces (the Fig. 7(c)/(d) variant:
    /// "we grouped all the actions of the same type").
    pub fn split_by_action(&self) -> (Trace, Trace, Trace) {
        let filter = |pred: fn(&TraceOp) -> bool| Trace {
            ops: self.ops.iter().filter(|op| pred(op)).cloned().collect(),
        };
        (
            filter(|op| matches!(op, TraceOp::Add { .. })),
            filter(|op| matches!(op, TraceOp::Update { .. })),
            filter(|op| matches!(op, TraceOp::Remove { .. })),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn default_config_reproduces_paper_statistics() {
        let trace = Trace::generate(&GeneratorConfig::default());
        let stats = trace.stats();
        // Paper: 940 ADDs, 72 UPDATEs, 228 REMOVEs, 535.41 MB, avg 583 KB.
        assert!(
            (800..1100).contains(&stats.adds),
            "ADD count {} should be near 940",
            stats.adds
        );
        assert!(
            (30..130).contains(&stats.updates),
            "UPDATE count {} should be near 72",
            stats.updates
        );
        assert!(
            (150..320).contains(&stats.removes),
            "REMOVE count {} should be near 228",
            stats.removes
        );
        let mb = stats.add_volume as f64 / 1e6;
        assert!(
            (300.0..900.0).contains(&mb),
            "ADD volume {mb:.0} MB should be near 535 MB"
        );
        let avg_kb = stats.avg_file_size as f64 / 1e3;
        assert!(
            (300.0..900.0).contains(&avg_kb),
            "avg file size {avg_kb:.0} KB should be near 583 KB"
        );
    }

    #[test]
    fn trace_is_deterministic() {
        let cfg = GeneratorConfig::test_scale();
        assert_eq!(Trace::generate(&cfg), Trace::generate(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = Trace::generate(&GeneratorConfig::test_scale());
        let b = Trace::generate(&GeneratorConfig {
            seed: 8,
            ..GeneratorConfig::test_scale()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn trace_is_executable() {
        // Every UPDATE/REMOVE must reference a file that exists at that
        // point; ADDs never collide with live paths.
        let trace = Trace::generate(&GeneratorConfig::default());
        let mut live: HashSet<&str> = HashSet::new();
        for op in &trace.ops {
            match op {
                TraceOp::Add { path, .. } => {
                    assert!(live.insert(path), "ADD of existing path {path}");
                }
                TraceOp::Update { path, .. } => {
                    assert!(live.contains(path.as_str()), "UPDATE of missing {path}");
                }
                TraceOp::Remove { path } => {
                    assert!(live.remove(path.as_str()), "REMOVE of missing {path}");
                }
            }
        }
    }

    #[test]
    fn updates_only_touch_small_files() {
        let trace = Trace::generate(&GeneratorConfig::default());
        let mut sizes: std::collections::HashMap<&str, u64> = Default::default();
        for op in &trace.ops {
            match op {
                TraceOp::Add { path, size, .. } => {
                    sizes.insert(path, *size);
                }
                TraceOp::Update { path, .. } => {
                    assert!(
                        sizes[path.as_str()] < UPDATE_SIZE_LIMIT,
                        "update touched a ≥4MB file"
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn split_by_action_partitions() {
        let trace = Trace::generate(&GeneratorConfig::test_scale());
        let (adds, updates, removes) = trace.split_by_action();
        assert_eq!(
            adds.ops.len() + updates.ops.len() + removes.ops.len(),
            trace.ops.len()
        );
        assert!(adds.ops.iter().all(|o| matches!(o, TraceOp::Add { .. })));
        assert!(updates
            .ops
            .iter()
            .all(|o| matches!(o, TraceOp::Update { .. })));
        assert!(removes
            .ops
            .iter()
            .all(|o| matches!(o, TraceOp::Remove { .. })));
    }

    #[test]
    fn add_sizes_matches_adds() {
        let trace = Trace::generate(&GeneratorConfig::test_scale());
        assert_eq!(trace.add_sizes().len(), trace.stats().adds);
    }
}
