//! Modification patterns (paper §5.2.1): where an UPDATE touches a file.
//!
//! Probabilities from the "Homes" change pattern: B(eginning) 38%, E(nd)
//! 8%, M(iddle) 3%; the remaining 51% is split uniformly across the
//! combinations BE, BM and EM. Patterns are only applied to files smaller
//! than 4 MB, as in the paper.

use rand::Rng;

/// Where a modification touches the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChangePattern {
    /// Prepend bytes at the beginning.
    B,
    /// Append bytes at the end.
    E,
    /// Overwrite bytes somewhere in the middle.
    M,
    /// Beginning + end.
    BE,
    /// Beginning + middle.
    BM,
    /// End + middle.
    EM,
}

impl ChangePattern {
    /// Samples a pattern with the paper's probabilities.
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        let x: f64 = rng.gen();
        match x {
            x if x < 0.38 => ChangePattern::B,
            x if x < 0.46 => ChangePattern::E,
            x if x < 0.49 => ChangePattern::M,
            x if x < 0.66 => ChangePattern::BE,
            x if x < 0.83 => ChangePattern::BM,
            _ => ChangePattern::EM,
        }
    }

    /// Whether the pattern includes a beginning change (the one that
    /// triggers the boundary-shifting problem for fixed chunking).
    pub fn touches_beginning(&self) -> bool {
        matches!(
            self,
            ChangePattern::B | ChangePattern::BE | ChangePattern::BM
        )
    }

    /// Applies the pattern to `data`, mutating roughly `edit_size` bytes
    /// per touched location. Prepends/appends insert fresh bytes; middle
    /// changes overwrite in place.
    pub fn apply<R: Rng>(&self, data: &[u8], edit_size: usize, rng: &mut R) -> Vec<u8> {
        let mut out = data.to_vec();
        let fresh =
            |rng: &mut R| -> Vec<u8> { (0..edit_size.max(1)).map(|_| rng.gen::<u8>()).collect() };
        if matches!(
            self,
            ChangePattern::B | ChangePattern::BE | ChangePattern::BM
        ) {
            let mut prefixed = fresh(rng);
            prefixed.extend_from_slice(&out);
            out = prefixed;
        }
        if matches!(
            self,
            ChangePattern::M | ChangePattern::BM | ChangePattern::EM
        ) && !out.is_empty()
        {
            let len = edit_size.max(1).min(out.len());
            let start = rng.gen_range(0..=out.len() - len);
            for b in &mut out[start..start + len] {
                *b = rng.gen();
            }
        }
        if matches!(
            self,
            ChangePattern::E | ChangePattern::BE | ChangePattern::EM
        ) {
            out.extend(fresh(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_matches_paper_probabilities() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts
                .entry(ChangePattern::sample(&mut rng))
                .or_insert(0u32) += 1;
        }
        let frac = |p: ChangePattern| counts.get(&p).copied().unwrap_or(0) as f64 / n as f64;
        assert!((frac(ChangePattern::B) - 0.38).abs() < 0.01);
        assert!((frac(ChangePattern::E) - 0.08).abs() < 0.01);
        assert!((frac(ChangePattern::M) - 0.03).abs() < 0.01);
        assert!((frac(ChangePattern::BE) - 0.17).abs() < 0.01);
        assert!((frac(ChangePattern::BM) - 0.17).abs() < 0.01);
        assert!((frac(ChangePattern::EM) - 0.17).abs() < 0.01);
    }

    #[test]
    fn b_prepends() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = vec![7u8; 100];
        let out = ChangePattern::B.apply(&data, 10, &mut rng);
        assert_eq!(out.len(), 110);
        assert_eq!(&out[10..], &data[..]);
    }

    #[test]
    fn e_appends() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = vec![7u8; 100];
        let out = ChangePattern::E.apply(&data, 10, &mut rng);
        assert_eq!(out.len(), 110);
        assert_eq!(&out[..100], &data[..]);
    }

    #[test]
    fn m_preserves_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = vec![7u8; 100];
        let out = ChangePattern::M.apply(&data, 10, &mut rng);
        assert_eq!(out.len(), 100);
        assert_ne!(out, data, "middle overwrite must change bytes");
    }

    #[test]
    fn combos_apply_both_edits() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = vec![7u8; 100];
        assert_eq!(ChangePattern::BE.apply(&data, 10, &mut rng).len(), 120);
        assert_eq!(ChangePattern::BM.apply(&data, 10, &mut rng).len(), 110);
        assert_eq!(ChangePattern::EM.apply(&data, 10, &mut rng).len(), 110);
    }

    #[test]
    fn empty_file_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [
            ChangePattern::B,
            ChangePattern::E,
            ChangePattern::M,
            ChangePattern::BE,
            ChangePattern::BM,
            ChangePattern::EM,
        ] {
            let out = p.apply(&[], 10, &mut rng);
            // Must not panic; prepend/append still grow the file.
            if p.touches_beginning() || matches!(p, ChangePattern::E | ChangePattern::EM) {
                assert!(!out.is_empty());
            }
        }
    }

    #[test]
    fn touches_beginning_classification() {
        assert!(ChangePattern::B.touches_beginning());
        assert!(ChangePattern::BE.touches_beginning());
        assert!(ChangePattern::BM.touches_beginning());
        assert!(!ChangePattern::E.touches_beginning());
        assert!(!ChangePattern::M.touches_beginning());
        assert!(!ChangePattern::EM.touches_beginning());
    }
}
