//! The file-lifecycle Markov model (Tarasov et al., USENIX ATC'12).
//!
//! Each file is in one of four states — New, Modified, Unmodified, Deleted
//! — and transitions at every snapshot. The paper extracts the transition
//! matrix from the public "Homes" dataset; the dataset itself is not
//! redistributable, so the matrix here is calibrated to reproduce the
//! aggregate statistics the paper reports for its generated trace
//! (§5.2.1): with ~356 live files on average over 100 snapshots, 72
//! UPDATEs and 228 REMOVEs imply per-snapshot modify ≈ 0.002 and delete
//! ≈ 0.0064.

use rand::Rng;

/// Lifecycle state of one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileState {
    /// Created in the current snapshot.
    New,
    /// Modified in the current snapshot.
    Modified,
    /// Present and untouched.
    Unmodified,
    /// Deleted (absorbing).
    Deleted,
}

/// Row-stochastic transition matrix over [`FileState`].
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovModel {
    /// `p[from][to]` with state order N, M, U, D.
    p: [[f64; 4]; 4],
}

fn index(s: FileState) -> usize {
    match s {
        FileState::New => 0,
        FileState::Modified => 1,
        FileState::Unmodified => 2,
        FileState::Deleted => 3,
    }
}

const STATES: [FileState; 4] = [
    FileState::New,
    FileState::Modified,
    FileState::Unmodified,
    FileState::Deleted,
];

impl MarkovModel {
    /// Builds a model from a row-stochastic matrix (state order N,M,U,D).
    ///
    /// # Panics
    ///
    /// Panics if any row does not sum to 1 (±1e-9) or has negative entries.
    pub fn new(p: [[f64; 4]; 4]) -> Self {
        for (i, row) in p.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "row {i} sums to {sum}, expected 1"
            );
            assert!(row.iter().all(|&x| x >= 0.0), "row {i} has negative entry");
        }
        MarkovModel { p }
    }

    /// The calibrated "Homes"-like matrix (see module docs).
    pub fn homes() -> Self {
        MarkovModel::new([
            // from New: mostly settle to Unmodified, rarely touched again
            [0.0, 0.0060, 0.9850, 0.0090],
            // from Modified: usually settle, sometimes modified again
            [0.0, 0.0300, 0.9500, 0.0200],
            // from Unmodified: the common state; updates and deletes rare
            [0.0, 0.0020, 0.9916, 0.0064],
            // Deleted is absorbing
            [0.0, 0.0, 0.0, 1.0],
        ])
    }

    /// Transition probability.
    pub fn prob(&self, from: FileState, to: FileState) -> f64 {
        self.p[index(from)][index(to)]
    }

    /// Samples the next state.
    pub fn step<R: Rng>(&self, from: FileState, rng: &mut R) -> FileState {
        let row = &self.p[index(from)];
        let mut x: f64 = rng.gen();
        for (i, &p) in row.iter().enumerate() {
            if x < p {
                return STATES[i];
            }
            x -= p;
        }
        // Floating point slack: fall back to the last state with mass.
        STATES[3]
    }

    /// Stationary expectation sanity check: expected steps before deletion
    /// starting from Unmodified (used to validate calibration).
    pub fn expected_lifetime_from_unmodified(&self) -> f64 {
        // For this matrix class the delete hazard from U dominates; a
        // simple geometric approximation suffices for calibration checks.
        1.0 / self.prob(FileState::Unmodified, FileState::Deleted)
    }
}

impl Default for MarkovModel {
    fn default() -> Self {
        Self::homes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn homes_rows_are_stochastic() {
        let m = MarkovModel::homes();
        for s in STATES {
            let total: f64 = STATES.iter().map(|&t| m.prob(s, t)).sum();
            assert!((total - 1.0).abs() < 1e-9, "row {s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn non_stochastic_matrix_panics() {
        let _ = MarkovModel::new([[0.5; 4]; 4]);
    }

    #[test]
    fn deleted_is_absorbing() {
        let m = MarkovModel::homes();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(m.step(FileState::Deleted, &mut rng), FileState::Deleted);
        }
    }

    #[test]
    fn step_frequencies_match_probabilities() {
        let m = MarkovModel::homes();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut deletes = 0;
        let mut modifies = 0;
        for _ in 0..n {
            match m.step(FileState::Unmodified, &mut rng) {
                FileState::Deleted => deletes += 1,
                FileState::Modified => modifies += 1,
                _ => {}
            }
        }
        let p_del = deletes as f64 / n as f64;
        let p_mod = modifies as f64 / n as f64;
        assert!((p_del - 0.0064).abs() < 0.001, "delete rate {p_del}");
        assert!((p_mod - 0.0020).abs() < 0.001, "modify rate {p_mod}");
    }

    #[test]
    fn lifetime_estimate_is_sane() {
        let m = MarkovModel::homes();
        let life = m.expected_lifetime_from_unmodified();
        assert!((100.0..300.0).contains(&life), "lifetime {life}");
    }
}
