//! Ubuntu One arrival-trace synthesizer (paper §5.3.1).
//!
//! The paper drives its elasticity experiments with an anonymized trace of
//! commit-request arrivals to the Ubuntu One control servers (November
//! 2013): a full week to train the predictive provisioner plus "day 8" as
//! the experiment input, with a peak of 8,514 requests per minute. The
//! trace was never published, so this module synthesizes an arrival
//! process with the properties the paper (and the measurement studies it
//! cites) attribute to Personal Cloud workloads:
//!
//! * strong diurnal seasonality — peak around noon, trough in the night;
//! * weekly structure — weekends noticeably quieter;
//! * day-to-day similarity — day 8 "closely resembles" the previous week;
//! * short-term burstiness — multiplicative noise and occasional flash
//!   spikes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthesizer parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Ub1Config {
    /// Peak arrival rate, requests per minute (paper: 8,514).
    pub peak_per_min: f64,
    /// Trough-to-peak ratio (nighttime floor).
    pub trough_ratio: f64,
    /// Weekend dampening factor.
    pub weekend_factor: f64,
    /// Std-dev of the multiplicative lognormal noise.
    pub noise_sigma: f64,
    /// Expected flash-crowd bursts per day.
    pub bursts_per_day: f64,
    /// Burst magnitude as a multiple of the local rate.
    pub burst_multiplier: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Ub1Config {
    fn default() -> Self {
        Ub1Config {
            peak_per_min: 8514.0,
            trough_ratio: 0.18,
            weekend_factor: 0.70,
            noise_sigma: 0.08,
            bursts_per_day: 1.5,
            burst_multiplier: 1.8,
            seed: 20131101,
        }
    }
}

/// A synthesized arrival trace: one entry per minute.
#[derive(Debug, Clone, PartialEq)]
pub struct Ub1Trace {
    /// Arrivals per minute, minute 0 = 00:00 of day 1.
    pub per_minute: Vec<f64>,
}

const MINUTES_PER_DAY: usize = 24 * 60;

impl Ub1Trace {
    /// Synthesizes `days` days of arrivals.
    pub fn synthesize(config: &Ub1Config, days: usize) -> Ub1Trace {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut per_minute = Vec::with_capacity(days * MINUTES_PER_DAY);
        for day in 0..days {
            // Weekends: days 6 and 7 of each week.
            let weekly = if day % 7 >= 5 {
                config.weekend_factor
            } else {
                1.0
            };
            // A couple of burst windows per day.
            let mut bursts: Vec<(usize, usize, f64)> = Vec::new();
            let n_bursts = {
                let mut n = 0;
                let mut expect = config.bursts_per_day;
                while expect > 0.0 {
                    if expect >= 1.0 || rng.gen::<f64>() < expect {
                        n += 1;
                    }
                    expect -= 1.0;
                }
                n
            };
            for _ in 0..n_bursts {
                let start = rng.gen_range(0..MINUTES_PER_DAY);
                let len = rng.gen_range(3usize..20);
                let magnitude = 1.0 + (config.burst_multiplier - 1.0) * rng.gen::<f64>();
                bursts.push((start, start + len, magnitude));
            }
            for minute in 0..MINUTES_PER_DAY {
                let seasonal = Self::diurnal_shape(minute);
                let base = config.peak_per_min
                    * weekly
                    * (config.trough_ratio + (1.0 - config.trough_ratio) * seasonal);
                // Multiplicative lognormal noise.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let noise = (config.noise_sigma * z).exp();
                let burst = bursts
                    .iter()
                    .filter(|(s, e, _)| (*s..*e).contains(&minute))
                    .map(|(_, _, m)| *m)
                    .fold(1.0, f64::max);
                per_minute.push((base * noise * burst).max(0.0));
            }
        }
        Ub1Trace { per_minute }
    }

    /// The diurnal profile in `[0, 1]`: trough ≈ 04:00, peak ≈ 13:00
    /// (the paper: "peaks around noon ... minimum level in the middle of
    /// the night").
    fn diurnal_shape(minute_of_day: usize) -> f64 {
        let hours = minute_of_day as f64 / 60.0;
        // Shifted raised cosine peaking at 13:00.
        let phase = (hours - 13.0) / 24.0 * std::f64::consts::TAU;
        (0.5 * (1.0 + phase.cos())).powf(1.3)
    }

    /// Number of days in the trace.
    pub fn days(&self) -> usize {
        self.per_minute.len() / MINUTES_PER_DAY
    }

    /// One day's slice (0-indexed), arrivals per minute.
    pub fn day(&self, day: usize) -> &[f64] {
        &self.per_minute[day * MINUTES_PER_DAY..(day + 1) * MINUTES_PER_DAY]
    }

    /// Aggregates a day into mean rates (req/s) per slot of `slot_minutes`
    /// — the feed for the 15-minute predictive provisioner.
    pub fn day_slot_rates(&self, day: usize, slot_minutes: usize) -> Vec<f64> {
        self.day(day)
            .chunks(slot_minutes)
            .map(|slot| slot.iter().sum::<f64>() / (slot.len() as f64 * 60.0))
            .collect()
    }

    /// Concatenated slot rates (req/s) for a day range — e.g. days 0..7 as
    /// the predictor's training history.
    pub fn slot_rates(&self, days: std::ops::Range<usize>, slot_minutes: usize) -> Vec<f64> {
        days.flat_map(|d| self.day_slot_rates(d, slot_minutes))
            .collect()
    }

    /// Peak arrivals per minute over a day.
    pub fn day_peak(&self, day: usize) -> f64 {
        self.day(day).iter().cloned().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Ub1Trace {
        Ub1Trace::synthesize(&Ub1Config::default(), 8)
    }

    #[test]
    fn eight_days_of_minutes() {
        let t = trace();
        assert_eq!(t.days(), 8);
        assert_eq!(t.per_minute.len(), 8 * 24 * 60);
    }

    #[test]
    fn peak_is_near_the_paper_number() {
        let t = trace();
        let peak = t.day_peak(7);
        assert!(
            (6000.0..16000.0).contains(&peak),
            "day-8 peak {peak:.0} should be near 8,514 req/min"
        );
    }

    #[test]
    fn diurnal_pattern_peaks_at_midday_and_troughs_at_night() {
        let t = trace();
        let day = t.day(7);
        let noonish: f64 = day[12 * 60..14 * 60].iter().sum::<f64>() / 120.0;
        let night: f64 = day[2 * 60..4 * 60].iter().sum::<f64>() / 120.0;
        assert!(
            noonish > 2.5 * night,
            "noon {noonish:.0} must dominate night {night:.0}"
        );
    }

    #[test]
    fn weekends_are_quieter() {
        let t = trace();
        // Days 0-4 weekdays, 5-6 weekend under our convention.
        let weekday_total: f64 = t.day(2).iter().sum();
        let weekend_total: f64 = t.day(5).iter().sum();
        assert!(weekend_total < 0.9 * weekday_total);
    }

    #[test]
    fn day8_resembles_previous_weekdays() {
        // Correlation of the day-8 (index 7, a weekday) profile with day 1
        // must be high — that is the property the predictive provisioner
        // exploits.
        let t = trace();
        let a = t.day_slot_rates(0, 15);
        let b = t.day_slot_rates(7, 15);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (ma, mb) = (mean(&a), mean(&b));
        let cov: f64 = a.iter().zip(&b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
        let corr = cov / (va.sqrt() * vb.sqrt());
        assert!(corr > 0.95, "day-8/day-1 correlation {corr:.3} too low");
    }

    #[test]
    fn slot_rates_aggregate_correctly() {
        let t = trace();
        let slots = t.day_slot_rates(0, 15);
        assert_eq!(slots.len(), 96);
        // Rate in req/s: slot sum / (15*60).
        let manual: f64 = t.day(0)[..15].iter().sum::<f64>() / 900.0;
        assert!((slots[0] - manual).abs() < 1e-9);
        let week = t.slot_rates(0..7, 15);
        assert_eq!(week.len(), 7 * 96);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Ub1Trace::synthesize(&Ub1Config::default(), 2);
        let b = Ub1Trace::synthesize(&Ub1Config::default(), 2);
        assert_eq!(a, b);
        let c = Ub1Trace::synthesize(
            &Ub1Config {
                seed: 1,
                ..Ub1Config::default()
            },
            2,
        );
        assert_ne!(a, c);
    }

    #[test]
    fn rates_are_nonnegative() {
        let t = trace();
        assert!(t.per_minute.iter().all(|&r| r >= 0.0));
    }
}
