//! Ubuntu One arrival-trace synthesizer (paper §5.3.1).
//!
//! The paper drives its elasticity experiments with an anonymized trace of
//! commit-request arrivals to the Ubuntu One control servers (November
//! 2013): a full week to train the predictive provisioner plus "day 8" as
//! the experiment input, with a peak of 8,514 requests per minute. The
//! trace was never published, so this module synthesizes an arrival
//! process with the properties the paper (and the measurement studies it
//! cites) attribute to Personal Cloud workloads:
//!
//! * strong diurnal seasonality — peak around noon, trough in the night;
//! * weekly structure — weekends noticeably quieter;
//! * day-to-day similarity — day 8 "closely resembles" the previous week;
//! * short-term burstiness — multiplicative noise and occasional flash
//!   spikes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Synthesizer parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Ub1Config {
    /// Peak arrival rate, requests per minute (paper: 8,514).
    pub peak_per_min: f64,
    /// Trough-to-peak ratio (nighttime floor).
    pub trough_ratio: f64,
    /// Weekend dampening factor.
    pub weekend_factor: f64,
    /// Std-dev of the multiplicative lognormal noise.
    pub noise_sigma: f64,
    /// Expected flash-crowd bursts per day.
    pub bursts_per_day: f64,
    /// Burst magnitude as a multiple of the local rate.
    pub burst_multiplier: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Ub1Config {
    fn default() -> Self {
        Ub1Config {
            peak_per_min: 8514.0,
            trough_ratio: 0.18,
            weekend_factor: 0.70,
            noise_sigma: 0.08,
            bursts_per_day: 1.5,
            burst_multiplier: 1.8,
            seed: 20131101,
        }
    }
}

/// A synthesized arrival trace: one entry per minute.
#[derive(Debug, Clone, PartialEq)]
pub struct Ub1Trace {
    /// Arrivals per minute, minute 0 = 00:00 of day 1.
    pub per_minute: Vec<f64>,
}

/// Minutes in one trace day (the unit of [`ArrivalSchedule::day`]).
pub const MINUTES_PER_DAY: usize = 24 * 60;

impl Ub1Trace {
    /// Synthesizes `days` days of arrivals.
    pub fn synthesize(config: &Ub1Config, days: usize) -> Ub1Trace {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut per_minute = Vec::with_capacity(days * MINUTES_PER_DAY);
        for day in 0..days {
            // Weekends: days 6 and 7 of each week.
            let weekly = if day % 7 >= 5 {
                config.weekend_factor
            } else {
                1.0
            };
            // A couple of burst windows per day.
            let mut bursts: Vec<(usize, usize, f64)> = Vec::new();
            let n_bursts = {
                let mut n = 0;
                let mut expect = config.bursts_per_day;
                while expect > 0.0 {
                    if expect >= 1.0 || rng.gen::<f64>() < expect {
                        n += 1;
                    }
                    expect -= 1.0;
                }
                n
            };
            for _ in 0..n_bursts {
                let start = rng.gen_range(0..MINUTES_PER_DAY);
                let len = rng.gen_range(3usize..20);
                let magnitude = 1.0 + (config.burst_multiplier - 1.0) * rng.gen::<f64>();
                bursts.push((start, start + len, magnitude));
            }
            for minute in 0..MINUTES_PER_DAY {
                let seasonal = Self::diurnal_shape(minute);
                let base = config.peak_per_min
                    * weekly
                    * (config.trough_ratio + (1.0 - config.trough_ratio) * seasonal);
                // Multiplicative lognormal noise.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let noise = (config.noise_sigma * z).exp();
                let burst = bursts
                    .iter()
                    .filter(|(s, e, _)| (*s..*e).contains(&minute))
                    .map(|(_, _, m)| *m)
                    .fold(1.0, f64::max);
                per_minute.push((base * noise * burst).max(0.0));
            }
        }
        Ub1Trace { per_minute }
    }

    /// The diurnal profile in `[0, 1]`: trough ≈ 04:00, peak ≈ 13:00
    /// (the paper: "peaks around noon ... minimum level in the middle of
    /// the night").
    fn diurnal_shape(minute_of_day: usize) -> f64 {
        let hours = minute_of_day as f64 / 60.0;
        // Shifted raised cosine peaking at 13:00.
        let phase = (hours - 13.0) / 24.0 * std::f64::consts::TAU;
        (0.5 * (1.0 + phase.cos())).powf(1.3)
    }

    /// Number of days in the trace.
    pub fn days(&self) -> usize {
        self.per_minute.len() / MINUTES_PER_DAY
    }

    /// One day's slice (0-indexed), arrivals per minute.
    pub fn day(&self, day: usize) -> &[f64] {
        &self.per_minute[day * MINUTES_PER_DAY..(day + 1) * MINUTES_PER_DAY]
    }

    /// The whole trace as an [`ArrivalSchedule`]: 1-minute slots, real
    /// time. Narrow and reshape with the builder methods —
    /// `trace.schedule().day(7).slots_of(15).compress(1440.0)` is "day 8
    /// in 15-minute slots, the day compressed to 60 wall seconds".
    pub fn schedule(&self) -> ArrivalSchedule<'_> {
        ArrivalSchedule {
            trace: self,
            start_minute: 0,
            minutes: self.per_minute.len(),
            slot_minutes: 1,
            compression: 1.0,
        }
    }

    /// Aggregates a day into mean rates (req/s) per slot of `slot_minutes`
    /// — the feed for the 15-minute predictive provisioner.
    ///
    /// Thin forwarder kept for the fig8* harness binaries; prefer
    /// [`Ub1Trace::schedule`] with [`ArrivalSchedule::slots_of`].
    pub fn day_slot_rates(&self, day: usize, slot_minutes: usize) -> Vec<f64> {
        self.schedule().day(day).slots_of(slot_minutes).rates()
    }

    /// Concatenated slot rates (req/s) for a day range — e.g. days 0..7 as
    /// the predictor's training history.
    ///
    /// Thin forwarder; prefer [`Ub1Trace::schedule`] per day.
    pub fn slot_rates(&self, days: std::ops::Range<usize>, slot_minutes: usize) -> Vec<f64> {
        days.flat_map(|d| self.day_slot_rates(d, slot_minutes))
            .collect()
    }

    /// Peak arrivals per minute over a day.
    ///
    /// Thin forwarder; prefer [`ArrivalSchedule::peak_per_minute`].
    pub fn day_peak(&self, day: usize) -> f64 {
        self.schedule().day(day).peak_per_minute()
    }
}

/// A borrowed window of a [`Ub1Trace`] viewed as a schedule of arrival
/// slots, optionally compressed in time — the single accessor the
/// simulator, the fig8 harnesses, and the live TCP replay all build on.
///
/// The schedule is a cheap `Copy` view; builder methods narrow it (a day, a
/// minute window), reshape it (slot width), or compress it (trace seconds
/// per wall second). Compression scales *rates up* as it scales durations
/// down: replaying a day in 60 wall seconds multiplies every arrival rate
/// by 1,440, which is exactly the stress the live harness wants.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalSchedule<'a> {
    trace: &'a Ub1Trace,
    start_minute: usize,
    minutes: usize,
    slot_minutes: usize,
    compression: f64,
}

/// One slot yielded by [`ArrivalSchedule::iter`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSlot {
    /// Slot index within the schedule window.
    pub index: usize,
    /// Absolute trace minute at which the slot starts.
    pub trace_minute: usize,
    /// Wall-clock offset of the slot start from the window start
    /// (compressed time).
    pub start: Duration,
    /// Wall-clock length of the slot (compressed time).
    pub duration: Duration,
    /// Mean arrival rate over the slot in wall req/s — the trace rate
    /// multiplied by the compression factor.
    pub rate: f64,
    /// Mean arrival rate over the slot in trace req/s (uncompressed).
    pub trace_rate: f64,
}

impl<'a> ArrivalSchedule<'a> {
    /// Narrows the schedule to one day of the trace.
    ///
    /// # Panics
    ///
    /// Panics if the day is out of range of the current window.
    pub fn day(self, day: usize) -> Self {
        self.window(day * MINUTES_PER_DAY, MINUTES_PER_DAY)
    }

    /// Narrows the schedule to `minutes` minutes starting `offset_minutes`
    /// into the current window.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the current bounds.
    pub fn window(self, offset_minutes: usize, minutes: usize) -> Self {
        assert!(
            offset_minutes + minutes <= self.minutes,
            "window {offset_minutes}+{minutes} exceeds schedule of {} minutes",
            self.minutes
        );
        ArrivalSchedule {
            start_minute: self.start_minute + offset_minutes,
            minutes,
            ..self
        }
    }

    /// Sets the slot width (paper: 15 minutes for the predictor).
    ///
    /// # Panics
    ///
    /// Panics if `minutes` is zero.
    pub fn slots_of(self, minutes: usize) -> Self {
        assert!(minutes > 0, "slot width must be positive");
        ArrivalSchedule {
            slot_minutes: minutes,
            ..self
        }
    }

    /// Sets the time-compression factor: trace seconds per wall second
    /// (1440.0 replays a day in one minute). Rates scale up by the same
    /// factor; see [`ArrivalSlot::rate`] vs [`ArrivalSlot::trace_rate`].
    ///
    /// # Panics
    ///
    /// Panics if the factor is not finite and positive.
    pub fn compress(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "compression must be positive"
        );
        ArrivalSchedule {
            compression: factor,
            ..self
        }
    }

    /// Absolute trace minute where the window starts.
    pub fn start_minute(&self) -> usize {
        self.start_minute
    }

    /// Window length in trace minutes.
    pub fn minutes(&self) -> usize {
        self.minutes
    }

    /// The compression factor (trace seconds per wall second).
    pub fn compression(&self) -> f64 {
        self.compression
    }

    /// Wall-clock length of the whole window under compression.
    pub fn duration(&self) -> Duration {
        Duration::from_secs_f64(self.minutes as f64 * 60.0 / self.compression)
    }

    /// Iterates the slots of the window in order. A ragged final slot
    /// (window not divisible by the slot width) is yielded at its true,
    /// shorter length.
    pub fn iter(&self) -> impl Iterator<Item = ArrivalSlot> + 'a {
        let window = &self.trace.per_minute[self.start_minute..self.start_minute + self.minutes];
        let start_minute = self.start_minute;
        let slot_minutes = self.slot_minutes;
        let compression = self.compression;
        window
            .chunks(slot_minutes)
            .enumerate()
            .map(move |(index, slot)| {
                let trace_rate = slot.iter().sum::<f64>() / (slot.len() as f64 * 60.0);
                ArrivalSlot {
                    index,
                    trace_minute: start_minute + index * slot_minutes,
                    start: Duration::from_secs_f64(
                        (index * slot_minutes) as f64 * 60.0 / compression,
                    ),
                    duration: Duration::from_secs_f64(slot.len() as f64 * 60.0 / compression),
                    rate: trace_rate * compression,
                    trace_rate,
                }
            })
    }

    /// Mean trace rates (req/s) per slot — byte-identical aggregation to
    /// the old `day_slot_rates`, which now forwards here.
    pub fn rates(&self) -> Vec<f64> {
        self.iter().map(|s| s.trace_rate).collect()
    }

    /// Peak arrivals per trace minute over the window (uncompressed).
    pub fn peak_per_minute(&self) -> f64 {
        self.trace.per_minute[self.start_minute..self.start_minute + self.minutes]
            .iter()
            .cloned()
            .fold(0.0, f64::max)
    }

    /// Samples Poisson arrival offsets (wall seconds from the window
    /// start) across the window: minute `m` of the trace contributes
    /// exponential inter-arrival gaps at its per-second rate, and the
    /// resulting trace-time offsets are divided by the compression factor.
    /// At compression 1.0 this is bit-identical to the simulator's
    /// generator over the same window and seed.
    pub fn poisson_arrivals(&self, seed: u64) -> Vec<f64> {
        let window = &self.trace.per_minute[self.start_minute..self.start_minute + self.minutes];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arrivals = Vec::new();
        for (minute, &rate) in window.iter().enumerate() {
            if rate <= 0.0 {
                continue;
            }
            let per_sec = rate / 60.0;
            let start = minute as f64 * 60.0;
            let mut t = start;
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() / per_sec;
                if t >= start + 60.0 {
                    break;
                }
                arrivals.push(t / self.compression);
            }
        }
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Ub1Trace {
        Ub1Trace::synthesize(&Ub1Config::default(), 8)
    }

    #[test]
    fn eight_days_of_minutes() {
        let t = trace();
        assert_eq!(t.days(), 8);
        assert_eq!(t.per_minute.len(), 8 * 24 * 60);
    }

    #[test]
    fn peak_is_near_the_paper_number() {
        let t = trace();
        let peak = t.day_peak(7);
        assert!(
            (6000.0..16000.0).contains(&peak),
            "day-8 peak {peak:.0} should be near 8,514 req/min"
        );
    }

    #[test]
    fn diurnal_pattern_peaks_at_midday_and_troughs_at_night() {
        let t = trace();
        let day = t.day(7);
        let noonish: f64 = day[12 * 60..14 * 60].iter().sum::<f64>() / 120.0;
        let night: f64 = day[2 * 60..4 * 60].iter().sum::<f64>() / 120.0;
        assert!(
            noonish > 2.5 * night,
            "noon {noonish:.0} must dominate night {night:.0}"
        );
    }

    #[test]
    fn weekends_are_quieter() {
        let t = trace();
        // Days 0-4 weekdays, 5-6 weekend under our convention.
        let weekday_total: f64 = t.day(2).iter().sum();
        let weekend_total: f64 = t.day(5).iter().sum();
        assert!(weekend_total < 0.9 * weekday_total);
    }

    #[test]
    fn day8_resembles_previous_weekdays() {
        // Correlation of the day-8 (index 7, a weekday) profile with day 1
        // must be high — that is the property the predictive provisioner
        // exploits.
        let t = trace();
        let a = t.day_slot_rates(0, 15);
        let b = t.day_slot_rates(7, 15);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (ma, mb) = (mean(&a), mean(&b));
        let cov: f64 = a.iter().zip(&b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
        let corr = cov / (va.sqrt() * vb.sqrt());
        assert!(corr > 0.95, "day-8/day-1 correlation {corr:.3} too low");
    }

    #[test]
    fn slot_rates_aggregate_correctly() {
        let t = trace();
        let slots = t.day_slot_rates(0, 15);
        assert_eq!(slots.len(), 96);
        // Rate in req/s: slot sum / (15*60).
        let manual: f64 = t.day(0)[..15].iter().sum::<f64>() / 900.0;
        assert!((slots[0] - manual).abs() < 1e-9);
        let week = t.slot_rates(0..7, 15);
        assert_eq!(week.len(), 7 * 96);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Ub1Trace::synthesize(&Ub1Config::default(), 2);
        let b = Ub1Trace::synthesize(&Ub1Config::default(), 2);
        assert_eq!(a, b);
        let c = Ub1Trace::synthesize(
            &Ub1Config {
                seed: 1,
                ..Ub1Config::default()
            },
            2,
        );
        assert_ne!(a, c);
    }

    #[test]
    fn rates_are_nonnegative() {
        let t = trace();
        assert!(t.per_minute.iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn schedule_rates_match_legacy_accessors() {
        let t = trace();
        assert_eq!(t.schedule().day(0).slots_of(15).rates(), {
            // The forwarder itself goes through the schedule, so recompute
            // the legacy aggregation by hand.
            t.day(0)
                .chunks(15)
                .map(|slot| slot.iter().sum::<f64>() / (slot.len() as f64 * 60.0))
                .collect::<Vec<f64>>()
        });
        assert_eq!(t.schedule().day(7).peak_per_minute(), t.day_peak(7));
    }

    #[test]
    fn schedule_slots_carry_compressed_time_and_rate() {
        let t = trace();
        // Day 8 compressed 1440:1 — a day in 60 wall seconds.
        let sched = t.schedule().day(7).slots_of(15).compress(1440.0);
        let slots: Vec<ArrivalSlot> = sched.iter().collect();
        assert_eq!(slots.len(), 96);
        assert_eq!(sched.duration(), Duration::from_secs(60));
        let s0 = &slots[0];
        assert_eq!(s0.trace_minute, 7 * 24 * 60);
        assert_eq!(s0.start, Duration::ZERO);
        // 15 trace minutes / 1440 = 0.625 wall seconds per slot.
        assert!((s0.duration.as_secs_f64() - 0.625).abs() < 1e-9);
        assert!((s0.rate - s0.trace_rate * 1440.0).abs() < 1e-6);
        let s1 = &slots[1];
        assert!((s1.start.as_secs_f64() - 0.625).abs() < 1e-9);
        // Uncompressed slot rates agree with the legacy accessor.
        let legacy = t.day_slot_rates(7, 15);
        for (s, r) in slots.iter().zip(&legacy) {
            assert!((s.trace_rate - r).abs() < 1e-12);
        }
    }

    #[test]
    fn schedule_window_composes_with_day() {
        let t = trace();
        let sched = t.schedule().day(7).window(600, 120);
        assert_eq!(sched.start_minute(), 7 * 24 * 60 + 600);
        assert_eq!(sched.minutes(), 120);
        assert_eq!(sched.iter().count(), 120, "1-minute slots by default");
    }

    #[test]
    #[should_panic(expected = "exceeds schedule")]
    fn schedule_window_bounds_checked() {
        let t = trace();
        let _ = t.schedule().day(7).window(1400, 120);
    }

    #[test]
    fn schedule_poisson_arrivals_compress_consistently() {
        let t = trace();
        let real = t.schedule().day(7).window(720, 30).poisson_arrivals(99);
        let fast = t
            .schedule()
            .day(7)
            .window(720, 30)
            .compress(60.0)
            .poisson_arrivals(99);
        assert_eq!(real.len(), fast.len(), "compression keeps every arrival");
        assert!(real.windows(2).all(|w| w[0] <= w[1]), "sorted offsets");
        for (a, b) in real.iter().zip(&fast) {
            assert!((a / 60.0 - b).abs() < 1e-9, "offsets scale by 1/60");
        }
        // ~30 minutes around midday: tens of thousands of arrivals.
        assert!(real.len() > 10_000, "got {}", real.len());
        assert!(real.iter().all(|&a| (0.0..30.0 * 60.0).contains(&a)));
    }
}
