//! Realistic file content: a seeded mix of compressible (text-like,
//! repeated) and incompressible (random) regions, so compression and
//! deduplication behave like they would on user files.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fraction of each file that is text-like/compressible by default.
///
/// Calibrated low: the paper's own benchmark content was essentially
/// incompressible (its StackSync run shipped 565 MB of storage traffic for
/// 535 MB of data, i.e. Gzip bought nothing), so the default trace content
/// is mostly random with a small text-like fraction.
pub const DEFAULT_COMPRESSIBILITY: f64 = 0.1;

/// Generates `size` bytes of pseudo-file content for a given seed.
///
/// `compressibility` in `[0,1]` controls the fraction of text-like
/// repetitive regions vs random binary regions.
pub fn generate(size: usize, seed: u64, compressibility: f64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(size);
    const WORDS: &[&str] = &[
        "the ",
        "file ",
        "synchronization ",
        "elastic ",
        "cloud ",
        "storage ",
        "chunk ",
        "commit ",
        "workspace ",
        "metadata ",
        "queue ",
        "message ",
    ];
    while out.len() < size {
        let region = rng.gen_range(256usize..2048).min(size - out.len());
        if rng.gen::<f64>() < compressibility {
            // Text-like region.
            while out.len() < size && region > 0 {
                let w = WORDS[rng.gen_range(0..WORDS.len())].as_bytes();
                let take = w.len().min(size - out.len());
                out.extend_from_slice(&w[..take]);
                if out.len() % 4096 < w.len() {
                    break;
                }
            }
        } else {
            for _ in 0..region {
                out.push(rng.gen());
            }
        }
    }
    out.truncate(size);
    out
}

/// Convenience wrapper with the default compressibility.
pub fn generate_default(size: usize, seed: u64) -> Vec<u8> {
    generate(size, seed, DEFAULT_COMPRESSIBILITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_and_deterministic() {
        for size in [0usize, 1, 100, 10_000] {
            let a = generate(size, 5, 0.5);
            let b = generate(size, 5, 0.5);
            assert_eq!(a.len(), size);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(generate(1000, 1, 0.5), generate(1000, 2, 0.5));
    }

    #[test]
    fn compressibility_controls_entropy() {
        // Rough proxy: distinct byte values in fully-random vs text-only.
        let text = generate(20_000, 3, 1.0);
        let random = generate(20_000, 3, 0.0);
        let distinct = |d: &[u8]| {
            let mut seen = [false; 256];
            for &b in d {
                seen[b as usize] = true;
            }
            seen.iter().filter(|&&x| x).count()
        };
        assert!(distinct(&text) < 64, "text should use few byte values");
        assert!(
            distinct(&random) > 200,
            "random should use most byte values"
        );
    }
}
