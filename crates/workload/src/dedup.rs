//! Dedup-ratio replay: runs a generated trace through the content
//! pipeline (chunk → fingerprint → compress) and the storage refcount
//! tracker, measuring how much the chunk store actually holds versus the
//! logical bytes the trace wrote.
//!
//! This is the measurement behind the "storage saved by dedup +
//! compression" claim: UPDATE patterns rewrite most of a file unchanged,
//! ADDs of identical sizes share generated content only when seeds
//! collide, and REMOVEs orphan chunks that a GC sweep reclaims.

use crate::content_gen;
use crate::generator::{Trace, TraceOp};
use content::chunker::Chunker;
use content::compress::Algorithm;
use content::Fingerprint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use storage::{ChunkMeta, DedupStats, RefcountTracker};

/// Replay parameters.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Chunk size for the fixed chunker driving the replay.
    pub chunk_size: usize,
    /// Fingerprint algorithm naming the chunks.
    pub fingerprint: Fingerprint,
    /// Compression applied before "storing"; `None` stores raw bytes.
    pub compression: Option<Algorithm>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            chunk_size: 64 * 1024,
            fingerprint: Fingerprint::Sha1,
            compression: Some(Algorithm::Lzss),
        }
    }
}

/// What the replay measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DedupReport {
    /// Operations replayed (adds + updates + removes).
    pub ops: usize,
    /// Logical bytes written across all adds and updates (every version
    /// counted in full).
    pub logical_bytes_written: u64,
    /// Payload bytes a dedup-aware store actually persisted.
    pub bytes_stored: u64,
    /// Chunk references that were dedup hits (no write).
    pub dedup_hits: u64,
    /// Chunk writes the store performed.
    pub chunk_writes: u64,
    /// Bytes reclaimed by the final GC sweep of orphaned chunks.
    pub gc_reclaimed_bytes: u64,
    /// Tracker statistics at end of replay (after GC).
    pub final_stats: DedupStats,
}

impl DedupReport {
    /// Logical-written to persisted ratio — the headline number; > 1.0
    /// means dedup + compression saved space.
    pub fn ratio(&self) -> f64 {
        if self.bytes_stored == 0 {
            1.0
        } else {
            self.logical_bytes_written as f64 / self.bytes_stored as f64
        }
    }

    /// Human-readable multi-line summary for the bench binary.
    pub fn render(&self) -> String {
        format!(
            "dedup replay: {} ops, {:.1} MB written logically, {:.1} MB stored \
             ({:.2}x saved), {} chunk writes, {} dedup hits, {:.1} MB gc-reclaimed",
            self.ops,
            self.logical_bytes_written as f64 / 1e6,
            self.bytes_stored as f64 / 1e6,
            self.ratio(),
            self.chunk_writes,
            self.dedup_hits,
            self.gc_reclaimed_bytes as f64 / 1e6,
        )
    }
}

/// Replays `trace` through chunking + fingerprinting + compression and a
/// [`RefcountTracker`], as the sync client's upload path would.
pub fn replay(trace: &Trace, config: &ReplayConfig) -> DedupReport {
    let chunker = content::chunker::FixedChunker::new(config.chunk_size);
    let mut tracker = RefcountTracker::new();
    let mut files: HashMap<String, Vec<u8>> = HashMap::new();
    let mut report = DedupReport {
        ops: trace.ops.len(),
        logical_bytes_written: 0,
        bytes_stored: 0,
        dedup_hits: 0,
        chunk_writes: 0,
        gc_reclaimed_bytes: 0,
        final_stats: DedupStats::default(),
    };

    for op in &trace.ops {
        match op {
            TraceOp::Add {
                path,
                size,
                content_seed,
            } => {
                let data = content_gen::generate_default(*size as usize, *content_seed);
                ingest(&chunker, config, &mut tracker, &mut report, path, &data);
                files.insert(path.clone(), data);
            }
            TraceOp::Update {
                path,
                pattern,
                edit_size,
                content_seed,
            } => {
                let Some(old) = files.get(path) else { continue };
                let mut rng = StdRng::seed_from_u64(*content_seed);
                let new = pattern.apply(old, *edit_size, &mut rng);
                ingest(&chunker, config, &mut tracker, &mut report, path, &new);
                files.insert(path.clone(), new);
            }
            TraceOp::Remove { path } => {
                tracker.release_file(path);
                files.remove(path);
            }
        }
    }

    for (_, stored) in tracker.collect_orphans() {
        report.gc_reclaimed_bytes += stored;
    }
    report.final_stats = tracker.stats();
    report
}

fn ingest(
    chunker: &dyn Chunker,
    config: &ReplayConfig,
    tracker: &mut RefcountTracker,
    report: &mut DedupReport,
    path: &str,
    data: &[u8],
) {
    report.logical_bytes_written += data.len() as u64;
    let metas: Vec<ChunkMeta> = chunker
        .chunk(data)
        .iter()
        .map(|span| {
            let window = &data[span.range()];
            let stored_len = match config.compression {
                Some(alg) => alg.compress(window).len() as u64,
                None => window.len() as u64,
            };
            ChunkMeta {
                name: config.fingerprint.of(window).to_string(),
                logical_len: window.len() as u64,
                stored_len,
            }
        })
        .collect();
    let outcome = tracker.record_file(path, &metas);
    report.bytes_stored += outcome.bytes_to_write;
    report.dedup_hits += outcome.dedup_hits + outcome.revived;
    report.chunk_writes += outcome.to_write.len() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;

    #[test]
    fn paper_trace_dedups_above_one() {
        // The paper's workload shape (UPDATEs rewrite most bytes of a
        // file unchanged) must show real savings through the chunk
        // store: strictly more logical bytes written than stored.
        let trace = Trace::generate(&GeneratorConfig::test_scale());
        let report = replay(
            &trace,
            &ReplayConfig {
                chunk_size: 1024,
                ..ReplayConfig::default()
            },
        );
        assert!(report.ops > 0);
        assert!(report.logical_bytes_written > 0);
        assert!(
            report.ratio() > 1.0,
            "dedup ratio must beat 1.0, got {:.3} ({} logical / {} stored)",
            report.ratio(),
            report.logical_bytes_written,
            report.bytes_stored
        );
        assert!(report.dedup_hits > 0, "updates must produce dedup hits");
        // The render line mentions the headline ratio.
        assert!(report.render().contains("saved"));
    }

    #[test]
    fn fasthash_replay_matches_sha1_savings_shape() {
        // Fingerprint choice must not change *what* dedups, only the
        // chunk names: both algorithms see identical hit/write counts.
        let trace = Trace::generate(&GeneratorConfig::test_scale());
        let cfg = ReplayConfig {
            chunk_size: 1024,
            ..ReplayConfig::default()
        };
        let sha = replay(&trace, &cfg);
        let fast = replay(
            &trace,
            &ReplayConfig {
                fingerprint: Fingerprint::FastHash,
                ..cfg
            },
        );
        assert_eq!(sha.dedup_hits, fast.dedup_hits);
        assert_eq!(sha.chunk_writes, fast.chunk_writes);
        assert_eq!(sha.bytes_stored, fast.bytes_stored);
    }

    #[test]
    fn removes_orphan_chunks_and_gc_reclaims() {
        let trace = Trace {
            ops: vec![
                TraceOp::Add {
                    path: "a".into(),
                    size: 200_000,
                    content_seed: 1,
                },
                TraceOp::Remove { path: "a".into() },
            ],
        };
        let report = replay(&trace, &ReplayConfig::default());
        assert!(report.gc_reclaimed_bytes > 0);
        assert_eq!(report.final_stats.live_chunks, 0);
        assert_eq!(report.final_stats.orphan_chunks, 0);
    }
}
