//! Trace persistence: save and load generated traces as JSON.
//!
//! The paper publishes its "source code and data traces"; this module is
//! the equivalent facility, so an experiment can be re-run bit-for-bit
//! from a stored trace file instead of a generator configuration.

use crate::changes::ChangePattern;
use crate::generator::{Trace, TraceOp};
use std::path::Path;
use wire::{Codec, JsonCodec, Value, WireError, WireResult};

fn pattern_name(p: ChangePattern) -> &'static str {
    match p {
        ChangePattern::B => "B",
        ChangePattern::E => "E",
        ChangePattern::M => "M",
        ChangePattern::BE => "BE",
        ChangePattern::BM => "BM",
        ChangePattern::EM => "EM",
    }
}

fn pattern_from_name(s: &str) -> WireResult<ChangePattern> {
    Ok(match s {
        "B" => ChangePattern::B,
        "E" => ChangePattern::E,
        "M" => ChangePattern::M,
        "BE" => ChangePattern::BE,
        "BM" => ChangePattern::BM,
        "EM" => ChangePattern::EM,
        other => return Err(WireError::Invalid(format!("unknown pattern `{other}`"))),
    })
}

fn op_to_value(op: &TraceOp) -> Value {
    match op {
        TraceOp::Add {
            path,
            size,
            content_seed,
        } => Value::Map(vec![
            ("op".into(), Value::from("ADD")),
            ("path".into(), Value::from(path.as_str())),
            ("size".into(), Value::U64(*size)),
            ("seed".into(), Value::U64(*content_seed)),
        ]),
        TraceOp::Update {
            path,
            pattern,
            edit_size,
            content_seed,
        } => Value::Map(vec![
            ("op".into(), Value::from("UPDATE")),
            ("path".into(), Value::from(path.as_str())),
            ("pattern".into(), Value::from(pattern_name(*pattern))),
            ("edit".into(), Value::U64(*edit_size as u64)),
            ("seed".into(), Value::U64(*content_seed)),
        ]),
        TraceOp::Remove { path } => Value::Map(vec![
            ("op".into(), Value::from("REMOVE")),
            ("path".into(), Value::from(path.as_str())),
        ]),
    }
}

fn op_from_value(value: &Value) -> WireResult<TraceOp> {
    let path = value.field("path")?.as_str()?.to_string();
    Ok(match value.field("op")?.as_str()? {
        "ADD" => TraceOp::Add {
            path,
            size: value.field("size")?.as_u64()?,
            content_seed: value.field("seed")?.as_u64()?,
        },
        "UPDATE" => TraceOp::Update {
            path,
            pattern: pattern_from_name(value.field("pattern")?.as_str()?)?,
            edit_size: value.field("edit")?.as_u64()? as usize,
            content_seed: value.field("seed")?.as_u64()?,
        },
        "REMOVE" => TraceOp::Remove { path },
        other => return Err(WireError::Invalid(format!("unknown op `{other}`"))),
    })
}

impl Trace {
    /// Lowers the trace into the wire data model.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("format".into(), Value::from("stacksync-trace-v1")),
            (
                "ops".into(),
                Value::List(self.ops.iter().map(op_to_value).collect()),
            ),
        ])
    }

    /// Rebuilds a trace from the wire data model.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the value is not a v1 trace.
    pub fn from_value(value: &Value) -> WireResult<Self> {
        let format = value.field("format")?.as_str()?;
        if format != "stacksync-trace-v1" {
            return Err(WireError::Invalid(format!(
                "unsupported trace format `{format}`"
            )));
        }
        Ok(Trace {
            ops: value
                .field("ops")?
                .as_list()?
                .iter()
                .map(op_from_value)
                .collect::<WireResult<Vec<TraceOp>>>()?,
        })
    }

    /// Serializes the trace as JSON bytes.
    pub fn to_json(&self) -> Vec<u8> {
        JsonCodec.encode(&self.to_value())
    }

    /// Parses a trace from JSON bytes.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed JSON or an unexpected schema.
    pub fn from_json(bytes: &[u8]) -> WireResult<Self> {
        Self::from_value(&JsonCodec.decode(bytes)?)
    }

    /// Writes the trace to a JSON file.
    ///
    /// # Errors
    ///
    /// I/O errors from the filesystem.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a trace from a JSON file.
    ///
    /// # Errors
    ///
    /// I/O errors, or a [`WireError`] (wrapped as `InvalidData`) when the
    /// file does not contain a v1 trace.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_json(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;

    #[test]
    fn value_roundtrip() {
        let trace = Trace::generate(&GeneratorConfig::test_scale());
        let back = Trace::from_value(&trace.to_value()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn json_roundtrip() {
        let trace = Trace::generate(&GeneratorConfig::test_scale());
        let back = Trace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn file_roundtrip() {
        let trace = Trace::generate(&GeneratorConfig::test_scale());
        let path = std::env::temp_dir().join(format!("trace-io-test-{}.json", std::process::id()));
        trace.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, trace);
    }

    #[test]
    fn wrong_format_rejected() {
        let bogus = Value::Map(vec![("format".into(), Value::from("v999"))]);
        assert!(Trace::from_value(&bogus).is_err());
        assert!(Trace::from_json(b"{\"nope\": 1}").is_err());
        assert!(Trace::from_json(b"not json").is_err());
    }

    #[test]
    fn all_patterns_roundtrip() {
        for p in [
            ChangePattern::B,
            ChangePattern::E,
            ChangePattern::M,
            ChangePattern::BE,
            ChangePattern::BM,
            ChangePattern::EM,
        ] {
            assert_eq!(pattern_from_name(pattern_name(p)).unwrap(), p);
        }
        assert!(pattern_from_name("X").is_err());
    }

    #[test]
    fn load_missing_file_is_io_error() {
        assert!(Trace::load("/definitely/not/here.json").is_err());
    }
}
