//! # workload — trace generators for the StackSync evaluation
//!
//! Reproduces the benchmarking tool of paper §5.2.1 and the Ubuntu One
//! workload of §5.3.1:
//!
//! * [`markov`] — the four-state (N/M/U/D) file-lifecycle Markov model of
//!   Tarasov et al. with transition probabilities in the spirit of the
//!   "Homes" dataset, calibrated so the default configuration reproduces
//!   the paper's trace statistics (≈940 ADDs, ≈72 UPDATEs, ≈228 REMOVEs,
//!   ≈535 MB of added data, ≈583 KB average file size).
//! * [`sizes`] — the file-size distribution of Liu et al. (90% of files
//!   smaller than 4 MB), modeled as a capped lognormal.
//! * [`changes`] — the B/E/M modification patterns with the paper's
//!   "Homes" probabilities (B 38%, E 8%, M 3%, remainder to BE/BM/EM).
//! * [`generator`] — the three-parameter trace generator (initial files,
//!   training iterations, snapshots) emitting ADD/UPDATE/REMOVE operations
//!   with realistic content.
//! * [`ub1`] — a synthesizer of the (unavailable) anonymized Ubuntu One
//!   arrival trace: strong diurnal seasonality, weekly structure,
//!   multiplicative noise and flash-crowd bursts, scaled to the paper's
//!   peak of 8,514 commit requests per minute.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod changes;
pub mod content_gen;
pub mod dedup;
pub mod generator;
pub mod markov;
pub mod sizes;
pub mod trace_io;
pub mod ub1;

pub use changes::ChangePattern;
pub use dedup::{DedupReport, ReplayConfig};
pub use generator::{GeneratorConfig, Trace, TraceOp, TraceStats};
pub use markov::{FileState, MarkovModel};
pub use sizes::FileSizeDist;
pub use ub1::{ArrivalSchedule, ArrivalSlot, Ub1Config, Ub1Trace};
