//! Typed object identifiers.
//!
//! ObjectMQ names are "implemented by the queues themselves" — an `oid`
//! *is* a queue name. That made every bind/lookup signature a bare `&str`,
//! and service-level identifiers (the sync service name, per-workspace
//! notification topics) floated around as stringly-typed values that were
//! easy to confuse with method names, user names, or queue internals.
//! [`Oid`] gives them a type without giving up ergonomics: it is
//! const-constructible (so crates can export `pub const MY_OID: Oid`),
//! cheap to build from literals, and every broker entry point takes
//! `impl Into<Oid>` so existing `&str` call sites keep compiling.

use std::borrow::Cow;
use std::fmt;

/// The name of a distributed object: what [`crate::Broker::bind`] binds and
/// [`crate::Broker::lookup`] resolves.
///
/// Internally a `Cow<'static, str>`, so `Oid::from_static("sync-service")`
/// is a free `const` and dynamically built names (e.g. per-workspace
/// notification topics) allocate once.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(Cow<'static, str>);

impl Oid {
    /// Const constructor for static object names.
    #[must_use]
    pub const fn from_static(name: &'static str) -> Self {
        Oid(Cow::Borrowed(name))
    }

    /// The oid as a string slice — also the name of the underlying queue.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Oid {
    fn from(s: &str) -> Self {
        Oid(Cow::Owned(s.to_string()))
    }
}

impl From<String> for Oid {
    fn from(s: String) -> Self {
        Oid(Cow::Owned(s))
    }
}

impl From<&String> for Oid {
    fn from(s: &String) -> Self {
        Oid(Cow::Owned(s.clone()))
    }
}

impl From<&Oid> for Oid {
    fn from(o: &Oid) -> Self {
        o.clone()
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for Oid {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Oid {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Oid {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATIC_OID: Oid = Oid::from_static("svc");

    #[test]
    fn const_and_owned_compare_equal() {
        assert_eq!(STATIC_OID, Oid::from("svc"));
        assert_eq!(STATIC_OID, Oid::from("svc".to_string()));
        assert_eq!(STATIC_OID, "svc");
        assert_eq!(STATIC_OID.as_str(), "svc");
        assert_eq!(format!("{STATIC_OID}"), "svc");
    }

    #[test]
    fn conversions_cover_call_site_shapes() {
        fn takes(oid: impl Into<Oid>) -> Oid {
            oid.into()
        }
        let owned = String::from("dyn");
        assert_eq!(takes("dyn"), takes(owned.clone()));
        assert_eq!(takes("dyn"), takes(&owned));
        assert_eq!(takes("svc"), takes(STATIC_OID.clone()));
    }
}
