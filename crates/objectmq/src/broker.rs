//! The ObjectMQ `Broker`: naming by queues, `bind` and `lookup`.

use crate::error::OmqResult;
use crate::info::{ObjectInfo, PoolInfo};
use crate::oid::Oid;
use crate::proxy::{unknown_object, Proxy};
use crate::server::{
    fresh_instance_name, spawn_instance, RemoteObject, ServerHandle, SkeletonConfig,
};
use mqsim::{ExchangeKind, MessageBroker, Messaging, QueueOptions};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wire::{BinaryCodec, Codec};

/// Configuration of a [`Broker`] (the "environment" argument of the paper's
/// `new Broker(environment)`).
#[derive(Clone)]
pub struct BrokerConfig {
    /// Transport encoding for requests and responses.
    pub codec: Arc<dyn Codec>,
    /// Poll interval of skeleton loops; bounds shutdown latency.
    pub poll: Duration,
    /// Averaging window of queue arrival-rate estimators.
    pub rate_window: Duration,
}

impl std::fmt::Debug for BrokerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerConfig")
            .field("codec", &self.codec.name())
            .field("poll", &self.poll)
            .field("rate_window", &self.rate_window)
            .finish()
    }
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            codec: Arc::new(BinaryCodec),
            poll: Duration::from_millis(20),
            rate_window: Duration::from_secs(60),
        }
    }
}

/// The ObjectMQ broker: binds server objects to names and creates client
/// stubs. Mirrors the paper's `omq.Broker` (§3.1).
///
/// Naming is implemented *by the queues themselves*: `bind("sync", obj)`
/// creates (or joins) the queue named `sync`; `lookup("sync")` just needs
/// the queue name — there is no central registry.
///
/// The messaging layer is consumed through the [`Messaging`] trait, so the
/// same broker code runs over the in-process [`MessageBroker`] or over a
/// remote TCP transport (`net::NetBroker`).
#[derive(Debug, Clone)]
pub struct Broker {
    mq: Arc<dyn Messaging>,
    config: BrokerConfig,
}

static NEXT_PROXY: AtomicU64 = AtomicU64::new(1);

impl Broker {
    /// Creates a broker backed by a fresh in-process message broker.
    pub fn in_process() -> Self {
        Broker::new(MessageBroker::new(), BrokerConfig::default())
    }

    /// Creates a broker over an existing in-process messaging layer —
    /// several ObjectMQ brokers (e.g. one per host) can share one
    /// messaging service.
    pub fn new(mq: MessageBroker, config: BrokerConfig) -> Self {
        Broker::over(Arc::new(mq), config)
    }

    /// Creates a broker over any [`Messaging`] implementation (in-process
    /// or a network transport).
    pub fn over(mq: Arc<dyn Messaging>, config: BrokerConfig) -> Self {
        Broker { mq, config }
    }

    /// The underlying messaging layer.
    pub fn messaging(&self) -> &Arc<dyn Messaging> {
        &self.mq
    }

    /// The broker configuration.
    pub fn config(&self) -> &BrokerConfig {
        &self.config
    }

    fn multi_exchange_name(oid: &Oid) -> String {
        format!("omq.multi.{oid}")
    }

    /// Binds a remote object instance to `oid` (paper:
    /// `Broker.bind(oid, remoteObject)`).
    ///
    /// If the `oid` queue already exists the instance simply joins the pool
    /// and the messaging layer balances load over all instances. Each
    /// instance additionally gets a private queue bound to the `oid` fanout
    /// exchange for `@MultiMethod` deliveries.
    ///
    /// # Errors
    ///
    /// Propagates messaging-layer failures.
    pub fn bind<O: RemoteObject>(&self, oid: impl Into<Oid>, object: O) -> OmqResult<ServerHandle> {
        self.bind_arc(oid, Arc::new(object))
    }

    /// Like [`Broker::bind`] but shares an existing object instance.
    ///
    /// # Errors
    ///
    /// Propagates messaging-layer failures.
    pub fn bind_arc(
        &self,
        oid: impl Into<Oid>,
        object: Arc<dyn RemoteObject>,
    ) -> OmqResult<ServerHandle> {
        let oid = oid.into();
        let queue_opts = QueueOptions {
            auto_delete: false,
            rate_window: self.config.rate_window,
            ..QueueOptions::default()
        };
        self.mq.declare_queue(oid.as_str(), queue_opts.clone())?;
        let exchange = Self::multi_exchange_name(&oid);
        self.mq.declare_exchange(&exchange, ExchangeKind::Fanout)?;

        let instance = fresh_instance_name(oid.as_str());
        self.mq.declare_queue(&instance, queue_opts)?;
        self.mq.bind_queue(&exchange, "", &instance)?;

        let unicast = self.mq.subscribe(oid.as_str())?;
        let multicast = self.mq.subscribe(&instance)?;

        spawn_instance(
            SkeletonConfig {
                mq: self.mq.clone(),
                codec: self.config.codec.clone(),
                oid: oid.as_str().to_string(),
                instance,
                poll: self.config.poll,
            },
            unicast,
            multicast,
            object,
        )
    }

    /// Creates a dynamic stub for the object bound to `oid` (paper:
    /// `Broker.lookup(oid)`).
    ///
    /// # Errors
    ///
    /// [`crate::OmqError::UnknownObject`] if nothing was ever bound to
    /// `oid`.
    pub fn lookup(&self, oid: impl Into<Oid>) -> OmqResult<Proxy> {
        let oid = oid.into();
        if !self.mq.queue_exists(oid.as_str()) {
            return Err(unknown_object(oid.as_str()));
        }
        let n = NEXT_PROXY.fetch_add(1, Ordering::Relaxed);
        let response_queue = format!("omq.resp.{n}");
        self.mq.declare_queue(
            &response_queue,
            QueueOptions {
                auto_delete: true,
                rate_window: self.config.rate_window,
                ..QueueOptions::default()
            },
        )?;
        let consumer = self.mq.subscribe(&response_queue)?;
        let multi_exchange = Self::multi_exchange_name(&oid);
        Ok(Proxy::new(
            self.mq.clone(),
            self.config.codec.clone(),
            oid.as_str().to_string(),
            multi_exchange,
            response_queue,
            consumer,
        ))
    }

    /// Whether any object was ever bound under `oid`.
    pub fn object_exists(&self, oid: impl Into<Oid>) -> bool {
        self.mq.queue_exists(oid.into().as_str())
    }

    /// Number of instances currently competing on the `oid` queue.
    ///
    /// # Errors
    ///
    /// Fails if `oid` was never bound.
    pub fn instance_count(&self, oid: impl Into<Oid>) -> OmqResult<usize> {
        Ok(self.mq.queue_stats(oid.into().as_str())?.consumers)
    }

    /// Aggregates queue-side observations with per-instance stats into the
    /// snapshot provisioners consume.
    ///
    /// # Errors
    ///
    /// Fails if `oid` was never bound.
    pub fn pool_info(
        &self,
        oid: impl Into<Oid>,
        instance_infos: &[ObjectInfo],
    ) -> OmqResult<PoolInfo> {
        let oid = oid.into();
        let stats = self.mq.queue_stats(oid.as_str())?;
        let rate = self.mq.queue_arrival_rate(oid.as_str())?;
        Ok(PoolInfo::aggregate(
            oid.as_str(),
            instance_infos,
            stats.depth,
            rate,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::OmqError;
    use wire::{JsonCodec, Value};

    #[test]
    fn lookup_unbound_oid_fails() {
        let broker = Broker::in_process();
        assert!(matches!(
            broker.lookup("nothing"),
            Err(OmqError::UnknownObject(_))
        ));
    }

    #[test]
    fn bind_creates_queue_and_exchange() {
        let broker = Broker::in_process();
        let server = broker
            .bind("svc", |_: &str, _: &[Value]| Ok(Value::Null))
            .unwrap();
        assert!(broker.object_exists("svc"));
        assert!(broker.messaging().exchange_exists("omq.multi.svc"));
        assert_eq!(broker.instance_count("svc").unwrap(), 1);
        server.shutdown();
    }

    #[test]
    fn instance_count_tracks_pool_size() {
        let broker = Broker::in_process();
        let s1 = broker
            .bind("pool", |_: &str, _: &[Value]| Ok(Value::Null))
            .unwrap();
        let s2 = broker
            .bind("pool", |_: &str, _: &[Value]| Ok(Value::Null))
            .unwrap();
        assert_eq!(broker.instance_count("pool").unwrap(), 2);
        s1.shutdown();
        // Shutdown unsubscribes from the shared queue.
        let deadline = std::time::Instant::now() + Duration::from_secs(1);
        while broker.instance_count("pool").unwrap() > 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(broker.instance_count("pool").unwrap(), 1);
        s2.shutdown();
    }

    #[test]
    fn works_with_json_transport() {
        let config = BrokerConfig {
            codec: Arc::new(JsonCodec),
            ..BrokerConfig::default()
        };
        let broker = Broker::new(MessageBroker::new(), config);
        let _server = broker
            .bind("j", |_: &str, args: &[Value]| {
                Ok(args.first().cloned().unwrap_or(Value::Null))
            })
            .unwrap();
        let proxy = broker.lookup("j").unwrap();
        let v = proxy
            .call_sync(
                "echo",
                vec![Value::from("überjson")],
                Duration::from_secs(1),
                0,
            )
            .unwrap();
        assert_eq!(v, Value::from("überjson"));
    }

    #[test]
    fn pool_info_combines_queue_and_instances() {
        let broker = Broker::in_process();
        let server = broker
            .bind("pi", |_: &str, _: &[Value]| Ok(Value::Null))
            .unwrap();
        let proxy = broker.lookup("pi").unwrap();
        proxy
            .call_sync("x", vec![], Duration::from_secs(1), 0)
            .unwrap();
        let info = broker
            .pool_info("pi", &[server.stats().snapshot()])
            .unwrap();
        assert_eq!(info.instances, 1);
        assert_eq!(info.oid, "pi");
        server.shutdown();
    }
}
