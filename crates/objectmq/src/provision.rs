//! Programmatic elasticity: the provisioning framework of paper §3.3/§4.3.
//!
//! The paper adopts Urgaonkar et al.'s dual-timescale model: a *predictive*
//! provisioner allocates capacity from the workload history (time-of-day
//! seasonality), and a *reactive* provisioner corrects mispredictions on a
//! minutes timescale. Both are built on a G/G/1 bound for the request rate a
//! single server sustains under a response-time SLA (paper eq. 1 and 2).
//!
//! Everything here is deliberately clock-free: callers pass observation
//! timestamps/slots explicitly, so the same policies drive both the live
//! [`crate::Supervisor`] and the virtual-time simulator in the `elastic`
//! crate.

use crate::info::PoolInfo;
use std::time::Duration;

/// G/G/1 capacity model for one synchronization server (paper eq. 1–2).
///
/// Units are seconds; variances are in seconds². Table 3 of the paper lists
/// `σ_b = 200 msec`, which we interpret as the service-time *standard
/// deviation* (0.2 s ⇒ σ²_b = 0.04 s²).
#[derive(Debug, Clone, PartialEq)]
pub struct GgOneModel {
    /// Response-time SLA `d` (a high percentile target), seconds.
    pub target_response: f64,
    /// Mean service time `s`, seconds.
    pub mean_service: f64,
    /// Variance of request interarrival time `σ²_a`, seconds².
    pub var_interarrival: f64,
    /// Variance of service time `σ²_b`, seconds².
    pub var_service: f64,
}

impl GgOneModel {
    /// The paper's Table 3 parameters: d = 450 ms, s = 50 ms,
    /// σ_b = 200 ms, with σ_a initialized equal to σ_b until measured.
    pub fn paper_defaults() -> Self {
        GgOneModel {
            target_response: 0.450,
            mean_service: 0.050,
            var_interarrival: 0.04,
            var_service: 0.04,
        }
    }

    /// Lower bound on the request rate `δ` (req/s) one server can sustain
    /// while meeting the SLA (eq. 1):
    ///
    /// `δ ≥ [ s + (σ²_a + σ²_b) / (2 (d − s)) ]⁻¹`
    ///
    /// # Panics
    ///
    /// Panics if `target_response <= mean_service` (the SLA is infeasible).
    pub fn capacity_per_server(&self) -> f64 {
        assert!(
            self.target_response > self.mean_service,
            "SLA d must exceed mean service time s"
        );
        let queueing = (self.var_interarrival + self.var_service)
            / (2.0 * (self.target_response - self.mean_service));
        1.0 / (self.mean_service + queueing)
    }

    /// Number of instances `η = ⌈λ/δ⌉` needed for arrival rate `lambda`
    /// (req/s), never below 1 (eq. 2).
    pub fn required_instances(&self, lambda: f64) -> usize {
        let delta = self.capacity_per_server();
        let eta = (lambda / delta).ceil();
        (eta.max(1.0)) as usize
    }

    /// Updates the measured service-time statistics (monitored online in
    /// the paper).
    pub fn observe_service(&mut self, mean: Duration, variance: f64) {
        self.mean_service = mean.as_secs_f64();
        self.var_service = variance;
    }

    /// Updates the measured interarrival-time variance.
    pub fn observe_interarrival_variance(&mut self, variance: f64) {
        self.var_interarrival = variance;
    }
}

/// The extensible hook of the provisioning framework (paper Fig. 3): a
/// policy proposes how many server objects are needed; the Supervisor
/// enforces the proposal.
pub trait Provisioner: Send {
    /// Proposes a pool size given the current introspection snapshot, or
    /// `None` when the policy has no opinion this tick.
    fn propose(&mut self, info: &PoolInfo) -> Option<usize>;

    /// Policy name for logs.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Workload predictor: keeps, for each period-of-day slot, the history of
/// arrival rates seen in that slot over past days, and predicts a high
/// percentile of that distribution (paper §4.3.1).
#[derive(Debug, Clone)]
pub struct PredictiveProvisioner {
    model: GgOneModel,
    /// History per slot: `history[slot]` are the rates (req/s) observed in
    /// that slot on previous days.
    history: Vec<Vec<f64>>,
    slot_len: Duration,
    percentile: f64,
    /// The most recent prediction, exposed so the reactive policy can
    /// compare against it.
    last_prediction: Option<f64>,
    last_slot: Option<usize>,
}

impl PredictiveProvisioner {
    /// Creates a predictor with `slot_len` periods (paper: 15 minutes) and
    /// the given percentile in `(0, 1]` (we default to 0.95 elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if `slot_len` is zero, does not divide a day, or the
    /// percentile is out of `(0, 1]`.
    pub fn new(model: GgOneModel, slot_len: Duration, percentile: f64) -> Self {
        assert!(!slot_len.is_zero(), "slot length must be positive");
        let secs = slot_len.as_secs();
        assert!(secs > 0 && 86_400 % secs == 0, "slot must divide a day");
        assert!(
            percentile > 0.0 && percentile <= 1.0,
            "percentile must be in (0, 1]"
        );
        let slots = (86_400 / secs) as usize;
        PredictiveProvisioner {
            model,
            history: vec![Vec::new(); slots],
            slot_len,
            percentile,
            last_prediction: None,
            last_slot: None,
        }
    }

    /// Number of slots in a day.
    pub fn slots_per_day(&self) -> usize {
        self.history.len()
    }

    /// Maps a time-of-experiment offset to its slot index.
    pub fn slot_of(&self, time: Duration) -> usize {
        ((time.as_secs() % 86_400) / self.slot_len.as_secs()) as usize
    }

    /// Feeds one historical observation: the arrival rate (req/s) seen
    /// during `slot` on some past day.
    pub fn observe(&mut self, slot: usize, rate: f64) {
        let slots = self.slots_per_day();
        self.history[slot % slots].push(rate);
    }

    /// Convenience: ingest a whole multi-day history of per-slot rates
    /// (e.g. the previous week of the UB1 trace).
    pub fn observe_series(&mut self, rates_per_slot: &[f64]) {
        for (i, rate) in rates_per_slot.iter().enumerate() {
            self.observe(i % self.slots_per_day(), *rate);
        }
    }

    /// Predicted peak rate (req/s) for `slot`: a high percentile of the
    /// slot's history. Returns `None` with no history.
    pub fn predict(&self, slot: usize) -> Option<f64> {
        let h = &self.history[slot % self.slots_per_day()];
        if h.is_empty() {
            return None;
        }
        let mut sorted = h.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        let idx =
            ((self.percentile * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        Some(sorted[idx])
    }

    /// Runs the predictive step for `slot`: predicts the peak rate and maps
    /// it to an instance count. Records the prediction for the reactive
    /// policy. Returns `None` when there is no history for the slot.
    pub fn provision_for_slot(&mut self, slot: usize) -> Option<usize> {
        let rate = self.predict(slot)?;
        self.last_prediction = Some(rate);
        self.last_slot = Some(slot);
        Some(self.model.required_instances(rate))
    }

    /// The most recent prediction (λ_pred), if any.
    pub fn last_prediction(&self) -> Option<f64> {
        self.last_prediction
    }

    /// Overrides the current prediction — used by the misprediction
    /// experiment (paper §5.3.3) to "fool" the predictor.
    pub fn force_prediction(&mut self, rate: f64) {
        self.last_prediction = Some(rate);
    }

    /// The capacity model (shared with the reactive policy).
    pub fn model(&self) -> &GgOneModel {
        &self.model
    }

    /// Mutable access to the capacity model for online re-estimation.
    pub fn model_mut(&mut self) -> &mut GgOneModel {
        &mut self.model
    }
}

impl Provisioner for PredictiveProvisioner {
    fn propose(&mut self, _info: &PoolInfo) -> Option<usize> {
        let slot = self.last_slot?;
        self.provision_for_slot(slot)
    }

    fn name(&self) -> &'static str {
        "predictive"
    }
}

/// Reactive corrector (paper §4.3.2): compares the observed arrival rate
/// against the prediction and recomputes the pool size when they diverge by
/// more than the configured thresholds.
#[derive(Debug, Clone)]
pub struct ReactiveProvisioner {
    model: GgOneModel,
    /// Upward divergence threshold τ₁ (0.2 = react when observed exceeds
    /// predicted by >20%).
    pub tau_increase: f64,
    /// Downward divergence threshold τ₂.
    pub tau_decrease: f64,
}

impl ReactiveProvisioner {
    /// Creates a reactive policy with the paper's τ₁ = τ₂ = 20%.
    pub fn paper_defaults(model: GgOneModel) -> Self {
        ReactiveProvisioner {
            model,
            tau_increase: 0.20,
            tau_decrease: 0.20,
        }
    }

    /// Checks observed vs predicted rate. Returns the corrected instance
    /// count if corrective action is necessary, `None` otherwise.
    ///
    /// With no prediction available the observation alone drives the
    /// correction.
    pub fn check(&self, observed: f64, predicted: Option<f64>) -> Option<usize> {
        match predicted {
            Some(pred) if pred > 0.0 => {
                let ratio = observed / pred;
                if ratio > 1.0 + self.tau_increase || ratio < 1.0 - self.tau_decrease {
                    Some(self.model.required_instances(observed))
                } else {
                    None
                }
            }
            _ => Some(self.model.required_instances(observed)),
        }
    }

    /// The capacity model.
    pub fn model(&self) -> &GgOneModel {
        &self.model
    }

    /// Mutable access to the capacity model for online re-estimation.
    pub fn model_mut(&mut self) -> &mut GgOneModel {
        &mut self.model
    }
}

impl Provisioner for ReactiveProvisioner {
    fn propose(&mut self, info: &PoolInfo) -> Option<usize> {
        // Standalone reactive policy: no prediction to compare against.
        Some(self.model.required_instances(info.arrival_rate))
    }

    fn name(&self) -> &'static str {
        "reactive"
    }
}

/// Which policies an [`AutoScaler`] runs — the ablation knob for the
/// Fig. 8 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingPolicy {
    /// Predictive only.
    Predictive,
    /// Reactive only.
    Reactive,
    /// Both, as in the paper's main experiment.
    Both,
}

impl std::str::FromStr for ScalingPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "predictive" => Ok(ScalingPolicy::Predictive),
            "reactive" => Ok(ScalingPolicy::Reactive),
            "both" => Ok(ScalingPolicy::Both),
            other => Err(format!(
                "unknown policy `{other}` (predictive|reactive|both)"
            )),
        }
    }
}

/// Combines the predictive and reactive policies on their two timescales.
///
/// Call [`AutoScaler::predictive_tick`] every predictive period (paper: 15
/// minutes) and [`AutoScaler::reactive_tick`] every reactive period (5
/// minutes); each returns the new target pool size when action is needed.
#[derive(Debug, Clone)]
pub struct AutoScaler {
    predictive: PredictiveProvisioner,
    reactive: ReactiveProvisioner,
    policy: ScalingPolicy,
    target: usize,
}

impl AutoScaler {
    /// Builds an auto-scaler; `target` starts at 1 instance.
    pub fn new(
        predictive: PredictiveProvisioner,
        reactive: ReactiveProvisioner,
        policy: ScalingPolicy,
    ) -> Self {
        AutoScaler {
            predictive,
            reactive,
            policy,
            target: 1,
        }
    }

    /// Current target pool size.
    pub fn target(&self) -> usize {
        self.target
    }

    /// The predictive sub-policy.
    pub fn predictive(&self) -> &PredictiveProvisioner {
        &self.predictive
    }

    /// Mutable access (for history feeding / misprediction injection).
    pub fn predictive_mut(&mut self) -> &mut PredictiveProvisioner {
        &mut self.predictive
    }

    /// Feeds an online measurement of the interarrival-time variance σ²_a
    /// into both policies' capacity models (the paper updates σ²_a "once
    /// every 15 minutes based on online measurements of the global request
    /// queue").
    pub fn observe_interarrival_variance(&mut self, variance: f64) {
        self.predictive
            .model_mut()
            .observe_interarrival_variance(variance);
        self.reactive
            .model_mut()
            .observe_interarrival_variance(variance);
    }

    /// Runs the predictive step for the slot containing `now` (offset from
    /// experiment start). Returns the new target if it changed.
    pub fn predictive_tick(&mut self, now: Duration) -> Option<usize> {
        if self.policy == ScalingPolicy::Reactive {
            return None;
        }
        let slot = self.predictive.slot_of(now);
        let proposed = self.predictive.provision_for_slot(slot)?;
        if proposed != self.target {
            self.target = proposed;
            Some(proposed)
        } else {
            None
        }
    }

    /// Runs the reactive step with the arrival rate observed over the past
    /// reactive period. Returns the new target if corrective action fired.
    pub fn reactive_tick(&mut self, observed_rate: f64) -> Option<usize> {
        if self.policy == ScalingPolicy::Predictive {
            return None;
        }
        let predicted = self.predictive.last_prediction();
        let proposed = self.reactive.check(observed_rate, predicted)?;
        // After correcting, treat the observation as the working prediction
        // so we do not flap every reactive tick.
        self.predictive.force_prediction(observed_rate);
        if proposed != self.target {
            self.target = proposed;
            Some(proposed)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn capacity_formula_matches_hand_computation() {
        let m = GgOneModel::paper_defaults();
        // δ = 1 / (0.05 + (0.04 + 0.04) / (2 · 0.4)) = 1 / 0.15
        assert!(close(m.capacity_per_server(), 1.0 / 0.15));
    }

    #[test]
    fn eta_is_ceiling_of_lambda_over_delta() {
        let m = GgOneModel::paper_defaults();
        let delta = m.capacity_per_server();
        assert_eq!(m.required_instances(0.0), 1, "never below one instance");
        assert_eq!(m.required_instances(delta * 0.5), 1);
        assert_eq!(m.required_instances(delta * 1.01), 2);
        assert_eq!(m.required_instances(delta * 7.2), 8);
    }

    #[test]
    fn paper_peak_requires_a_sane_pool() {
        // Peak demand of the day-8 UB1 trace: 8,514 commits/minute.
        let m = GgOneModel::paper_defaults();
        let eta = m.required_instances(8514.0 / 60.0);
        assert!(
            (10..60).contains(&eta),
            "peak pool should be tens of instances, got {eta}"
        );
    }

    #[test]
    #[should_panic(expected = "SLA")]
    fn infeasible_sla_panics() {
        let m = GgOneModel {
            target_response: 0.01,
            mean_service: 0.05,
            var_interarrival: 0.0,
            var_service: 0.0,
        };
        let _ = m.capacity_per_server();
    }

    #[test]
    fn predictor_returns_high_percentile() {
        let mut p = PredictiveProvisioner::new(
            GgOneModel::paper_defaults(),
            Duration::from_secs(900),
            0.95,
        );
        // 20 observations 1..=20 in slot 3: the 95th percentile is 19.
        for v in 1..=20 {
            p.observe(3, v as f64);
        }
        assert!(close(p.predict(3).unwrap(), 19.0));
        assert_eq!(p.predict(4), None);
    }

    #[test]
    fn predictor_slot_arithmetic() {
        let p = PredictiveProvisioner::new(
            GgOneModel::paper_defaults(),
            Duration::from_secs(900),
            0.95,
        );
        assert_eq!(p.slots_per_day(), 96);
        assert_eq!(p.slot_of(Duration::from_secs(0)), 0);
        assert_eq!(p.slot_of(Duration::from_secs(899)), 0);
        assert_eq!(p.slot_of(Duration::from_secs(900)), 1);
        // Wraps at day boundaries.
        assert_eq!(p.slot_of(Duration::from_secs(86_400 + 950)), 1);
    }

    #[test]
    fn observe_series_wraps_days() {
        let mut p = PredictiveProvisioner::new(
            GgOneModel::paper_defaults(),
            Duration::from_secs(900),
            0.95,
        );
        let two_days: Vec<f64> = (0..192).map(|i| i as f64).collect();
        p.observe_series(&two_days);
        // Slot 0 saw rates 0.0 and 96.0; the 95th percentile is 96.
        assert!(close(p.predict(0).unwrap(), 96.0));
    }

    #[test]
    fn reactive_fires_only_outside_band() {
        let r = ReactiveProvisioner::paper_defaults(GgOneModel::paper_defaults());
        // Within ±20% of prediction: no action.
        assert_eq!(r.check(110.0, Some(100.0)), None);
        assert_eq!(r.check(81.0, Some(100.0)), None);
        // Outside the band: recompute.
        assert!(r.check(121.0, Some(100.0)).is_some());
        assert!(r.check(79.0, Some(100.0)).is_some());
        // No prediction: always act on the observation.
        assert!(r.check(50.0, None).is_some());
    }

    #[test]
    fn autoscaler_reactive_corrects_misprediction() {
        let model = GgOneModel::paper_defaults();
        let mut predictive =
            PredictiveProvisioner::new(model.clone(), Duration::from_secs(900), 0.95);
        // History says slot 0 is quiet.
        predictive.observe(0, 1.0);
        let reactive = ReactiveProvisioner::paper_defaults(model.clone());
        let mut scaler = AutoScaler::new(predictive, reactive, ScalingPolicy::Both);

        let t0 = scaler.predictive_tick(Duration::ZERO);
        assert_eq!(t0, None, "1 instance predicted, same as initial target");
        assert_eq!(scaler.target(), 1);

        // Reality: a storm of 100 req/s. The reactive tick must fix it.
        let corrected = scaler.reactive_tick(100.0).expect("must react");
        assert_eq!(corrected, model.required_instances(100.0));
        assert_eq!(scaler.target(), corrected);

        // Same observation again: prediction was updated, no flapping.
        assert_eq!(scaler.reactive_tick(100.0), None);
    }

    #[test]
    fn policy_gating() {
        let model = GgOneModel::paper_defaults();
        let mut predictive =
            PredictiveProvisioner::new(model.clone(), Duration::from_secs(900), 0.95);
        predictive.observe(0, 100.0);
        let reactive = ReactiveProvisioner::paper_defaults(model);

        let mut pred_only = AutoScaler::new(
            predictive.clone(),
            reactive.clone(),
            ScalingPolicy::Predictive,
        );
        assert!(pred_only.predictive_tick(Duration::ZERO).is_some());
        assert_eq!(pred_only.reactive_tick(1000.0), None, "reactive disabled");

        let mut react_only = AutoScaler::new(predictive, reactive, ScalingPolicy::Reactive);
        assert_eq!(
            react_only.predictive_tick(Duration::ZERO),
            None,
            "predictive disabled"
        );
        assert!(react_only.reactive_tick(1000.0).is_some());
    }

    #[test]
    fn scaling_policy_parses() {
        assert_eq!(
            "both".parse::<ScalingPolicy>().unwrap(),
            ScalingPolicy::Both
        );
        assert!("nope".parse::<ScalingPolicy>().is_err());
    }

    #[test]
    fn provisioner_trait_objects() {
        let model = GgOneModel::paper_defaults();
        let mut policies: Vec<Box<dyn Provisioner>> = vec![
            Box::new(ReactiveProvisioner::paper_defaults(model.clone())),
            Box::new(PredictiveProvisioner::new(
                model,
                Duration::from_secs(900),
                0.95,
            )),
        ];
        let info = PoolInfo {
            oid: "svc".into(),
            instances: 1,
            busy_instances: 0,
            queue_depth: 10,
            arrival_rate: 50.0,
            mean_service_time: Duration::from_millis(50),
            service_time_variance: 0.04,
        };
        assert_eq!(policies[0].name(), "reactive");
        assert!(policies[0].propose(&info).is_some());
        assert_eq!(policies[1].name(), "predictive");
        assert_eq!(policies[1].propose(&info), None, "no history, no slot");
    }
}
