//! Programmatic elasticity: the provisioning framework of paper §3.3/§4.3.
//!
//! The paper adopts Urgaonkar et al.'s dual-timescale model: a *predictive*
//! provisioner allocates capacity from the workload history (time-of-day
//! seasonality), and a *reactive* provisioner corrects mispredictions on a
//! minutes timescale. Both are built on a G/G/1 bound for the request rate a
//! single server sustains under a response-time SLA (paper eq. 1 and 2).
//!
//! Everything here is deliberately clock-free: callers pass observation
//! timestamps/slots explicitly, so the same policies drive both the live
//! [`crate::Supervisor`] and the virtual-time simulator in the `elastic`
//! crate.

use std::time::Duration;

/// G/G/1 capacity model for one synchronization server (paper eq. 1–2).
///
/// Units are seconds; variances are in seconds². Table 3 of the paper lists
/// `σ_b = 200 msec`, which we interpret as the service-time *standard
/// deviation* (0.2 s ⇒ σ²_b = 0.04 s²).
#[derive(Debug, Clone, PartialEq)]
pub struct GgOneModel {
    /// Response-time SLA `d` (a high percentile target), seconds.
    pub target_response: f64,
    /// Mean service time `s`, seconds.
    pub mean_service: f64,
    /// Variance of request interarrival time `σ²_a`, seconds².
    pub var_interarrival: f64,
    /// Variance of service time `σ²_b`, seconds².
    pub var_service: f64,
}

impl GgOneModel {
    /// The paper's Table 3 parameters: d = 450 ms, s = 50 ms,
    /// σ_b = 200 ms, with σ_a initialized equal to σ_b until measured.
    pub fn paper_defaults() -> Self {
        GgOneModel {
            target_response: 0.450,
            mean_service: 0.050,
            var_interarrival: 0.04,
            var_service: 0.04,
        }
    }

    /// Lower bound on the request rate `δ` (req/s) one server can sustain
    /// while meeting the SLA (eq. 1):
    ///
    /// `δ ≥ [ s + (σ²_a + σ²_b) / (2 (d − s)) ]⁻¹`
    ///
    /// # Panics
    ///
    /// Panics if `target_response <= mean_service` (the SLA is infeasible).
    pub fn capacity_per_server(&self) -> f64 {
        assert!(
            self.target_response > self.mean_service,
            "SLA d must exceed mean service time s"
        );
        let queueing = (self.var_interarrival + self.var_service)
            / (2.0 * (self.target_response - self.mean_service));
        1.0 / (self.mean_service + queueing)
    }

    /// Number of instances `η = ⌈λ/δ⌉` needed for arrival rate `lambda`
    /// (req/s), never below 1 (eq. 2).
    pub fn required_instances(&self, lambda: f64) -> usize {
        let delta = self.capacity_per_server();
        let eta = (lambda / delta).ceil();
        (eta.max(1.0)) as usize
    }

    /// Updates the measured service-time statistics (monitored online in
    /// the paper).
    pub fn observe_service(&mut self, mean: Duration, variance: f64) {
        self.mean_service = mean.as_secs_f64();
        self.var_service = variance;
    }

    /// Updates the measured interarrival-time variance.
    pub fn observe_interarrival_variance(&mut self, variance: f64) {
        self.var_interarrival = variance;
    }
}

/// One observation of whatever is driving the pool — the shared input type
/// of every [`Provisioner`], deliberately source-agnostic so the simulated
/// `ControlCtx` counters, the live broker queue statistics, and tests all
/// produce the same shape.
///
/// Counters are cumulative; rate-style policies derive windows from deltas
/// between successive observations (or use `arrival_rate` when the source
/// already maintains a windowed estimator).
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Offset from experiment/controller start. For sources replaying a
    /// trace under time compression this is *wall* time; slot mapping back
    /// to trace time is the policy's job (see
    /// [`AutoScaler::with_slot_mapping`]).
    pub now: Duration,
    /// Total requests ever observed arriving (monotonic).
    pub total_arrivals: u64,
    /// Arrival rate (req/s) from a windowed estimator, when the source has
    /// one (the live broker does); `None` makes policies derive rates from
    /// `total_arrivals` deltas (the simulator path).
    pub arrival_rate: Option<f64>,
    /// Requests queued and not yet dispatched.
    pub queue_depth: usize,
    /// Server instances currently alive.
    pub live: usize,
    /// Target pool size currently being enforced.
    pub target: usize,
    /// Sample variance of request interarrival times (seconds²) measured on
    /// the *aggregate* arrival stream since the last window reset, if the
    /// source measures it and has ≥ 2 samples.
    pub interarrival_variance: Option<f64>,
}

impl Observation {
    /// A zeroed observation at `now` — convenience for tests and for
    /// sources that only track a subset of the fields.
    pub fn at(now: Duration) -> Self {
        Observation {
            now,
            total_arrivals: 0,
            arrival_rate: None,
            queue_depth: 0,
            live: 0,
            target: 0,
            interarrival_variance: None,
        }
    }
}

/// What a [`Provisioner`] decided on one observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The pool size the policy wants enforced from now on.
    pub target: usize,
    /// Whether `target` differs from the observation's current target —
    /// callers only need to push the decision downstream when this is set.
    pub changed: bool,
    /// Which sub-policy produced the decision (for logs/metrics).
    pub policy: &'static str,
    /// The predicted arrival rate `λ_pred` (req/s) in effect after this
    /// decision, if the policy keeps one.
    pub predicted_rate: Option<f64>,
    /// Set when the policy consumed the interarrival-variance measurement;
    /// the observation source should reset its variance window so the next
    /// measurement covers a fresh interval.
    pub reset_variance_window: bool,
}

/// The extensible hook of the provisioning framework (paper Fig. 3): a
/// policy proposes how many server objects are needed; the Supervisor
/// enforces the proposal.
///
/// This single trait drives every control loop in the tree — the
/// virtual-time `PoolSim` in `crates/elastic`, `ElasticController` over a
/// live broker, and the live UB1 replay harness — so policy behaviour is
/// byte-identical across simulation and production paths.
pub trait Provisioner: Send {
    /// Consumes one observation; returns a [`Decision`] when the policy has
    /// an opinion this tick (the decision may still be `changed: false`),
    /// or `None` when it has nothing to say (e.g. between cadence periods).
    fn propose(&mut self, obs: &Observation) -> Option<Decision>;

    /// Policy name for logs.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Workload predictor: keeps, for each period-of-day slot, the history of
/// arrival rates seen in that slot over past days, and predicts a high
/// percentile of that distribution (paper §4.3.1).
#[derive(Debug, Clone)]
pub struct PredictiveProvisioner {
    model: GgOneModel,
    /// History per slot: `history[slot]` are the rates (req/s) observed in
    /// that slot on previous days.
    history: Vec<Vec<f64>>,
    slot_len: Duration,
    percentile: f64,
    /// The most recent prediction, exposed so the reactive policy can
    /// compare against it.
    last_prediction: Option<f64>,
    last_slot: Option<usize>,
}

impl PredictiveProvisioner {
    /// Creates a predictor with `slot_len` periods (paper: 15 minutes) and
    /// the given percentile in `(0, 1]` (we default to 0.95 elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if `slot_len` is zero, does not divide a day, or the
    /// percentile is out of `(0, 1]`.
    pub fn new(model: GgOneModel, slot_len: Duration, percentile: f64) -> Self {
        assert!(!slot_len.is_zero(), "slot length must be positive");
        let secs = slot_len.as_secs();
        assert!(secs > 0 && 86_400 % secs == 0, "slot must divide a day");
        assert!(
            percentile > 0.0 && percentile <= 1.0,
            "percentile must be in (0, 1]"
        );
        let slots = (86_400 / secs) as usize;
        PredictiveProvisioner {
            model,
            history: vec![Vec::new(); slots],
            slot_len,
            percentile,
            last_prediction: None,
            last_slot: None,
        }
    }

    /// Number of slots in a day.
    pub fn slots_per_day(&self) -> usize {
        self.history.len()
    }

    /// Maps a time-of-experiment offset to its slot index.
    pub fn slot_of(&self, time: Duration) -> usize {
        ((time.as_secs() % 86_400) / self.slot_len.as_secs()) as usize
    }

    /// Feeds one historical observation: the arrival rate (req/s) seen
    /// during `slot` on some past day.
    pub fn observe(&mut self, slot: usize, rate: f64) {
        let slots = self.slots_per_day();
        self.history[slot % slots].push(rate);
    }

    /// Convenience: ingest a whole multi-day history of per-slot rates
    /// (e.g. the previous week of the UB1 trace).
    pub fn observe_series(&mut self, rates_per_slot: &[f64]) {
        for (i, rate) in rates_per_slot.iter().enumerate() {
            self.observe(i % self.slots_per_day(), *rate);
        }
    }

    /// Predicted peak rate (req/s) for `slot`: a high percentile of the
    /// slot's history. Returns `None` with no history.
    pub fn predict(&self, slot: usize) -> Option<f64> {
        let h = &self.history[slot % self.slots_per_day()];
        if h.is_empty() {
            return None;
        }
        let mut sorted = h.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        let idx =
            ((self.percentile * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        Some(sorted[idx])
    }

    /// Runs the predictive step for `slot`: predicts the peak rate and maps
    /// it to an instance count. Records the prediction for the reactive
    /// policy. Returns `None` when there is no history for the slot.
    pub fn provision_for_slot(&mut self, slot: usize) -> Option<usize> {
        let rate = self.predict(slot)?;
        self.last_prediction = Some(rate);
        self.last_slot = Some(slot);
        Some(self.model.required_instances(rate))
    }

    /// The most recent prediction (λ_pred), if any.
    pub fn last_prediction(&self) -> Option<f64> {
        self.last_prediction
    }

    /// Overrides the current prediction — used by the misprediction
    /// experiment (paper §5.3.3) to "fool" the predictor.
    pub fn force_prediction(&mut self, rate: f64) {
        self.last_prediction = Some(rate);
    }

    /// The capacity model (shared with the reactive policy).
    pub fn model(&self) -> &GgOneModel {
        &self.model
    }

    /// Mutable access to the capacity model for online re-estimation.
    pub fn model_mut(&mut self) -> &mut GgOneModel {
        &mut self.model
    }
}

impl Provisioner for PredictiveProvisioner {
    fn propose(&mut self, obs: &Observation) -> Option<Decision> {
        let slot = self.slot_of(obs.now);
        let target = self.provision_for_slot(slot)?;
        Some(Decision {
            target,
            changed: target != obs.target,
            policy: "predictive",
            predicted_rate: self.last_prediction,
            reset_variance_window: false,
        })
    }

    fn name(&self) -> &'static str {
        "predictive"
    }
}

/// Reactive corrector (paper §4.3.2): compares the observed arrival rate
/// against the prediction and recomputes the pool size when they diverge by
/// more than the configured thresholds.
#[derive(Debug, Clone)]
pub struct ReactiveProvisioner {
    model: GgOneModel,
    /// Upward divergence threshold τ₁ (0.2 = react when observed exceeds
    /// predicted by >20%).
    pub tau_increase: f64,
    /// Downward divergence threshold τ₂.
    pub tau_decrease: f64,
}

impl ReactiveProvisioner {
    /// Creates a reactive policy with the paper's τ₁ = τ₂ = 20%.
    pub fn paper_defaults(model: GgOneModel) -> Self {
        ReactiveProvisioner {
            model,
            tau_increase: 0.20,
            tau_decrease: 0.20,
        }
    }

    /// Checks observed vs predicted rate. Returns the corrected instance
    /// count if corrective action is necessary, `None` otherwise.
    ///
    /// With no prediction available the observation alone drives the
    /// correction.
    pub fn check(&self, observed: f64, predicted: Option<f64>) -> Option<usize> {
        match predicted {
            Some(pred) if pred > 0.0 => {
                let ratio = observed / pred;
                if ratio > 1.0 + self.tau_increase || ratio < 1.0 - self.tau_decrease {
                    Some(self.model.required_instances(observed))
                } else {
                    None
                }
            }
            _ => Some(self.model.required_instances(observed)),
        }
    }

    /// The capacity model.
    pub fn model(&self) -> &GgOneModel {
        &self.model
    }

    /// Mutable access to the capacity model for online re-estimation.
    pub fn model_mut(&mut self) -> &mut GgOneModel {
        &mut self.model
    }
}

impl Provisioner for ReactiveProvisioner {
    fn propose(&mut self, obs: &Observation) -> Option<Decision> {
        // Standalone reactive policy: no prediction to compare against, so
        // it acts on the observed rate alone (and stays silent when the
        // source has no windowed estimator).
        let observed = obs.arrival_rate?;
        let target = self.model.required_instances(observed);
        Some(Decision {
            target,
            changed: target != obs.target,
            policy: "reactive",
            predicted_rate: None,
            reset_variance_window: false,
        })
    }

    fn name(&self) -> &'static str {
        "reactive"
    }
}

/// Which policies an [`AutoScaler`] runs — the ablation knob for the
/// Fig. 8 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingPolicy {
    /// Predictive only.
    Predictive,
    /// Reactive only.
    Reactive,
    /// Both, as in the paper's main experiment.
    Both,
}

impl std::str::FromStr for ScalingPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "predictive" => Ok(ScalingPolicy::Predictive),
            "reactive" => Ok(ScalingPolicy::Reactive),
            "both" => Ok(ScalingPolicy::Both),
            other => Err(format!(
                "unknown policy `{other}` (predictive|reactive|both)"
            )),
        }
    }
}

/// Combines the predictive and reactive policies on their two timescales.
///
/// As a [`Provisioner`], the scaler runs its own dual cadence off the
/// observation clock: feed it [`Observation`]s as often as you like (the
/// simulator does so once per simulated minute, the live controller every
/// few tens of milliseconds) and it fires the predictive step every
/// `predictive_period` and the reactive step every `reactive_period`
/// (paper: 15 and 5 minutes), returning a [`Decision`] whenever either
/// cadence elapsed. The lower-level [`AutoScaler::predictive_tick`] /
/// [`AutoScaler::reactive_tick`] steps remain public for priming the
/// initial pool and for tests.
#[derive(Debug, Clone)]
pub struct AutoScaler {
    predictive: PredictiveProvisioner,
    reactive: ReactiveProvisioner,
    policy: ScalingPolicy,
    target: usize,
    /// Predictive cadence, seconds of observation time.
    predictive_period: f64,
    /// Reactive cadence, seconds of observation time.
    reactive_period: f64,
    /// Observation timestamp of the last predictive firing.
    last_predictive: f64,
    /// Observation timestamp of the last reactive firing.
    last_reactive: f64,
    /// `total_arrivals` at the last reactive firing.
    last_arrivals: u64,
    /// Observation→trace time mapping for slot lookup: trace seconds per
    /// observation second (compression factor).
    slot_scale: f64,
    /// Trace-time offset (seconds) added after scaling — where in the
    /// trace day the experiment starts.
    slot_offset: f64,
}

impl AutoScaler {
    /// Builds an auto-scaler; `target` starts at 1 instance, cadence at the
    /// paper's 15-minute predictive / 5-minute reactive periods, and slot
    /// mapping at identity.
    pub fn new(
        predictive: PredictiveProvisioner,
        reactive: ReactiveProvisioner,
        policy: ScalingPolicy,
    ) -> Self {
        AutoScaler {
            predictive,
            reactive,
            policy,
            target: 1,
            predictive_period: 900.0,
            reactive_period: 300.0,
            last_predictive: 0.0,
            last_reactive: 0.0,
            last_arrivals: 0,
            slot_scale: 1.0,
            slot_offset: 0.0,
        }
    }

    /// Sets the two cadence periods (in observation time). A compressed
    /// trace replay divides the paper's 900 s / 300 s by its compression
    /// factor so the policies fire at the same *trace* times as in
    /// simulation.
    ///
    /// # Panics
    ///
    /// Panics if either period is zero.
    pub fn with_periods(mut self, predictive: Duration, reactive: Duration) -> Self {
        assert!(
            !predictive.is_zero() && !reactive.is_zero(),
            "cadence periods must be positive"
        );
        self.predictive_period = predictive.as_secs_f64();
        self.reactive_period = reactive.as_secs_f64();
        self
    }

    /// Sets the observation→trace time mapping used for predictive slot
    /// lookup: `trace_time = now * scale + offset_secs`. `scale` is the
    /// time-compression factor (trace seconds per observation second,
    /// 1.0 = real time); `offset_secs` positions the experiment start
    /// within the trace day (and is also how the misprediction experiment
    /// shifts the predictor off its slot).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn with_slot_mapping(mut self, scale: f64, offset_secs: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "slot scale must be positive"
        );
        self.slot_scale = scale;
        self.slot_offset = offset_secs;
        self
    }

    /// Maps an observation timestamp to trace time for slot lookup.
    fn trace_time(&self, now: Duration) -> Duration {
        Duration::from_secs_f64((now.as_secs_f64() * self.slot_scale + self.slot_offset).max(0.0))
    }

    /// Current target pool size.
    pub fn target(&self) -> usize {
        self.target
    }

    /// The predictive sub-policy.
    pub fn predictive(&self) -> &PredictiveProvisioner {
        &self.predictive
    }

    /// Mutable access (for history feeding / misprediction injection).
    pub fn predictive_mut(&mut self) -> &mut PredictiveProvisioner {
        &mut self.predictive
    }

    /// Feeds an online measurement of the interarrival-time variance σ²_a
    /// into both policies' capacity models (the paper updates σ²_a "once
    /// every 15 minutes based on online measurements of the global request
    /// queue").
    pub fn observe_interarrival_variance(&mut self, variance: f64) {
        self.predictive
            .model_mut()
            .observe_interarrival_variance(variance);
        self.reactive
            .model_mut()
            .observe_interarrival_variance(variance);
    }

    /// Runs the predictive step for the slot containing `now` (offset from
    /// experiment start, mapped through the configured slot mapping).
    /// Returns the new target if it changed.
    pub fn predictive_tick(&mut self, now: Duration) -> Option<usize> {
        if self.policy == ScalingPolicy::Reactive {
            return None;
        }
        let slot = self.predictive.slot_of(self.trace_time(now));
        let proposed = self.predictive.provision_for_slot(slot)?;
        if proposed != self.target {
            self.target = proposed;
            Some(proposed)
        } else {
            None
        }
    }

    /// Runs the reactive step with the arrival rate observed over the past
    /// reactive period. Returns the new target if corrective action fired.
    pub fn reactive_tick(&mut self, observed_rate: f64) -> Option<usize> {
        if self.policy == ScalingPolicy::Predictive {
            return None;
        }
        let predicted = self.predictive.last_prediction();
        let proposed = self.reactive.check(observed_rate, predicted)?;
        // After correcting, treat the observation as the working prediction
        // so we do not flap every reactive tick.
        self.predictive.force_prediction(observed_rate);
        if proposed != self.target {
            self.target = proposed;
            Some(proposed)
        } else {
            None
        }
    }
}

impl Provisioner for AutoScaler {
    /// The dual-timescale control step, shared verbatim by the simulated
    /// and live pools. Each cadence that elapsed runs its policy step:
    ///
    /// * predictive (every `predictive_period`): feeds the measured
    ///   aggregate interarrival variance into the capacity models — scaled
    ///   by η² because the queue-side measurement sees the merge of η
    ///   per-server streams — then provisions for the current trace slot;
    /// * reactive (every `reactive_period`): compares the arrival rate
    ///   observed over the elapsed window against λ_pred and corrects.
    ///
    /// Returns a [`Decision`] whenever at least one cadence fired (even
    /// with an unchanged target, so the caller can reset its variance
    /// window), `None` between firings.
    fn propose(&mut self, obs: &Observation) -> Option<Decision> {
        let now = obs.now.as_secs_f64();
        let entry_target = self.target;
        let mut fired = false;
        let mut policy = "hold";
        let mut reset_variance_window = false;

        if now - self.last_predictive >= self.predictive_period - 1e-6 {
            self.last_predictive = now;
            fired = true;
            if let Some(var) = obs.interarrival_variance {
                // The queue-side estimator measures the aggregate stream;
                // splitting arrivals across η servers multiplies the
                // per-server interarrival variance by η².
                let eta = obs.live.max(1) as f64;
                self.observe_interarrival_variance(var * eta * eta);
                reset_variance_window = true;
            }
            if self.predictive_tick(obs.now).is_some() {
                policy = "predictive";
            }
        }

        if now - self.last_reactive >= self.reactive_period - 1e-6 {
            let elapsed = now - self.last_reactive;
            let observed = match obs.arrival_rate {
                Some(rate) => rate,
                None => obs.total_arrivals.saturating_sub(self.last_arrivals) as f64 / elapsed,
            };
            self.last_reactive = now;
            self.last_arrivals = obs.total_arrivals;
            fired = true;
            if self.reactive_tick(observed).is_some() {
                policy = "reactive";
            }
        }

        if !fired {
            return None;
        }
        Some(Decision {
            target: self.target,
            changed: self.target != entry_target,
            policy,
            predicted_rate: self.predictive.last_prediction(),
            reset_variance_window,
        })
    }

    fn name(&self) -> &'static str {
        match self.policy {
            ScalingPolicy::Predictive => "predictive",
            ScalingPolicy::Reactive => "reactive",
            ScalingPolicy::Both => "predictive+reactive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn capacity_formula_matches_hand_computation() {
        let m = GgOneModel::paper_defaults();
        // δ = 1 / (0.05 + (0.04 + 0.04) / (2 · 0.4)) = 1 / 0.15
        assert!(close(m.capacity_per_server(), 1.0 / 0.15));
    }

    #[test]
    fn eta_is_ceiling_of_lambda_over_delta() {
        let m = GgOneModel::paper_defaults();
        let delta = m.capacity_per_server();
        assert_eq!(m.required_instances(0.0), 1, "never below one instance");
        assert_eq!(m.required_instances(delta * 0.5), 1);
        assert_eq!(m.required_instances(delta * 1.01), 2);
        assert_eq!(m.required_instances(delta * 7.2), 8);
    }

    #[test]
    fn paper_peak_requires_a_sane_pool() {
        // Peak demand of the day-8 UB1 trace: 8,514 commits/minute.
        let m = GgOneModel::paper_defaults();
        let eta = m.required_instances(8514.0 / 60.0);
        assert!(
            (10..60).contains(&eta),
            "peak pool should be tens of instances, got {eta}"
        );
    }

    #[test]
    #[should_panic(expected = "SLA")]
    fn infeasible_sla_panics() {
        let m = GgOneModel {
            target_response: 0.01,
            mean_service: 0.05,
            var_interarrival: 0.0,
            var_service: 0.0,
        };
        let _ = m.capacity_per_server();
    }

    #[test]
    fn predictor_returns_high_percentile() {
        let mut p = PredictiveProvisioner::new(
            GgOneModel::paper_defaults(),
            Duration::from_secs(900),
            0.95,
        );
        // 20 observations 1..=20 in slot 3: the 95th percentile is 19.
        for v in 1..=20 {
            p.observe(3, v as f64);
        }
        assert!(close(p.predict(3).unwrap(), 19.0));
        assert_eq!(p.predict(4), None);
    }

    #[test]
    fn predictor_slot_arithmetic() {
        let p = PredictiveProvisioner::new(
            GgOneModel::paper_defaults(),
            Duration::from_secs(900),
            0.95,
        );
        assert_eq!(p.slots_per_day(), 96);
        assert_eq!(p.slot_of(Duration::from_secs(0)), 0);
        assert_eq!(p.slot_of(Duration::from_secs(899)), 0);
        assert_eq!(p.slot_of(Duration::from_secs(900)), 1);
        // Wraps at day boundaries.
        assert_eq!(p.slot_of(Duration::from_secs(86_400 + 950)), 1);
    }

    #[test]
    fn observe_series_wraps_days() {
        let mut p = PredictiveProvisioner::new(
            GgOneModel::paper_defaults(),
            Duration::from_secs(900),
            0.95,
        );
        let two_days: Vec<f64> = (0..192).map(|i| i as f64).collect();
        p.observe_series(&two_days);
        // Slot 0 saw rates 0.0 and 96.0; the 95th percentile is 96.
        assert!(close(p.predict(0).unwrap(), 96.0));
    }

    #[test]
    fn reactive_fires_only_outside_band() {
        let r = ReactiveProvisioner::paper_defaults(GgOneModel::paper_defaults());
        // Within ±20% of prediction: no action.
        assert_eq!(r.check(110.0, Some(100.0)), None);
        assert_eq!(r.check(81.0, Some(100.0)), None);
        // Outside the band: recompute.
        assert!(r.check(121.0, Some(100.0)).is_some());
        assert!(r.check(79.0, Some(100.0)).is_some());
        // No prediction: always act on the observation.
        assert!(r.check(50.0, None).is_some());
    }

    #[test]
    fn autoscaler_reactive_corrects_misprediction() {
        let model = GgOneModel::paper_defaults();
        let mut predictive =
            PredictiveProvisioner::new(model.clone(), Duration::from_secs(900), 0.95);
        // History says slot 0 is quiet.
        predictive.observe(0, 1.0);
        let reactive = ReactiveProvisioner::paper_defaults(model.clone());
        let mut scaler = AutoScaler::new(predictive, reactive, ScalingPolicy::Both);

        let t0 = scaler.predictive_tick(Duration::ZERO);
        assert_eq!(t0, None, "1 instance predicted, same as initial target");
        assert_eq!(scaler.target(), 1);

        // Reality: a storm of 100 req/s. The reactive tick must fix it.
        let corrected = scaler.reactive_tick(100.0).expect("must react");
        assert_eq!(corrected, model.required_instances(100.0));
        assert_eq!(scaler.target(), corrected);

        // Same observation again: prediction was updated, no flapping.
        assert_eq!(scaler.reactive_tick(100.0), None);
    }

    #[test]
    fn policy_gating() {
        let model = GgOneModel::paper_defaults();
        let mut predictive =
            PredictiveProvisioner::new(model.clone(), Duration::from_secs(900), 0.95);
        predictive.observe(0, 100.0);
        let reactive = ReactiveProvisioner::paper_defaults(model);

        let mut pred_only = AutoScaler::new(
            predictive.clone(),
            reactive.clone(),
            ScalingPolicy::Predictive,
        );
        assert!(pred_only.predictive_tick(Duration::ZERO).is_some());
        assert_eq!(pred_only.reactive_tick(1000.0), None, "reactive disabled");

        let mut react_only = AutoScaler::new(predictive, reactive, ScalingPolicy::Reactive);
        assert_eq!(
            react_only.predictive_tick(Duration::ZERO),
            None,
            "predictive disabled"
        );
        assert!(react_only.reactive_tick(1000.0).is_some());
    }

    #[test]
    fn scaling_policy_parses() {
        assert_eq!(
            "both".parse::<ScalingPolicy>().unwrap(),
            ScalingPolicy::Both
        );
        assert!("nope".parse::<ScalingPolicy>().is_err());
    }

    #[test]
    fn provisioner_trait_objects() {
        let model = GgOneModel::paper_defaults();
        let mut policies: Vec<Box<dyn Provisioner>> = vec![
            Box::new(ReactiveProvisioner::paper_defaults(model.clone())),
            Box::new(PredictiveProvisioner::new(
                model.clone(),
                Duration::from_secs(900),
                0.95,
            )),
        ];
        let obs = Observation {
            arrival_rate: Some(50.0),
            queue_depth: 10,
            live: 1,
            target: 1,
            ..Observation::at(Duration::ZERO)
        };
        assert_eq!(policies[0].name(), "reactive");
        let d = policies[0].propose(&obs).expect("reactive always acts");
        assert_eq!(d.target, model.required_instances(50.0));
        assert!(d.changed);
        assert_eq!(policies[1].name(), "predictive");
        assert_eq!(policies[1].propose(&obs), None, "no history for the slot");
    }

    /// The `AutoScaler` as a `Provisioner` must reproduce, decision for
    /// decision, what hand-calling `predictive_tick`/`reactive_tick` on the
    /// paper cadence produces.
    #[test]
    fn autoscaler_propose_matches_manual_ticks() {
        let model = GgOneModel::paper_defaults();
        let build = || {
            let mut predictive =
                PredictiveProvisioner::new(model.clone(), Duration::from_secs(900), 0.95);
            // Quiet first slot, busy second slot.
            predictive.observe(0, 5.0);
            predictive.observe(1, 120.0);
            let reactive = ReactiveProvisioner::paper_defaults(model.clone());
            AutoScaler::new(predictive, reactive, ScalingPolicy::Both)
        };

        // Manual wiring: predictive every 900 s, reactive every 300 s,
        // observed rate fixed at 40 req/s.
        let mut manual = build();
        let mut manual_targets = Vec::new();
        let mut last_pred = 0.0_f64;
        let mut last_react = 0.0_f64;
        for step in 1..=30 {
            let now = step as f64 * 60.0;
            if now - last_pred >= 900.0 - 1e-6 {
                last_pred = now;
                manual.predictive_tick(Duration::from_secs_f64(now));
            }
            if now - last_react >= 300.0 - 1e-6 {
                last_react = now;
                manual.reactive_tick(40.0);
            }
            manual_targets.push(manual.target());
        }

        // Trait path: one observation per simulated minute; arrivals run at
        // 40 req/s so the delta-derived rate matches.
        let mut auto = build();
        let mut auto_targets = Vec::new();
        for step in 1..=30 {
            let now = step as f64 * 60.0;
            let obs = Observation {
                total_arrivals: (now * 40.0) as u64,
                live: auto.target(),
                target: auto.target(),
                ..Observation::at(Duration::from_secs_f64(now))
            };
            let _ = auto.propose(&obs);
            auto_targets.push(auto.target());
        }

        assert_eq!(manual_targets, auto_targets);
        assert!(
            auto_targets.last().copied().unwrap() > 1,
            "40 req/s must provision more than one instance"
        );
    }

    #[test]
    fn autoscaler_propose_is_silent_between_cadences() {
        let model = GgOneModel::paper_defaults();
        let predictive = PredictiveProvisioner::new(model.clone(), Duration::from_secs(900), 0.95);
        let reactive = ReactiveProvisioner::paper_defaults(model);
        let mut scaler = AutoScaler::new(predictive, reactive, ScalingPolicy::Both)
            .with_periods(Duration::from_secs(900), Duration::from_secs(300));
        assert_eq!(
            scaler.propose(&Observation::at(Duration::from_secs(60))),
            None,
            "neither cadence elapsed at t=60"
        );
        let d = scaler
            .propose(&Observation::at(Duration::from_secs(300)))
            .expect("reactive cadence elapsed");
        assert!(!d.changed, "zero arrivals keep the pool at 1");
        assert_eq!(d.target, 1);
    }

    #[test]
    fn autoscaler_variance_consumption_requests_window_reset() {
        let model = GgOneModel::paper_defaults();
        let mut predictive =
            PredictiveProvisioner::new(model.clone(), Duration::from_secs(900), 0.95);
        predictive.observe(1, 10.0);
        let reactive = ReactiveProvisioner::paper_defaults(model);
        let mut scaler = AutoScaler::new(predictive, reactive, ScalingPolicy::Both);
        let obs = Observation {
            live: 4,
            target: 1,
            interarrival_variance: Some(0.01),
            ..Observation::at(Duration::from_secs(900))
        };
        let d = scaler.propose(&obs).expect("predictive cadence elapsed");
        assert!(
            d.reset_variance_window,
            "variance consumed at the 15-min tick"
        );
        // η = 4 live servers → the aggregate measurement is scaled by 16.
        let got = scaler.predictive().model().var_interarrival;
        assert!(close(got, 0.01 * 16.0), "η² scaling, got {got}");
    }

    #[test]
    fn autoscaler_slot_mapping_compresses_time() {
        let model = GgOneModel::paper_defaults();
        let mut predictive =
            PredictiveProvisioner::new(model.clone(), Duration::from_secs(900), 0.95);
        // Slot 0 quiet, slot 2 (trace seconds 1800..2700) busy.
        predictive.observe(0, 1.0);
        predictive.observe(2, 200.0);
        let reactive = ReactiveProvisioner::paper_defaults(model.clone());
        // Compression 60: one wall second is a trace minute, and the
        // predictive cadence compresses with it (900/60 = 15 s wall).
        let mut scaler = AutoScaler::new(predictive, reactive, ScalingPolicy::Predictive)
            .with_periods(Duration::from_secs(15), Duration::from_secs(5))
            .with_slot_mapping(60.0, 0.0);
        // Wall t=30 s → trace t=1800 s → slot 2.
        let d = scaler
            .propose(&Observation::at(Duration::from_secs(30)))
            .expect("predictive cadence elapsed");
        assert!(d.changed);
        assert_eq!(d.target, model.required_instances(200.0));
        assert_eq!(d.policy, "predictive");
    }
}
