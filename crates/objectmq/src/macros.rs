//! The `remote_interface!` macro: typed dynamic stubs.
//!
//! The paper's ObjectMQ declares remote interfaces with Java annotations
//! (`@SyncMethod(retry = 5, timeout = 1500)`, `@AsyncMethod`,
//! `@MultiMethod`, Fig. 6). This macro is the Rust equivalent: it
//! generates a typed proxy wrapper whose methods encode their invocation
//! kind, timeouts and retries, so call sites read like local calls while
//! staying explicitly remote (the Waldo et al. principle the paper cites).
//!
//! ```
//! use objectmq::{remote_interface, Broker, RemoteObject};
//! use wire::Value;
//!
//! remote_interface! {
//!     /// Client-side view of a counter service.
//!     pub proxy CounterApi {
//!         sync add(amount: i64) -> i64 [timeout_ms = 1500, retries = 5];
//!         oneway reset();
//!         multi broadcast_hint(hint: String);
//!     }
//! }
//!
//! struct Counter(std::sync::atomic::AtomicI64);
//! impl RemoteObject for Counter {
//!     fn dispatch(&self, method: &str, args: &[Value]) -> Result<Value, String> {
//!         use std::sync::atomic::Ordering;
//!         match method {
//!             "add" => {
//!                 let n = args[0].as_i64().map_err(|e| e.to_string())?;
//!                 Ok(Value::I64(self.0.fetch_add(n, Ordering::SeqCst) + n))
//!             }
//!             "reset" => { self.0.store(0, Ordering::SeqCst); Ok(Value::Null) }
//!             "broadcast_hint" => Ok(Value::Null),
//!             other => Err(format!("no method {other}")),
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let broker = Broker::in_process();
//! let _server = broker.bind("counter", Counter(Default::default()))?;
//! let counter = CounterApi::lookup(&broker, "counter")?;
//! assert_eq!(counter.add(40)?, 40);
//! assert_eq!(counter.add(2)?, 42);
//! counter.reset()?;                 // fire-and-forget
//! counter.broadcast_hint("hi".to_string())?; // fanout to all instances
//! # Ok(())
//! # }
//! ```

/// Declares a typed proxy over a remote object.
///
/// Method kinds:
///
/// * `sync name(args…) -> Ret [timeout_ms = N, retries = M];` —
///   `@SyncMethod`: blocks for the decoded `Ret` (any [`wire::FromValue`]).
/// * `oneway name(args…);` — `@AsyncMethod`: fire-and-forget.
/// * `multi name(args…);` — `@MultiMethod @AsyncMethod`: fanout to every
///   bound instance; returns how many instances were reached.
/// * `multi_sync name(args…) [timeout_ms = N];` — `@MultiMethod
///   @SyncMethod`: fanout and collect every instance's reply within the
///   timeout.
///
/// Arguments may be any type implementing [`wire::ToValue`].
#[macro_export]
macro_rules! remote_interface {
    (
        $(#[$meta:meta])*
        $vis:vis proxy $name:ident {
            $($methods:tt)*
        }
    ) => {
        $(#[$meta])*
        $vis struct $name {
            proxy: $crate::Proxy,
        }

        impl $name {
            /// Wraps an existing dynamic stub.
            #[allow(dead_code)]
            $vis fn new(proxy: $crate::Proxy) -> Self {
                Self { proxy }
            }

            /// Looks up the object and wraps the stub in one step.
            ///
            /// # Errors
            ///
            /// [`$crate::OmqError::UnknownObject`] if nothing is bound to
            /// `oid`.
            #[allow(dead_code)]
            $vis fn lookup(
                broker: &$crate::Broker,
                oid: &str,
            ) -> $crate::OmqResult<Self> {
                Ok(Self { proxy: broker.lookup(oid)? })
            }

            /// The underlying untyped stub.
            #[allow(dead_code)]
            $vis fn raw(&self) -> &$crate::Proxy {
                &self.proxy
            }

            $crate::remote_interface!(@methods $vis, $($methods)*);
        }
    };

    (@methods $vis:vis,) => {};

    (@methods $vis:vis,
        sync $m:ident ( $($arg:ident : $ty:ty),* $(,)? ) -> $ret:ty
            [timeout_ms = $t:expr, retries = $r:expr];
        $($rest:tt)*
    ) => {
        /// `@SyncMethod` remote invocation (generated).
        ///
        /// # Errors
        ///
        /// [`$crate::CallError`] on timeout, remote failure, or a reply
        /// that does not decode as the declared return type.
        #[allow(dead_code)]
        $vis fn $m(&self, $($arg: $ty),*) -> $crate::CallResult<$ret> {
            let reply = self.proxy.call_sync(
                stringify!($m),
                vec![$($crate::wire::ToValue::to_value(&$arg)),*],
                ::std::time::Duration::from_millis($t),
                $r,
            )?;
            <$ret as $crate::wire::FromValue>::from_value(&reply)
                .map_err(|e| $crate::CallError::Middleware($crate::OmqError::Wire(e)))
        }
        $crate::remote_interface!(@methods $vis, $($rest)*);
    };

    (@methods $vis:vis,
        oneway $m:ident ( $($arg:ident : $ty:ty),* $(,)? );
        $($rest:tt)*
    ) => {
        /// `@AsyncMethod` remote invocation (generated): fire-and-forget.
        ///
        /// # Errors
        ///
        /// Middleware errors only; remote failures are invisible by design.
        #[allow(dead_code)]
        $vis fn $m(&self, $($arg: $ty),*) -> $crate::CallResult<()> {
            self.proxy.call_async(
                stringify!($m),
                vec![$($crate::wire::ToValue::to_value(&$arg)),*],
            )
        }
        $crate::remote_interface!(@methods $vis, $($rest)*);
    };

    (@methods $vis:vis,
        multi $m:ident ( $($arg:ident : $ty:ty),* $(,)? );
        $($rest:tt)*
    ) => {
        /// `@MultiMethod @AsyncMethod` remote invocation (generated):
        /// fanout to every bound instance; returns how many were reached.
        ///
        /// # Errors
        ///
        /// Middleware errors only.
        #[allow(dead_code)]
        $vis fn $m(&self, $($arg: $ty),*) -> $crate::CallResult<usize> {
            self.proxy.call_multi_async(
                stringify!($m),
                vec![$($crate::wire::ToValue::to_value(&$arg)),*],
            )
        }
        $crate::remote_interface!(@methods $vis, $($rest)*);
    };

    (@methods $vis:vis,
        multi_sync $m:ident ( $($arg:ident : $ty:ty),* $(,)? )
            [timeout_ms = $t:expr];
        $($rest:tt)*
    ) => {
        /// `@MultiMethod @SyncMethod` remote invocation (generated):
        /// fanout and collect every instance's reply within the timeout.
        ///
        /// # Errors
        ///
        /// Middleware errors only; per-instance failures appear as `Err`
        /// entries.
        #[allow(dead_code)]
        $vis fn $m(
            &self,
            $($arg: $ty),*
        ) -> $crate::CallResult<Vec<Result<$crate::wire::Value, String>>> {
            self.proxy.call_multi_sync(
                stringify!($m),
                vec![$($crate::wire::ToValue::to_value(&$arg)),*],
                ::std::time::Duration::from_millis($t),
            )
        }
        $crate::remote_interface!(@methods $vis, $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::{Broker, RemoteObject};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use wire::Value;

    remote_interface! {
        /// Typed facade over the test service.
        pub proxy MathApi {
            sync square(x: i64) -> i64 [timeout_ms = 1500, retries = 2];
            sync describe(x: i64) -> String [timeout_ms = 1500, retries = 2];
            oneway bump();
            multi shout(word: String);
            multi_sync poll() [timeout_ms = 800];
        }
    }

    struct MathService {
        bumps: Arc<AtomicU64>,
        tag: &'static str,
    }

    impl RemoteObject for MathService {
        fn dispatch(&self, method: &str, args: &[Value]) -> Result<Value, String> {
            match method {
                "square" => {
                    let x = args[0].as_i64().map_err(|e| e.to_string())?;
                    Ok(Value::I64(x * x))
                }
                "describe" => {
                    let x = args[0].as_i64().map_err(|e| e.to_string())?;
                    Ok(Value::from(format!("the number {x}")))
                }
                "bump" => {
                    self.bumps.fetch_add(1, Ordering::SeqCst);
                    Ok(Value::Null)
                }
                "shout" => {
                    self.bumps.fetch_add(1, Ordering::SeqCst);
                    Ok(Value::Null)
                }
                "poll" => Ok(Value::from(self.tag)),
                other => Err(format!("no method {other}")),
            }
        }
    }

    #[test]
    fn generated_sync_methods_are_typed() {
        let broker = Broker::in_process();
        let bumps = Arc::new(AtomicU64::new(0));
        let _s = broker
            .bind("math", MathService { bumps, tag: "a" })
            .unwrap();
        let api = MathApi::lookup(&broker, "math").unwrap();
        assert_eq!(api.square(12).unwrap(), 144);
        assert_eq!(api.describe(7).unwrap(), "the number 7");
    }

    #[test]
    fn generated_oneway_and_multi() {
        let broker = Broker::in_process();
        let bumps = Arc::new(AtomicU64::new(0));
        let _s1 = broker
            .bind(
                "math",
                MathService {
                    bumps: bumps.clone(),
                    tag: "a",
                },
            )
            .unwrap();
        let _s2 = broker
            .bind(
                "math",
                MathService {
                    bumps: bumps.clone(),
                    tag: "b",
                },
            )
            .unwrap();
        let api = MathApi::lookup(&broker, "math").unwrap();
        api.bump().unwrap();
        let reached = api.shout("hello".into()).unwrap();
        assert_eq!(reached, 2, "multi must reach both instances");
        // 1 bump + 2 shouts.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while bumps.load(Ordering::SeqCst) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(bumps.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn generated_multi_sync_collects_all() {
        let broker = Broker::in_process();
        let _s1 = broker
            .bind(
                "math",
                MathService {
                    bumps: Arc::default(),
                    tag: "a",
                },
            )
            .unwrap();
        let _s2 = broker
            .bind(
                "math",
                MathService {
                    bumps: Arc::default(),
                    tag: "b",
                },
            )
            .unwrap();
        let api = MathApi::lookup(&broker, "math").unwrap();
        let mut tags: Vec<String> = api
            .poll()
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap().as_str().unwrap().to_string())
            .collect();
        tags.sort();
        assert_eq!(tags, vec!["a", "b"]);
    }

    #[test]
    fn type_mismatch_is_a_call_error() {
        let broker = Broker::in_process();
        let _s = broker
            .bind(
                "math",
                MathService {
                    bumps: Arc::default(),
                    tag: "a",
                },
            )
            .unwrap();
        remote_interface! {
            proxy WrongApi {
                sync describe(x: i64) -> i64 [timeout_ms = 1500, retries = 0];
            }
        }
        let api = WrongApi::lookup(&broker, "math").unwrap();
        // Server returns a string; the proxy expects i64.
        assert!(api.describe(1).is_err());
    }
}
