//! Server side: remote objects, the skeleton dispatch loop, and instance
//! handles.

use crate::error::OmqResult;
use crate::info::ServiceStats;
use crate::rpc::{decode_request, Response};
use mqsim::{Message, MessageConsumer, MessageProperties, Messaging};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wire::{Codec, Value};

/// A server object that can be bound to an `oid` and invoked remotely.
///
/// Implementations should be stateless or keep their state in an external
/// store (the paper deliberately provides no shared state between object
/// instances — consistency belongs to the database tier, §3.1).
pub trait RemoteObject: Send + Sync + 'static {
    /// Executes `method` with `args`, returning the result value or an
    /// application-level error message that is forwarded to the caller.
    ///
    /// # Errors
    ///
    /// The `Err` string is delivered to the remote caller as
    /// [`crate::CallError::Remote`].
    fn dispatch(&self, method: &str, args: &[Value]) -> Result<Value, String>;
}

impl<F> RemoteObject for F
where
    F: Fn(&str, &[Value]) -> Result<Value, String> + Send + Sync + 'static,
{
    fn dispatch(&self, method: &str, args: &[Value]) -> Result<Value, String> {
        self(method, args)
    }
}

static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

pub(crate) fn fresh_instance_name(oid: &str) -> String {
    let n = NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed);
    // The process id is part of the name: instances in different OS
    // processes can share one remote broker (crates/net), and a bare
    // counter would collide there — two "instance 1" queues would become
    // one competing-consumer queue, splitting every multicast in half.
    format!("omq.inst.{oid}.{}-{n}", std::process::id())
}

/// Handle to one bound server object instance.
///
/// The instance runs two skeleton threads: one consuming the shared unicast
/// queue `oid` (competing with the other instances — this is the load
/// balancing), and one consuming this instance's private queue bound to the
/// `oid` fanout exchange (multicast deliveries).
#[derive(Debug)]
pub struct ServerHandle {
    oid: String,
    instance: String,
    stats: Arc<ServiceStats>,
    stop: Arc<AtomicBool>,
    crash: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    mq: Arc<dyn Messaging>,
}

impl ServerHandle {
    /// The object id this instance serves.
    pub fn oid(&self) -> &str {
        &self.oid
    }

    /// The private (multicast) queue name of this instance.
    pub fn instance_name(&self) -> &str {
        &self.instance
    }

    /// Introspection counters of this instance (`HasObjectInfo`).
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Shared handle to the stats, e.g. for a supervisor to keep after the
    /// instance dies.
    pub fn stats_arc(&self) -> Arc<ServiceStats> {
        self.stats.clone()
    }

    /// Whether the instance is still running.
    pub fn is_alive(&self) -> bool {
        !self.stop.load(Ordering::Acquire) && !self.crash.load(Ordering::Acquire)
    }

    /// Graceful shutdown: in-flight work is finished and acknowledged, the
    /// private queue is removed, and the threads are joined.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let _ = self.mq.delete_queue(&self.instance);
    }

    /// Simulated crash: the instance stops *without acknowledging* whatever
    /// it is processing, so the broker redelivers that invocation to another
    /// instance (paper §3.4). The private queue is left behind, exactly like
    /// a process that died.
    pub fn kill(mut self) {
        self.crash.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Signal the threads; they exit within one poll interval. We do not
        // join here so dropping a handle can never block.
        self.stop.store(true, Ordering::Release);
    }
}

pub(crate) struct SkeletonConfig {
    pub mq: Arc<dyn Messaging>,
    pub codec: Arc<dyn Codec>,
    pub oid: String,
    pub instance: String,
    /// Poll interval of the serve loops (also the shutdown latency bound).
    pub poll: Duration,
}

/// Spawns the two skeleton threads for one object instance.
pub(crate) fn spawn_instance(
    config: SkeletonConfig,
    unicast: Box<dyn MessageConsumer>,
    multicast: Box<dyn MessageConsumer>,
    object: Arc<dyn RemoteObject>,
) -> OmqResult<ServerHandle> {
    let stats = Arc::new(ServiceStats::new());
    let stop = Arc::new(AtomicBool::new(false));
    let crash = Arc::new(AtomicBool::new(false));

    let mut threads = Vec::with_capacity(2);
    for consumer in [unicast, multicast] {
        let loop_ctx = LoopCtx {
            mq: config.mq.clone(),
            codec: config.codec.clone(),
            object: object.clone(),
            stats: stats.clone(),
            stop: stop.clone(),
            crash: crash.clone(),
            poll: config.poll,
        };
        threads.push(std::thread::spawn(move || serve_loop(loop_ctx, consumer)));
    }

    Ok(ServerHandle {
        oid: config.oid,
        instance: config.instance,
        stats,
        stop,
        crash,
        threads,
        mq: config.mq,
    })
}

struct LoopCtx {
    mq: Arc<dyn Messaging>,
    codec: Arc<dyn Codec>,
    object: Arc<dyn RemoteObject>,
    stats: Arc<ServiceStats>,
    stop: Arc<AtomicBool>,
    crash: Arc<AtomicBool>,
    poll: Duration,
}

fn serve_loop(ctx: LoopCtx, consumer: Box<dyn MessageConsumer>) {
    // Global `omq.*` skeleton counters, resolved once per serve thread.
    let dispatched = obs::counter("omq.dispatches_total");
    let panics = obs::counter("omq.dispatch_panics_total");
    let malformed = obs::counter("omq.malformed_requests_total");
    loop {
        if ctx.stop.load(Ordering::Acquire) || ctx.crash.load(Ordering::Acquire) {
            return;
        }
        let delivery = match consumer.recv_timeout(ctx.poll) {
            Ok(d) => d,
            Err(mqsim::MqError::RecvTimeout) => continue,
            Err(_) => return, // queue deleted or broker gone
        };
        if ctx.crash.load(Ordering::Acquire) {
            // Crashed while a message was in hand: drop it unacked.
            drop(delivery);
            return;
        }
        let queued_since = delivery.message.enqueued_at();
        let started = Instant::now();
        ctx.stats.set_busy(true);

        let request = match decode_request(ctx.codec.as_ref(), delivery.message.payload()) {
            Ok(r) => r,
            Err(_) => {
                // Malformed request: poison message, ack and drop so it does
                // not loop forever through redelivery.
                malformed.inc();
                ctx.stats.set_busy(false);
                delivery.ack();
                continue;
            }
        };

        // Trace linkage: the publisher's context rides in the message
        // properties. Synthesize the queue-residency span under it, then
        // nest dispatch and handler execution below that, so one RPC reads
        // as proxy.publish → queue.wait → skeleton.dispatch → handler.exec
        // → reply.publish in the ring buffer.
        let trace_parent = delivery
            .message
            .properties()
            .trace
            .as_deref()
            .and_then(obs::SpanContext::decode);
        let dispatch_span = trace_parent.map(|parent| {
            let now = obs::now_ns();
            let wait_ns = queued_since
                .map(|t| t.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            let qctx = obs::record_manual("queue.wait", &parent, now.saturating_sub(wait_ns), now);
            obs::Span::start_child_of("skeleton.dispatch", &qctx)
        });
        let mut exec_span = dispatch_span.as_ref().map(|d| d.child("handler.exec"));

        let object = ctx.object.clone();
        let method = request.method.clone();
        let args = request.args.clone();
        // Install the exec context so nested code (handlers issuing their
        // own calls, services tagging workspaces) links into this trace.
        let prev = obs::set_current(exec_span.as_ref().map(|s| s.context()));
        let outcome = catch_unwind(AssertUnwindSafe(move || object.dispatch(&method, &args)));
        obs::set_current(prev);
        let notes = obs::take_annotations();
        ctx.stats.set_busy(false);

        let outcome = match outcome {
            Ok(r) => r,
            Err(_) => {
                // The object panicked mid-call: treat it like a crash. The
                // unacked delivery is requeued for another instance and this
                // skeleton dies (the Supervisor will respawn it).
                panics.inc();
                ctx.crash.store(true, Ordering::Release);
                drop(delivery);
                return;
            }
        };

        let service = started.elapsed();
        let response_time = queued_since.map(|t| t.elapsed()).unwrap_or(service);
        ctx.stats.record(service, response_time);
        dispatched.inc();
        obs::histogram(&format!("omq.service_seconds.{}", request.method)).record(service);
        obs::histogram(&format!("omq.response_seconds.{}", request.method)).record(response_time);
        if let Some(exec) = exec_span.as_mut() {
            for note in notes {
                exec.note(note);
            }
        }
        if let Some(exec) = exec_span {
            exec.finish();
        }

        if let Some(reply_to) = delivery.message.properties().reply_to.clone() {
            let response = Response {
                id: request.id.clone(),
                outcome,
            };
            let payload = wire::encode_to_bytes(ctx.codec.as_ref(), &response.to_value());
            let props = MessageProperties {
                correlation_id: Some(request.id),
                reply_to: None,
                content_type: Some(format!("omq/{}", ctx.codec.name())),
                persistent: true,
                trace: None,
            };
            let reply_span = dispatch_span.as_ref().map(|d| d.child("reply.publish"));
            // A missing reply queue means the client left; that is fine.
            let _ = ctx
                .mq
                .publish_to_queue(&reply_to, Message::with_properties(payload, props));
            if let Some(span) = reply_span {
                span.finish();
            }
        }
        if let Some(span) = dispatch_span {
            span.finish();
        }

        if ctx.crash.load(Ordering::Acquire) {
            drop(delivery); // crash between processing and ack: redeliver
            return;
        }
        delivery.ack();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_objects_implement_remote_object() {
        let obj = |method: &str, _args: &[Value]| -> Result<Value, String> {
            Ok(Value::from(method.to_string()))
        };
        assert_eq!(obj.dispatch("m", &[]), Ok(Value::from("m")));
    }

    #[test]
    fn instance_names_are_unique_per_oid() {
        let a = fresh_instance_name("svc");
        let b = fresh_instance_name("svc");
        assert_ne!(a, b);
        assert!(a.starts_with("omq.inst.svc."));
    }
}
