//! Introspection: the `HasObjectInfo` hook of the paper's provisioning
//! framework. Provisioners read these snapshots to decide pool sizes.

use parking_lot::Mutex;
use std::time::Duration;

/// Online mean/variance of service and response times (Welford's algorithm),
/// plus a processed-message counter. One per server instance.
#[derive(Debug, Default)]
pub struct ServiceStats {
    inner: Mutex<StatsInner>,
}

#[derive(Debug, Default, Clone)]
struct StatsInner {
    count: u64,
    service_mean: f64,
    service_m2: f64,
    response_mean: f64,
    response_m2: f64,
    busy: bool,
}

impl ServiceStats {
    /// Creates empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed invocation.
    ///
    /// `service` is time spent executing the method; `response` additionally
    /// includes the queueing delay before the instance picked the message up.
    pub fn record(&self, service: Duration, response: Duration) {
        let mut inner = self.inner.lock();
        inner.count += 1;
        let n = inner.count as f64;
        let s = service.as_secs_f64();
        let delta = s - inner.service_mean;
        inner.service_mean += delta / n;
        inner.service_m2 += delta * (s - inner.service_mean);
        let r = response.as_secs_f64();
        let delta_r = r - inner.response_mean;
        inner.response_mean += delta_r / n;
        inner.response_m2 += delta_r * (r - inner.response_mean);
    }

    /// Marks whether the instance is currently executing a method.
    pub fn set_busy(&self, busy: bool) {
        self.inner.lock().busy = busy;
    }

    /// Clears the accumulated statistics (count, means, variances) while
    /// preserving the `busy` flag, which reflects present execution state
    /// rather than history. Provisioners use this to start a fresh
    /// observation window.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        let busy = inner.busy;
        *inner = StatsInner {
            busy,
            ..StatsInner::default()
        };
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> ObjectInfo {
        let inner = self.inner.lock().clone();
        let var = |m2: f64, n: u64| if n > 1 { m2 / (n as f64 - 1.0) } else { 0.0 };
        ObjectInfo {
            processed: inner.count,
            mean_service_time: Duration::from_secs_f64(inner.service_mean.max(0.0)),
            service_time_variance: var(inner.service_m2, inner.count),
            mean_response_time: Duration::from_secs_f64(inner.response_mean.max(0.0)),
            response_time_variance: var(inner.response_m2, inner.count),
            busy: inner.busy,
        }
    }
}

/// Snapshot of a single server object instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectInfo {
    /// Invocations completed by this instance.
    pub processed: u64,
    /// Mean method execution time.
    pub mean_service_time: Duration,
    /// Sample variance of the service time, in seconds².
    pub service_time_variance: f64,
    /// Mean end-to-end (queueing + service) time.
    pub mean_response_time: Duration,
    /// Sample variance of the response time, in seconds².
    pub response_time_variance: f64,
    /// Whether a method is executing right now.
    pub busy: bool,
}

/// Aggregated view over the pool of instances bound to one `oid`, combined
/// with queue-side observations. This is what a `Provisioner` sees.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolInfo {
    /// The object identifier (also the request queue name).
    pub oid: String,
    /// Number of live instances.
    pub instances: usize,
    /// Instances executing a method at snapshot time — the pool's
    /// instantaneous utilization, which queue-side metrics cannot show.
    pub busy_instances: usize,
    /// Ready messages waiting in the request queue.
    pub queue_depth: usize,
    /// Observed arrival rate on the request queue, req/s.
    pub arrival_rate: f64,
    /// Mean service time across instances.
    pub mean_service_time: Duration,
    /// Pooled service-time variance, seconds².
    pub service_time_variance: f64,
}

impl PoolInfo {
    /// Combines per-instance snapshots with queue observations.
    pub fn aggregate(
        oid: &str,
        infos: &[ObjectInfo],
        queue_depth: usize,
        arrival_rate: f64,
    ) -> Self {
        let n = infos.len().max(1) as f64;
        let mean_service = infos
            .iter()
            .map(|i| i.mean_service_time.as_secs_f64())
            .sum::<f64>()
            / n;
        let var_service = infos.iter().map(|i| i.service_time_variance).sum::<f64>() / n;
        PoolInfo {
            oid: oid.to_string(),
            instances: infos.len(),
            busy_instances: infos.iter().filter(|i| i.busy).count(),
            queue_depth,
            arrival_rate,
            mean_service_time: Duration::from_secs_f64(mean_service.max(0.0)),
            service_time_variance: var_service,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_mean_and_variance() {
        let stats = ServiceStats::new();
        let samples = [0.010, 0.020, 0.030, 0.040, 0.050];
        for s in samples {
            stats.record(
                Duration::from_secs_f64(s),
                Duration::from_secs_f64(s + 0.005),
            );
        }
        let snap = stats.snapshot();
        assert_eq!(snap.processed, 5);
        assert!((snap.mean_service_time.as_secs_f64() - 0.030).abs() < 1e-9);
        // naive sample variance of the values
        let mean = 0.030;
        let var: f64 =
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (samples.len() as f64 - 1.0);
        assert!((snap.service_time_variance - var).abs() < 1e-12);
        assert!((snap.mean_response_time.as_secs_f64() - 0.035).abs() < 1e-9);
    }

    #[test]
    fn single_sample_variance_is_zero() {
        let stats = ServiceStats::new();
        stats.record(Duration::from_millis(10), Duration::from_millis(12));
        let snap = stats.snapshot();
        assert_eq!(snap.service_time_variance, 0.0);
    }

    #[test]
    fn busy_flag_toggles() {
        let stats = ServiceStats::new();
        assert!(!stats.snapshot().busy);
        stats.set_busy(true);
        assert!(stats.snapshot().busy);
        stats.set_busy(false);
        assert!(!stats.snapshot().busy);
    }

    #[test]
    fn pool_aggregation_averages() {
        let a = ObjectInfo {
            processed: 10,
            mean_service_time: Duration::from_millis(10),
            service_time_variance: 1.0,
            mean_response_time: Duration::from_millis(20),
            response_time_variance: 2.0,
            busy: false,
        };
        let b = ObjectInfo {
            processed: 20,
            mean_service_time: Duration::from_millis(30),
            service_time_variance: 3.0,
            mean_response_time: Duration::from_millis(40),
            response_time_variance: 4.0,
            busy: true,
        };
        let pool = PoolInfo::aggregate("svc", &[a, b], 7, 42.0);
        assert_eq!(pool.instances, 2);
        assert_eq!(pool.busy_instances, 1, "exactly b is busy");
        assert_eq!(pool.queue_depth, 7);
        assert_eq!(pool.arrival_rate, 42.0);
        assert!((pool.mean_service_time.as_secs_f64() - 0.020).abs() < 1e-9);
        assert!((pool.service_time_variance - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_pool_aggregate_is_sane() {
        let pool = PoolInfo::aggregate("svc", &[], 0, 0.0);
        assert_eq!(pool.instances, 0);
        assert_eq!(pool.busy_instances, 0);
        assert_eq!(pool.mean_service_time, Duration::ZERO);
    }

    #[test]
    fn reset_clears_counters_but_keeps_busy() {
        let stats = ServiceStats::new();
        stats.record(Duration::from_millis(10), Duration::from_millis(15));
        stats.record(Duration::from_millis(20), Duration::from_millis(25));
        stats.set_busy(true);
        stats.reset();
        let snap = stats.snapshot();
        assert_eq!(snap.processed, 0);
        assert_eq!(snap.mean_service_time, Duration::ZERO);
        assert_eq!(snap.service_time_variance, 0.0);
        assert!(snap.busy, "busy reflects current execution, not history");
        // The estimator works normally after a reset.
        stats.record(Duration::from_millis(30), Duration::from_millis(40));
        let snap = stats.snapshot();
        assert_eq!(snap.processed, 1);
        assert!((snap.mean_service_time.as_secs_f64() - 0.030).abs() < 1e-9);
    }

    #[test]
    fn welford_matches_naive_two_pass_on_random_samples() {
        // Deterministic xorshift so the sample sets are reproducible.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Service times in (0, ~0.26) s — the realistic regime.
            (state >> 40) as f64 / 1e8 + 1e-6
        };
        for n in [2usize, 10, 100, 1000] {
            let stats = ServiceStats::new();
            // Go through Duration first: it quantizes to nanoseconds, and
            // the naive reference must see the same values as the estimator.
            let samples: Vec<(f64, f64)> = (0..n)
                .map(|_| {
                    (
                        Duration::from_secs_f64(next()).as_secs_f64(),
                        Duration::from_secs_f64(next()).as_secs_f64(),
                    )
                })
                .collect();
            for &(s, r) in &samples {
                stats.record(Duration::from_secs_f64(s), Duration::from_secs_f64(r));
            }
            let snap = stats.snapshot();
            let naive = |values: &[f64]| {
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
                    / (values.len() as f64 - 1.0);
                (mean, var)
            };
            let service: Vec<f64> = samples.iter().map(|&(s, _)| s).collect();
            let response: Vec<f64> = samples.iter().map(|&(_, r)| r).collect();
            let (sm, sv) = naive(&service);
            let (rm, rv) = naive(&response);
            assert_eq!(snap.processed, n as u64);
            // Means come back as Duration (nanosecond resolution), so allow
            // the quantization step; variances are plain f64 passthrough.
            assert!(
                (snap.mean_service_time.as_secs_f64() - sm).abs() < 2e-9,
                "service mean diverged at n={n}"
            );
            assert!(
                (snap.service_time_variance - sv).abs() / sv.max(1e-12) < 1e-9,
                "service variance diverged at n={n}: {} vs {sv}",
                snap.service_time_variance
            );
            assert!((snap.mean_response_time.as_secs_f64() - rm).abs() < 2e-9);
            assert!((snap.response_time_variance - rv).abs() / rv.max(1e-12) < 1e-9);
        }
    }
}
