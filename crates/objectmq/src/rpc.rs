//! RPC envelopes: the request/response schema travelling through queues.

use wire::{Value, WireError, WireResult};

/// A remote invocation request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Unique invocation id (also the AMQP correlation id for sync calls).
    pub id: String,
    /// Method name on the remote object.
    pub method: String,
    /// Positional arguments.
    pub args: Vec<Value>,
}

impl Request {
    /// Lowers the request into the wire data model.
    pub fn to_value(&self) -> Value {
        Value::Map(vec![
            ("id".into(), Value::Str(self.id.clone())),
            ("method".into(), Value::Str(self.method.clone())),
            ("args".into(), Value::List(self.args.clone())),
        ])
    }

    /// Parses a request from the wire data model.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when required fields are missing or mistyped.
    pub fn from_value(value: &Value) -> WireResult<Self> {
        Ok(Request {
            id: value.field("id")?.as_str()?.to_string(),
            method: value.field("method")?.as_str()?.to_string(),
            args: value.field("args")?.as_list()?.to_vec(),
        })
    }
}

/// A remote invocation response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Correlates with [`Request::id`].
    pub id: String,
    /// `Ok(value)` on success, `Err(message)` when the remote object failed.
    pub outcome: Result<Value, String>,
}

impl Response {
    /// Lowers the response into the wire data model.
    pub fn to_value(&self) -> Value {
        let mut entries = vec![("id".into(), Value::Str(self.id.clone()))];
        match &self.outcome {
            Ok(v) => {
                entries.push(("ok".into(), Value::Bool(true)));
                entries.push(("value".into(), v.clone()));
            }
            Err(m) => {
                entries.push(("ok".into(), Value::Bool(false)));
                entries.push(("error".into(), Value::Str(m.clone())));
            }
        }
        Value::Map(entries)
    }

    /// Parses a response from the wire data model.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when required fields are missing or mistyped.
    pub fn from_value(value: &Value) -> WireResult<Self> {
        let id = value.field("id")?.as_str()?.to_string();
        let ok = value.field("ok")?.as_bool()?;
        let outcome = if ok {
            Ok(value.field("value")?.clone())
        } else {
            Err(value.field("error")?.as_str()?.to_string())
        };
        Ok(Response { id, outcome })
    }
}

/// Generates a process-unique invocation id.
pub(crate) fn fresh_id() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    // Combine a counter with the process-wide address-independent epoch so
    // ids stay unique across Broker instances in one process.
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    format!("inv-{n}")
}

/// Validation helper: ensures a decoded value is a request.
pub(crate) fn decode_request(codec: &dyn wire::Codec, bytes: &[u8]) -> WireResult<Request> {
    let value = codec.decode(bytes)?;
    Request::from_value(&value)
}

/// Validation helper: ensures a decoded value is a response.
pub(crate) fn decode_response(codec: &dyn wire::Codec, bytes: &[u8]) -> WireResult<Response> {
    let value = codec.decode(bytes)?;
    Response::from_value(&value).map_err(|e| match e {
        WireError::MissingField(f) => WireError::Invalid(format!("response missing `{f}`")),
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{BinaryCodec, Codec};

    #[test]
    fn request_roundtrip() {
        let r = Request {
            id: "inv-9".into(),
            method: "commit".into(),
            args: vec![Value::from(1i64), Value::from("ws")],
        };
        assert_eq!(Request::from_value(&r.to_value()).unwrap(), r);
    }

    #[test]
    fn response_roundtrip_ok_and_err() {
        let ok = Response {
            id: "a".into(),
            outcome: Ok(Value::from(5i64)),
        };
        let err = Response {
            id: "b".into(),
            outcome: Err("boom".into()),
        };
        assert_eq!(Response::from_value(&ok.to_value()).unwrap(), ok);
        assert_eq!(Response::from_value(&err.to_value()).unwrap(), err);
    }

    #[test]
    fn decode_helpers_reject_garbage() {
        assert!(decode_request(&BinaryCodec, b"junk").is_err());
        let not_a_request = BinaryCodec.encode(&Value::I64(3));
        assert!(decode_request(&BinaryCodec, &not_a_request).is_err());
        let missing = BinaryCodec.encode(&Value::Map(vec![("id".into(), Value::from("x"))]));
        assert!(decode_response(&BinaryCodec, &missing).is_err());
    }

    #[test]
    fn fresh_ids_are_unique() {
        let a = fresh_id();
        let b = fresh_id();
        assert_ne!(a, b);
    }
}
