//! ObjectMQ error types.

use std::error::Error;
use std::fmt;

/// Result alias for middleware-level operations (bind, lookup, …).
pub type OmqResult<T> = Result<T, OmqError>;

/// Result alias for remote invocations.
pub type CallResult<T> = Result<T, CallError>;

/// Errors from middleware plumbing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OmqError {
    /// The underlying message broker failed.
    Broker(mqsim::MqError),
    /// A payload could not be decoded.
    Wire(wire::WireError),
    /// The object id is not bound anywhere.
    UnknownObject(String),
}

impl fmt::Display for OmqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmqError::Broker(e) => write!(f, "message broker error: {e}"),
            OmqError::Wire(e) => write!(f, "wire error: {e}"),
            OmqError::UnknownObject(oid) => write!(f, "no object bound to `{oid}`"),
        }
    }
}

impl Error for OmqError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OmqError::Broker(e) => Some(e),
            OmqError::Wire(e) => Some(e),
            OmqError::UnknownObject(_) => None,
        }
    }
}

impl From<mqsim::MqError> for OmqError {
    fn from(e: mqsim::MqError) -> Self {
        OmqError::Broker(e)
    }
}

impl From<wire::WireError> for OmqError {
    fn from(e: wire::WireError) -> Self {
        OmqError::Wire(e)
    }
}

/// Errors from a remote invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CallError {
    /// No response arrived within the timeout after all retries
    /// (`@SyncMethod(retry, timeout)` exhausted).
    Timeout {
        /// Number of attempts made.
        attempts: u32,
    },
    /// The remote object raised an application error.
    Remote(String),
    /// Middleware failure underneath the call.
    Middleware(OmqError),
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::Timeout { attempts } => {
                write!(f, "remote call timed out after {attempts} attempts")
            }
            CallError::Remote(m) => write!(f, "remote object error: {m}"),
            CallError::Middleware(e) => write!(f, "middleware error: {e}"),
        }
    }
}

impl Error for CallError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CallError::Middleware(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OmqError> for CallError {
    fn from(e: OmqError) -> Self {
        CallError::Middleware(e)
    }
}

impl From<mqsim::MqError> for CallError {
    fn from(e: mqsim::MqError) -> Self {
        CallError::Middleware(OmqError::Broker(e))
    }
}

impl From<wire::WireError> for CallError {
    fn from(e: wire::WireError) -> Self {
        CallError::Middleware(OmqError::Wire(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = OmqError::Broker(mqsim::MqError::RecvTimeout);
        assert!(e.to_string().contains("broker"));
        assert!(e.source().is_some());

        let c = CallError::Timeout { attempts: 5 };
        assert!(c.to_string().contains('5'));
        assert!(c.source().is_none());

        let c = CallError::Middleware(OmqError::UnknownObject("x".into()));
        assert!(c.source().is_some());
    }

    #[test]
    fn conversions() {
        let _: OmqError = mqsim::MqError::Closed.into();
        let _: OmqError = wire::WireError::UnexpectedEof.into();
        let _: CallError = OmqError::UnknownObject("a".into()).into();
        let _: CallError = mqsim::MqError::Closed.into();
        let _: CallError = wire::WireError::InvalidUtf8.into();
    }
}
