//! The Master/Slave enforcement layer of the provisioning framework
//! (paper §3.3–3.4): a central [`Supervisor`] enforces the pool size
//! proposed by provisioners by spawning or shutting down server objects in
//! [`RemoteBroker`] slaves, monitors instance liveness every second, and is
//! itself monitored by the remote brokers, which run a leader election when
//! it dies.

use crate::broker::Broker;
use crate::error::{OmqError, OmqResult};
use crate::oid::Oid;
use crate::server::{RemoteObject, ServerHandle};
use mqsim::{Clock, ExchangeKind, Message, Messaging, QueueOptions, SystemClock};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wire::Value;

/// Factory producing fresh server object instances for an `oid`.
pub type ObjectFactory = Arc<dyn Fn() -> Arc<dyn RemoteObject> + Send + Sync>;

/// Well-known oid under which every remote broker registers.
pub const RBROKER_OID: &str = "omq.rbroker";
/// Fanout exchange carrying supervisor heartbeats.
pub const HEARTBEAT_EXCHANGE: &str = "omq.supervisor.hb";
/// Fanout exchange used for leader election among remote brokers.
pub const ELECTION_EXCHANGE: &str = "omq.election";

#[derive(Default)]
struct RemoteBrokerState {
    factories: RwLock<HashMap<String, ObjectFactory>>,
    instances: Mutex<HashMap<String, Vec<ServerHandle>>>,
}

impl RemoteBrokerState {
    fn reap(&self, oid: &str) {
        let mut instances = self.instances.lock();
        if let Some(handles) = instances.get_mut(oid) {
            handles.retain(|h| h.is_alive());
        }
    }

    fn count(&self, oid: &str) -> usize {
        self.reap(oid);
        self.instances.lock().get(oid).map(|v| v.len()).unwrap_or(0)
    }
}

/// An ObjectMQ server node that can launch or shut down remote object
/// instances on command — the slave side of the provisioning framework.
pub struct RemoteBroker {
    id: u64,
    broker: Broker,
    state: Arc<RemoteBrokerState>,
    /// The rbroker's own remote-object instance.
    server: Option<ServerHandle>,
}

impl std::fmt::Debug for RemoteBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBroker")
            .field("id", &self.id)
            .finish()
    }
}

struct RemoteBrokerObject {
    id: u64,
    broker: Broker,
    state: Arc<RemoteBrokerState>,
}

impl RemoteObject for RemoteBrokerObject {
    fn dispatch(&self, method: &str, args: &[Value]) -> Result<Value, String> {
        match method {
            "ping" => Ok(Value::U64(self.id)),
            "spawn" => {
                let oid = args
                    .first()
                    .and_then(|v| v.as_str().ok())
                    .ok_or("spawn needs an oid argument")?;
                let factory = self
                    .state
                    .factories
                    .read()
                    .get(oid)
                    .cloned()
                    .ok_or_else(|| format!("no factory registered for `{oid}`"))?;
                let handle = self
                    .broker
                    .bind_arc(oid, factory())
                    .map_err(|e| e.to_string())?;
                let name = handle.instance_name().to_string();
                self.state
                    .instances
                    .lock()
                    .entry(oid.to_string())
                    .or_default()
                    .push(handle);
                Ok(Value::Str(name))
            }
            "shutdown_one" => {
                let oid = args
                    .first()
                    .and_then(|v| v.as_str().ok())
                    .ok_or("shutdown_one needs an oid argument")?;
                self.state.reap(oid);
                let handle = self
                    .state
                    .instances
                    .lock()
                    .get_mut(oid)
                    .and_then(|v| v.pop());
                match handle {
                    Some(h) => {
                        h.shutdown();
                        Ok(Value::Bool(true))
                    }
                    None => Ok(Value::Bool(false)),
                }
            }
            "count" => {
                let oid = args
                    .first()
                    .and_then(|v| v.as_str().ok())
                    .ok_or("count needs an oid argument")?;
                Ok(Value::U64(self.state.count(oid) as u64))
            }
            "info" => {
                let oid = args
                    .first()
                    .and_then(|v| v.as_str().ok())
                    .ok_or("info needs an oid argument")?;
                self.state.reap(oid);
                let instances = self.state.instances.lock();
                let infos: Vec<Value> = instances
                    .get(oid)
                    .map(|handles| {
                        handles
                            .iter()
                            .map(|h| {
                                let s = h.stats().snapshot();
                                Value::Map(vec![
                                    ("processed".into(), Value::U64(s.processed)),
                                    (
                                        "mean_service".into(),
                                        Value::F64(s.mean_service_time.as_secs_f64()),
                                    ),
                                    ("var_service".into(), Value::F64(s.service_time_variance)),
                                    ("busy".into(), Value::Bool(s.busy)),
                                ])
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                Ok(Value::List(infos))
            }
            other => Err(format!("remote broker has no method `{other}`")),
        }
    }
}

impl RemoteBroker {
    /// Starts a remote broker with the given unique id on an existing
    /// ObjectMQ broker. It registers itself under [`RBROKER_OID`], joining
    /// the pool of slaves the Supervisor commands.
    ///
    /// # Errors
    ///
    /// Propagates messaging failures.
    pub fn start(broker: Broker, id: u64) -> OmqResult<Self> {
        let state = Arc::new(RemoteBrokerState::default());
        let object = RemoteBrokerObject {
            id,
            broker: broker.clone(),
            state: state.clone(),
        };
        let server = broker.bind_arc(RBROKER_OID, Arc::new(object))?;
        Ok(RemoteBroker {
            id,
            broker,
            state,
            server: Some(server),
        })
    }

    /// This broker's unique id (used for leader election).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Registers a factory so the Supervisor can spawn instances of `oid`
    /// here.
    pub fn register_factory(&self, oid: impl Into<Oid>, factory: ObjectFactory) {
        self.state
            .factories
            .write()
            .insert(oid.into().as_str().to_string(), factory);
    }

    /// Instances of `oid` currently alive on this node.
    pub fn local_count(&self, oid: impl Into<Oid>) -> usize {
        self.state.count(oid.into().as_str())
    }

    /// Kills one local instance of `oid` *abruptly* (crash injection for
    /// the fault-tolerance experiment, paper §5.3.4). Returns whether an
    /// instance existed.
    pub fn crash_one(&self, oid: impl Into<Oid>) -> bool {
        let handle = self
            .state
            .instances
            .lock()
            .get_mut(oid.into().as_str())
            .and_then(|v| v.pop());
        match handle {
            Some(h) => {
                h.kill();
                true
            }
            None => false,
        }
    }

    /// Stops the remote broker and every instance it hosts.
    pub fn stop(mut self) {
        if let Some(s) = self.server.take() {
            s.shutdown();
        }
        let mut instances = self.state.instances.lock();
        for (_, handles) in instances.drain() {
            for h in handles {
                h.shutdown();
            }
        }
    }

    /// The underlying ObjectMQ broker.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }
}

/// Supervisor configuration.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// The service oid whose pool is enforced.
    pub oid: Oid,
    /// Liveness/enforcement period (paper: every second).
    pub check_interval: Duration,
    /// Timeout for each command to the remote brokers.
    pub command_timeout: Duration,
    /// Time source pacing the enforcement rounds. Tests substitute a
    /// [`mqsim::VirtualClock`] so rounds are stepped, not slept.
    pub clock: Arc<dyn Clock>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            oid: Oid::from_static(""),
            check_interval: Duration::from_secs(1),
            command_timeout: Duration::from_millis(800),
            clock: Arc::new(SystemClock::new()),
        }
    }
}

/// One enforcement round's view of the live pool, published by the
/// supervisor loop so harnesses and tests can await convergence instead of
/// sleep-polling the remote brokers themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolObservation {
    /// Live instances counted across all remote brokers, *before* this
    /// round's enforcement actions.
    pub live: usize,
    /// Monotonic round counter; increments once per enforcement round.
    pub generation: u64,
}

/// Shared live-pool state between the supervisor loop and its observers.
struct ObservedPool {
    state: Mutex<PoolObservation>,
    changed: Condvar,
    /// Generation after which a [`Supervisor::set_target`] change is
    /// guaranteed to have been seen by the loop (a round in flight when the
    /// target changed may still act on the old value).
    settle_after: AtomicU64,
}

/// The master entity enforcing provisioning policies (paper Fig. 3).
///
/// Every `check_interval` it queries the remote brokers with a multi-call,
/// compares the live instance count against the current target, and spawns
/// or removes instances to converge. It also publishes heartbeats so remote
/// brokers can detect its death and elect a successor.
pub struct Supervisor {
    stop: Arc<AtomicBool>,
    target: Arc<AtomicUsize>,
    observed: Arc<ObservedPool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("target", &self.target.load(Ordering::Relaxed))
            .finish()
    }
}

impl Supervisor {
    /// Starts the supervisor loop.
    ///
    /// # Errors
    ///
    /// Fails if the heartbeat exchange cannot be declared or no remote
    /// broker is registered yet.
    pub fn start(broker: Broker, config: SupervisorConfig) -> OmqResult<Self> {
        if !broker.object_exists(RBROKER_OID) {
            return Err(OmqError::UnknownObject(RBROKER_OID.to_string()));
        }
        broker
            .messaging()
            .declare_exchange(HEARTBEAT_EXCHANGE, ExchangeKind::Fanout)?;
        let stop = Arc::new(AtomicBool::new(false));
        let target = Arc::new(AtomicUsize::new(1));
        let observed = Arc::new(ObservedPool {
            state: Mutex::new(PoolObservation {
                live: 0,
                generation: 0,
            }),
            changed: Condvar::new(),
            settle_after: AtomicU64::new(2),
        });
        let thread_stop = stop.clone();
        let thread_target = target.clone();
        let thread_observed = observed.clone();
        let thread = std::thread::spawn(move || {
            supervise_loop(broker, config, thread_stop, thread_target, thread_observed);
        });
        Ok(Supervisor {
            stop,
            target,
            observed,
            thread: Some(thread),
        })
    }

    /// Sets the desired pool size (called by provisioning policies).
    pub fn set_target(&self, n: usize) {
        let n = n.max(1);
        let previous = self.target.swap(n, Ordering::Release);
        if previous != n {
            obs::flight_event!("supervisor", "target {previous} -> {n}");
        }
        // A round already in flight may have read the old target before the
        // swap; only rounds started after this point are guaranteed to act
        // on the new value, hence current generation + 2.
        let gen = self.observed.state.lock().generation;
        self.observed.settle_after.store(gen + 2, Ordering::Release);
    }

    /// The current desired pool size.
    pub fn target(&self) -> usize {
        self.target.load(Ordering::Acquire)
    }

    /// The live pool as of the most recent enforcement round.
    pub fn observed(&self) -> PoolObservation {
        *self.observed.state.lock()
    }

    /// Whether the live pool has converged on the current target: at least
    /// one full enforcement round has completed since the last
    /// [`Supervisor::set_target`], and that round counted exactly `target`
    /// live instances.
    pub fn targets_met(&self) -> bool {
        let obs = *self.observed.state.lock();
        obs.generation >= self.observed.settle_after.load(Ordering::Acquire)
            && obs.live == self.target()
    }

    /// Blocks until [`Supervisor::targets_met`] or the timeout elapses;
    /// returns whether convergence was reached. Replaces sleep-polling in
    /// harnesses and tests: the supervisor loop signals after every round.
    pub fn wait_targets_met(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.observed.state.lock();
        loop {
            let settled = state.generation >= self.observed.settle_after.load(Ordering::Acquire)
                && state.live == self.target();
            if settled {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            if self
                .observed
                .changed
                .wait_until(&mut state, deadline)
                .timed_out()
            {
                return state.generation >= self.observed.settle_after.load(Ordering::Acquire)
                    && state.live == self.target();
            }
        }
    }

    /// Graceful stop.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Crash injection: the loop halts immediately and heartbeats cease, as
    /// if the supervisor process died. Used to exercise leader election.
    pub fn kill(mut self) {
        obs::flight_event!("supervisor", "killed (crash injection)");
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
    }
}

fn supervise_loop(
    broker: Broker,
    config: SupervisorConfig,
    stop: Arc<AtomicBool>,
    target: Arc<AtomicUsize>,
    observed: Arc<ObservedPool>,
) {
    let proxy = match broker.lookup(RBROKER_OID) {
        Ok(p) => p,
        Err(_) => return,
    };
    let hb_count = obs::counter("omq.supervisor.heartbeats_total");
    let spawn_count = obs::counter("omq.supervisor.spawns_total");
    let shutdown_count = obs::counter("omq.supervisor.shutdowns_total");
    while !stop.load(Ordering::Acquire) {
        // Heartbeat first: even an idle supervisor proves liveness.
        let _ = broker
            .messaging()
            .publish(HEARTBEAT_EXCHANGE, "", Message::from_static(b"hb"));
        hb_count.inc();

        let desired = target.load(Ordering::Acquire).max(1);
        // Ask every remote broker how many instances it hosts (multi-call,
        // paper: "It periodically ask them about the state of their object").
        let counts = proxy.call_multi_sync(
            "count",
            vec![Value::from(config.oid.as_str())],
            config.command_timeout,
        );
        let live: usize = match counts {
            Ok(results) => results
                .into_iter()
                .filter_map(|r| r.ok())
                .filter_map(|v| v.as_u64().ok())
                .sum::<u64>() as usize,
            Err(_) => 0,
        };

        // Publish this round's pre-enforcement census so observers can
        // await convergence (live == target with the target already seen).
        {
            let mut state = observed.state.lock();
            state.live = live;
            state.generation += 1;
            observed.changed.notify_all();
        }

        if live < desired {
            for _ in 0..(desired - live) {
                // Unicast spawn: any idle remote broker takes it.
                let spawned = proxy.call_sync(
                    "spawn",
                    vec![Value::from(config.oid.as_str())],
                    config.command_timeout,
                    1,
                );
                if spawned.is_ok() {
                    spawn_count.inc();
                    obs::flight_event!(
                        "supervisor",
                        "spawned {} instance ({live}/{desired} live)",
                        config.oid
                    );
                }
            }
        } else if live > desired {
            let mut to_remove = live - desired;
            // A unicast shutdown may land on a broker with no instance;
            // bounded retries keep this converging.
            let mut attempts = 0;
            while to_remove > 0 && attempts < 4 * (live + 1) {
                attempts += 1;
                if let Ok(Value::Bool(true)) = proxy.call_sync(
                    "shutdown_one",
                    vec![Value::from(config.oid.as_str())],
                    config.command_timeout,
                    0,
                ) {
                    to_remove -= 1;
                    shutdown_count.inc();
                    obs::flight_event!(
                        "supervisor",
                        "shut down one {} instance ({live}/{desired} live)",
                        config.oid
                    );
                }
            }
        }

        // Interruptible sleep on the configured clock: a tick at a time so
        // the stop flag is observed promptly, and a closed virtual clock
        // ends the loop instead of stranding it.
        let deadline = config.clock.now() + config.check_interval;
        while config.clock.now() < deadline {
            if stop.load(Ordering::Acquire) {
                return;
            }
            if !config.clock.wait_tick(deadline) {
                return;
            }
        }
    }
}

/// Watches supervisor heartbeats on behalf of a remote broker.
///
/// Every broker runs one of these; when [`HeartbeatMonitor::elapsed`]
/// exceeds a staleness threshold the broker calls [`run_election`] and, if
/// it wins, starts a replacement supervisor (paper §3.4).
pub struct HeartbeatMonitor {
    /// Clock-time of the last heartbeat heard.
    last: Arc<Mutex<Duration>>,
    clock: Arc<dyn Clock>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HeartbeatMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeartbeatMonitor")
            .field("elapsed", &self.elapsed())
            .finish()
    }
}

impl HeartbeatMonitor {
    /// Starts listening to the supervisor heartbeat exchange.
    ///
    /// # Errors
    ///
    /// Propagates messaging failures.
    pub fn start(mq: &dyn Messaging, listener_id: u64) -> OmqResult<Self> {
        Self::start_with_clock(mq, listener_id, Arc::new(SystemClock::new()))
    }

    /// Same as [`HeartbeatMonitor::start`] but timestamps heartbeats on the
    /// given clock, so staleness can be asserted under stepped virtual
    /// time.
    ///
    /// # Errors
    ///
    /// Propagates messaging failures.
    pub fn start_with_clock(
        mq: &dyn Messaging,
        listener_id: u64,
        clock: Arc<dyn Clock>,
    ) -> OmqResult<Self> {
        mq.declare_exchange(HEARTBEAT_EXCHANGE, ExchangeKind::Fanout)?;
        let queue = format!("omq.hbmon.{listener_id}");
        mq.declare_queue(&queue, QueueOptions::default())?;
        mq.bind_queue(HEARTBEAT_EXCHANGE, "", &queue)?;
        let consumer = mq.subscribe(&queue)?;
        let last = Arc::new(Mutex::new(clock.now()));
        let stop = Arc::new(AtomicBool::new(false));
        let t_last = last.clone();
        let t_stop = stop.clone();
        let t_clock = clock.clone();
        let thread = std::thread::spawn(move || {
            while !t_stop.load(Ordering::Acquire) {
                match consumer.recv_timeout(Duration::from_millis(50)) {
                    Ok(d) => {
                        d.ack();
                        *t_last.lock() = t_clock.now();
                    }
                    Err(mqsim::MqError::RecvTimeout) => continue,
                    Err(_) => return,
                }
            }
        });
        Ok(HeartbeatMonitor {
            last,
            clock,
            stop,
            thread: Some(thread),
        })
    }

    /// Time since the last heartbeat was heard.
    pub fn elapsed(&self) -> Duration {
        self.clock.now().saturating_sub(*self.last.lock())
    }

    /// Stops the monitor.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HeartbeatMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
    }
}

/// Runs one round of leader election among remote brokers: every candidate
/// announces its id on a fanout exchange, candidacies are collected for the
/// settle window, and the *smallest* id wins (the paper elects "using the
/// unique identifier of the Brokers"). Returns whether the caller won.
///
/// # Errors
///
/// Propagates messaging failures.
pub fn run_election(mq: &dyn Messaging, my_id: u64, settle: Duration) -> OmqResult<bool> {
    obs::counter("omq.elections_total").inc();
    mq.declare_exchange(ELECTION_EXCHANGE, ExchangeKind::Fanout)?;
    let queue = format!("omq.election.voter.{my_id}");
    mq.declare_queue(&queue, QueueOptions::default())?;
    mq.bind_queue(ELECTION_EXCHANGE, "", &queue)?;
    let consumer = mq.subscribe(&queue)?;

    // Candidacies are re-announced throughout the window so a voter that
    // bound its queue late still hears every candidate.
    let announce_every = (settle / 6).max(Duration::from_millis(10));
    let deadline = Instant::now() + settle;
    let mut next_announce = Instant::now();
    let mut lowest = my_id;
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if now >= next_announce {
            mq.publish(
                ELECTION_EXCHANGE,
                "",
                Message::from_bytes(my_id.to_be_bytes().to_vec()),
            )?;
            next_announce = now + announce_every;
        }
        let wait = (deadline - now).min(
            next_announce
                .saturating_duration_since(now)
                .max(Duration::from_millis(1)),
        );
        match consumer.recv_timeout(wait) {
            Ok(d) => {
                if d.message.payload().len() == 8 {
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(d.message.payload());
                    lowest = lowest.min(u64::from_be_bytes(buf));
                }
                d.ack();
            }
            Err(mqsim::MqError::RecvTimeout) => continue,
            Err(_) => break,
        }
    }
    let _ = mq.delete_queue(&queue);
    let won = lowest == my_id;
    if won {
        // A won election is a supervisor failover about to happen.
        obs::counter("omq.election_wins_total").inc();
        obs::log(
            obs::Level::Info,
            "omq.election",
            &format!("broker {my_id} won the supervisor election"),
        );
    }
    Ok(won)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn counting_factory(counter: Arc<AtomicU64>) -> ObjectFactory {
        Arc::new(move || {
            let c = counter.clone();
            Arc::new(move |_m: &str, _a: &[Value]| -> Result<Value, String> {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Null)
            })
        })
    }

    fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        cond()
    }

    fn fast_config(oid: &str) -> SupervisorConfig {
        SupervisorConfig {
            oid: Oid::from(oid),
            check_interval: Duration::from_millis(60),
            command_timeout: Duration::from_millis(500),
            ..Default::default()
        }
    }

    #[test]
    fn supervisor_spawns_to_target() {
        let broker = Broker::in_process();
        let rb = RemoteBroker::start(broker.clone(), 1).unwrap();
        rb.register_factory("svc", counting_factory(Arc::new(AtomicU64::new(0))));
        let supervisor = Supervisor::start(broker.clone(), fast_config("svc")).unwrap();
        supervisor.set_target(3);
        assert!(
            wait_until(Duration::from_secs(5), || rb.local_count("svc") == 3),
            "supervisor must spawn 3 instances, got {}",
            rb.local_count("svc")
        );
        supervisor.stop();
        rb.stop();
    }

    #[test]
    fn supervisor_scales_down() {
        let broker = Broker::in_process();
        let rb = RemoteBroker::start(broker.clone(), 1).unwrap();
        rb.register_factory("svc", counting_factory(Arc::new(AtomicU64::new(0))));
        let supervisor = Supervisor::start(broker.clone(), fast_config("svc")).unwrap();
        supervisor.set_target(4);
        assert!(wait_until(Duration::from_secs(5), || rb.local_count("svc") == 4));
        supervisor.set_target(1);
        assert!(
            wait_until(Duration::from_secs(5), || rb.local_count("svc") == 1),
            "supervisor must shrink to 1, got {}",
            rb.local_count("svc")
        );
        supervisor.stop();
        rb.stop();
    }

    #[test]
    fn wait_targets_met_observes_convergence() {
        let broker = Broker::in_process();
        let rb = RemoteBroker::start(broker.clone(), 1).unwrap();
        rb.register_factory("svc", counting_factory(Arc::new(AtomicU64::new(0))));
        let supervisor = Supervisor::start(broker.clone(), fast_config("svc")).unwrap();

        supervisor.set_target(3);
        assert!(
            supervisor.wait_targets_met(Duration::from_secs(5)),
            "pool must converge on 3 (observed {:?})",
            supervisor.observed()
        );
        // Convergence means the enforcement loop itself counted 3 live —
        // not merely that the local broker spawned them.
        let obs = supervisor.observed();
        assert_eq!(obs.live, 3);
        assert_eq!(rb.local_count("svc"), 3);
        assert!(supervisor.targets_met());

        // Shrinking re-arms the settle generation: convergence must be
        // re-proven, then observed again.
        supervisor.set_target(1);
        assert!(
            supervisor.wait_targets_met(Duration::from_secs(5)),
            "pool must converge back down to 1 (observed {:?})",
            supervisor.observed()
        );
        assert_eq!(supervisor.observed().live, 1);
        assert!(
            supervisor.observed().generation > obs.generation,
            "generation must advance with enforcement rounds"
        );
        supervisor.stop();
        rb.stop();
    }

    #[test]
    fn supervisor_respawns_crashed_instance() {
        let broker = Broker::in_process();
        let rb = RemoteBroker::start(broker.clone(), 1).unwrap();
        rb.register_factory("svc", counting_factory(Arc::new(AtomicU64::new(0))));
        let supervisor = Supervisor::start(broker.clone(), fast_config("svc")).unwrap();
        supervisor.set_target(2);
        assert!(wait_until(Duration::from_secs(5), || rb.local_count("svc") == 2));
        assert!(rb.crash_one("svc"));
        assert!(
            wait_until(Duration::from_secs(5), || rb.local_count("svc") == 2),
            "crashed instance must be respawned (paper §5.3.4)"
        );
        supervisor.stop();
        rb.stop();
    }

    #[test]
    fn heartbeats_detected_and_go_stale_after_kill() {
        let broker = Broker::in_process();
        let rb = RemoteBroker::start(broker.clone(), 7).unwrap();
        rb.register_factory("svc", counting_factory(Arc::new(AtomicU64::new(0))));
        let monitor = HeartbeatMonitor::start(broker.messaging().as_ref(), 7).unwrap();
        let supervisor = Supervisor::start(broker.clone(), fast_config("svc")).unwrap();
        assert!(
            wait_until(Duration::from_secs(3), || monitor.elapsed()
                < Duration::from_millis(150)),
            "heartbeats must arrive while the supervisor lives"
        );
        supervisor.kill();
        std::thread::sleep(Duration::from_millis(400));
        assert!(
            monitor.elapsed() >= Duration::from_millis(300),
            "heartbeats must stop after the supervisor dies"
        );
        monitor.stop();
        rb.stop();
    }

    #[test]
    fn election_picks_lowest_id() {
        let mq = mqsim::MessageBroker::new();
        let settle = Duration::from_millis(300);
        let mq2 = mq.clone();
        let mq3 = mq.clone();
        let h2 = std::thread::spawn(move || run_election(&mq2, 20, settle).unwrap());
        let h3 = std::thread::spawn(move || run_election(&mq3, 30, settle).unwrap());
        let won_10 = run_election(&mq, 10, settle).unwrap();
        assert!(won_10, "lowest id must win");
        assert!(!h2.join().unwrap());
        assert!(!h3.join().unwrap());
    }

    #[test]
    fn failover_elects_new_supervisor_which_keeps_enforcing() {
        let broker = Broker::in_process();
        let rb1 = RemoteBroker::start(broker.clone(), 1).unwrap();
        let rb2 = RemoteBroker::start(broker.clone(), 2).unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        rb1.register_factory("svc", counting_factory(counter.clone()));
        rb2.register_factory("svc", counting_factory(counter));
        let supervisor = Supervisor::start(broker.clone(), fast_config("svc")).unwrap();
        supervisor.set_target(2);
        let total = || rb1.local_count("svc") + rb2.local_count("svc");
        assert!(wait_until(Duration::from_secs(5), || total() == 2));

        // Supervisor dies. The brokers race an election; the winner starts
        // a replacement which must keep enforcing the target.
        supervisor.kill();
        let mq1 = broker.messaging().clone();
        let mq2 = broker.messaging().clone();
        let settle = Duration::from_millis(300);
        let e2 = std::thread::spawn(move || run_election(mq2.as_ref(), 2, settle).unwrap());
        let won1 = run_election(mq1.as_ref(), 1, settle).unwrap();
        let won2 = e2.join().unwrap();
        assert!(won1 && !won2, "exactly broker 1 must win");

        let successor = Supervisor::start(broker.clone(), fast_config("svc")).unwrap();
        successor.set_target(4);
        assert!(
            wait_until(Duration::from_secs(5), || total() == 4),
            "successor supervisor must enforce the new target, got {}",
            total()
        );
        successor.stop();
        rb1.stop();
        rb2.stop();
    }
}
