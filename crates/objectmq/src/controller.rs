//! The live elasticity control loop: wires queue-side observations into
//! the provisioning policies and enforces their proposals through the
//! [`Supervisor`] — the complete "programmatic elasticity" pipeline of the
//! paper running against real server objects (not the simulator).
//!
//! ```text
//! queue arrival rate ──► AutoScaler (predictive + reactive, G/G/1) ──► Supervisor.set_target
//!        ▲                                                                  │
//!        └───────────────── RemoteBrokers spawn/retire instances ◄──────────┘
//! ```

use crate::broker::Broker;
use crate::error::{OmqError, OmqResult};
use crate::oid::Oid;
use crate::provision::{Observation, Provisioner};
use crate::supervisor::Supervisor;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Controller timing configuration.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// The service oid whose global request queue is observed.
    pub oid: Oid,
    /// How often the provisioner is offered a fresh [`Observation`].
    /// Policies run their own cadence off the observation clock (the
    /// [`crate::provision::AutoScaler`] fires its predictive/reactive
    /// periods internally), so the tick just bounds decision latency.
    pub tick: Duration,
}

impl ControllerConfig {
    /// Default 50 ms observation tick for a service oid. The paper's
    /// 15-minute/5-minute cadence lives in the policy
    /// ([`crate::provision::AutoScaler::with_periods`]), not here.
    pub fn paper(oid: impl Into<Oid>) -> Self {
        ControllerConfig {
            oid: oid.into(),
            tick: Duration::from_millis(50),
        }
    }
}

/// Drives any [`Provisioner`] from live queue observations and enforces its
/// decisions through a [`Supervisor`] — the same policy objects the
/// `elastic` crate runs against its simulated pool.
pub struct ElasticController {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    last_target: Arc<AtomicUsize>,
    decisions: Arc<Mutex<Vec<(Duration, usize)>>>,
}

impl std::fmt::Debug for ElasticController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticController")
            .field("last_target", &self.last_target.load(Ordering::Relaxed))
            .finish()
    }
}

impl ElasticController {
    /// Starts the control loop. The supervisor is owned by the controller
    /// for its lifetime; targets flow exclusively through the policies.
    ///
    /// # Errors
    ///
    /// Fails if the observed queue does not exist.
    pub fn start(
        broker: Broker,
        supervisor: Supervisor,
        mut provisioner: impl Provisioner + 'static,
        config: ControllerConfig,
    ) -> OmqResult<Self> {
        if !broker.object_exists(&config.oid) {
            return Err(OmqError::UnknownObject(config.oid.as_str().to_string()));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let last_target = Arc::new(AtomicUsize::new(supervisor.target()));
        let decisions: Arc<Mutex<Vec<(Duration, usize)>>> = Arc::new(Mutex::new(Vec::new()));

        let t_stop = stop.clone();
        let t_target = last_target.clone();
        let t_decisions = decisions.clone();
        let thread = std::thread::spawn(move || {
            let started = Instant::now();
            // The gauges the paper's "fine-grained metrics" argument is
            // about: the observed queue arrival rate λ_obs and the pool
            // size the policies currently demand.
            let lambda_gauge = obs::gauge("elastic.lambda_obs");
            let target_gauge = obs::gauge("elastic.pool_target");
            target_gauge.set(supervisor.target() as f64);
            loop {
                if t_stop.load(Ordering::Acquire) {
                    supervisor.stop();
                    return;
                }
                let stats = broker
                    .messaging()
                    .queue_stats(config.oid.as_str())
                    .unwrap_or_default();
                let rate = broker
                    .messaging()
                    .queue_arrival_rate(config.oid.as_str())
                    .ok();
                if let Some(observed) = rate {
                    lambda_gauge.set(observed);
                }
                let observation = Observation {
                    now: started.elapsed(),
                    total_arrivals: stats.published,
                    arrival_rate: rate,
                    queue_depth: stats.depth,
                    live: supervisor.observed().live,
                    target: supervisor.target(),
                    interarrival_variance: None,
                };
                if let Some(decision) = provisioner.propose(&observation) {
                    if decision.changed {
                        let n = decision.target;
                        supervisor.set_target(n);
                        t_target.store(n, Ordering::Release);
                        target_gauge.set(n as f64);
                        obs::log(
                            obs::Level::Info,
                            "elastic.controller",
                            &format!(
                                "pool target for `{}` set to {n} ({})",
                                config.oid, decision.policy
                            ),
                        );
                        t_decisions.lock().push((started.elapsed(), n));
                    }
                }
                std::thread::sleep(config.tick);
            }
        });

        Ok(ElasticController {
            stop,
            thread: Some(thread),
            last_target,
            decisions,
        })
    }

    /// The most recent target the policies proposed.
    pub fn last_target(&self) -> usize {
        self.last_target.load(Ordering::Acquire)
    }

    /// The decision log: (time since start, proposed target).
    pub fn decisions(&self) -> Vec<(Duration, usize)> {
        self.decisions.lock().clone()
    }

    /// Stops the loop (and the supervisor it owns).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ElasticController {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provision::{
        AutoScaler, GgOneModel, PredictiveProvisioner, ReactiveProvisioner, ScalingPolicy,
    };
    use crate::supervisor::{RemoteBroker, SupervisorConfig};
    use crate::RemoteObject;
    use wire::Value;

    struct Sleepy;
    impl RemoteObject for Sleepy {
        fn dispatch(&self, _m: &str, _a: &[Value]) -> Result<Value, String> {
            std::thread::sleep(Duration::from_millis(10));
            Ok(Value::Null)
        }
    }

    fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        cond()
    }

    #[test]
    fn controller_scales_live_pool_with_load() {
        // Short rate window so the post-burst decay (and hence the test)
        // is fast.
        let broker = Broker::new(
            mqsim::MessageBroker::new(),
            crate::BrokerConfig {
                rate_window: Duration::from_secs(4),
                ..crate::BrokerConfig::default()
            },
        );
        let node = RemoteBroker::start(broker.clone(), 1).unwrap();
        node.register_factory(
            "svc",
            Arc::new(|| Arc::new(Sleepy) as Arc<dyn RemoteObject>),
        );

        let supervisor = Supervisor::start(
            broker.clone(),
            SupervisorConfig {
                oid: "svc".into(),
                check_interval: Duration::from_millis(60),
                command_timeout: Duration::from_millis(800),
                ..Default::default()
            },
        )
        .unwrap();
        supervisor.set_target(1);
        assert!(wait_until(Duration::from_secs(5), || node
            .local_count("svc")
            == 1));

        // Model matched to the 10 ms service: with a 40 ms SLA, one
        // instance sustains ~25 req/s.
        let model = GgOneModel {
            target_response: 0.040,
            mean_service: 0.010,
            var_interarrival: 0.0001,
            var_service: 0.0001,
        };
        let predictive = PredictiveProvisioner::new(model.clone(), Duration::from_secs(900), 0.95);
        let reactive = ReactiveProvisioner::paper_defaults(model);
        let scaler = AutoScaler::new(predictive, reactive, ScalingPolicy::Reactive)
            .with_periods(Duration::from_secs(900), Duration::from_millis(200));

        let controller = ElasticController::start(
            broker.clone(),
            supervisor,
            scaler,
            ControllerConfig {
                oid: "svc".into(),
                tick: Duration::from_millis(50),
            },
        )
        .unwrap();

        // Offer ~100 req/s for a second: the controller must scale out.
        let proxy = broker.lookup("svc").unwrap();
        let burst_until = Instant::now() + Duration::from_millis(1200);
        while Instant::now() < burst_until {
            proxy.call_async("work", vec![]).unwrap();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            wait_until(Duration::from_secs(10), || node.local_count("svc") >= 2),
            "controller must grow the pool under load, got {}",
            node.local_count("svc")
        );
        assert!(controller.last_target() >= 2);
        assert!(!controller.decisions().is_empty());

        // Load stops: the rate estimator decays and the pool shrinks back.
        assert!(
            wait_until(Duration::from_secs(20), || node.local_count("svc") == 1),
            "controller must shrink the idle pool, got {}",
            node.local_count("svc")
        );
        controller.stop();
        node.stop();
    }

    #[test]
    fn controller_requires_existing_queue() {
        let broker = Broker::in_process();
        let node = RemoteBroker::start(broker.clone(), 1).unwrap();
        let supervisor = Supervisor::start(
            broker.clone(),
            SupervisorConfig {
                oid: "ghost".into(),
                check_interval: Duration::from_millis(100),
                command_timeout: Duration::from_millis(500),
                ..Default::default()
            },
        )
        .unwrap();
        let model = GgOneModel::paper_defaults();
        let scaler = AutoScaler::new(
            PredictiveProvisioner::new(model.clone(), Duration::from_secs(900), 0.95),
            ReactiveProvisioner::paper_defaults(model),
            ScalingPolicy::Both,
        );
        let result =
            ElasticController::start(broker, supervisor, scaler, ControllerConfig::paper("ghost"));
        assert!(matches!(result, Err(OmqError::UnknownObject(_))));
        node.stop();
    }
}
