//! # ObjectMQ — programmatic elasticity for distributed objects
//!
//! This crate is the Rust reproduction of the paper's primary contribution:
//! a lightweight framework that gives distributed objects *programmatic
//! elasticity* by using message queues as the communication middleware
//! (Garcia Lopez et al., *StackSync: Bringing Elasticity to Dropbox-like
//! File Synchronization*, Middleware 2014, §3).
//!
//! The building blocks mirror the paper:
//!
//! * [`Broker::bind`] binds a [`RemoteObject`] instance to a typed name
//!   ([`Oid`], convertible from `&str`/`String`, const-constructible via
//!   [`Oid::from_static`]).
//!   Internally a queue named `oid` is created; binding several instances to
//!   the same `oid` makes them *competing consumers* and the MOM layer
//!   load-balances calls between them — this is what lets the service scale
//!   out without touching client stubs.
//! * [`Broker::lookup`] returns a dynamic client stub ([`Proxy`]) — no stub
//!   compilation or preprocessing.
//! * Invocation primitives: [`Proxy::call_async`] (`@AsyncMethod`),
//!   [`Proxy::call_sync`] (`@SyncMethod` with timeout and retries), and
//!   [`Proxy::call_multi_async`] / [`Proxy::call_multi_sync`]
//!   (`@MultiMethod`) which fan out through a per-`oid` fanout exchange to
//!   every bound instance's private queue.
//! * Fault tolerance (§3.4): a request is acknowledged only after the server
//!   object finished processing it, so a crash mid-call redelivers the
//!   invocation to another instance; the [`Supervisor`] respawns missing
//!   instances every second through [`RemoteBroker`]s, and the remote
//!   brokers elect a replacement supervisor if it dies.
//! * Programmatic elasticity (§3.3, §4.3): the [`provision`] module has the
//!   `Provisioner` hook plus the paper's predictive and reactive policies
//!   built on a G/G/1 capacity model.
//!
//! ## Example
//!
//! ```
//! use objectmq::{Broker, RemoteObject, CallError};
//! use wire::Value;
//! use std::time::Duration;
//!
//! struct Hello;
//! impl RemoteObject for Hello {
//!     fn dispatch(&self, method: &str, args: &[Value]) -> Result<Value, String> {
//!         match method {
//!             "hello" => Ok(Value::from(format!("hello {}", args[0].as_str().unwrap()))),
//!             _ => Err(format!("no such method {method}")),
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let broker = Broker::in_process();
//! let _server = broker.bind("hello", Hello)?;
//! let proxy = broker.lookup("hello")?;
//! let reply = proxy.call_sync("hello", vec![Value::from("world")], Duration::from_secs(1), 3)?;
//! assert_eq!(reply.as_str().unwrap(), "hello world");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
pub mod controller;
mod error;
#[macro_use]
mod macros;
mod info;
mod oid;
pub mod provision;
mod proxy;
mod rpc;
mod server;
pub mod supervisor;

pub use broker::{Broker, BrokerConfig};
pub use controller::{ControllerConfig, ElasticController};
pub use error::{CallError, CallResult, OmqError, OmqResult};
pub use info::{ObjectInfo, PoolInfo, ServiceStats};
pub use oid::Oid;
pub use proxy::Proxy;
pub use rpc::{Request, Response};
pub use server::{RemoteObject, ServerHandle};
pub use supervisor::{PoolObservation, RemoteBroker, Supervisor, SupervisorConfig};

// Re-exported for the `remote_interface!` macro expansion.
pub use wire;
