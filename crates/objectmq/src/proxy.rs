//! Client side: dynamic stubs (proxies) and the invocation primitives.

use crate::error::{CallError, CallResult, OmqError};
use crate::rpc::{decode_response, fresh_id, Request, Response};
use mqsim::{Message, MessageConsumer, MessageProperties, Messaging, MqError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wire::{Codec, Value};

/// A dynamic client stub for a remote object bound to an `oid`.
///
/// The proxy owns a private response queue, mirroring Fig. 1 of the paper
/// ("every stub has its own queue to receive responses"). It is obtained
/// through [`crate::Broker::lookup`]; no stub compilation or preprocessing
/// is involved, and the stub never needs to know how many server instances
/// exist or where they run.
pub struct Proxy {
    mq: Arc<dyn Messaging>,
    codec: Arc<dyn Codec>,
    oid: String,
    multi_exchange: String,
    response_queue: String,
    response_consumer: Box<dyn MessageConsumer>,
    /// Responses that arrived while waiting for a different correlation id.
    pending: Mutex<HashMap<String, Response>>,
    obs: ProxyObs,
}

/// Observability handles shared by all proxies (global `omq.*` family),
/// resolved once per stub so invocation hot paths skip the registry.
struct ProxyObs {
    calls: Arc<obs::Counter>,
    retries: Arc<obs::Counter>,
    timeouts: Arc<obs::Counter>,
    call_latency: Arc<obs::Histogram>,
}

impl ProxyObs {
    fn new() -> Self {
        ProxyObs {
            calls: obs::counter("omq.calls_total"),
            retries: obs::counter("omq.call_retries_total"),
            timeouts: obs::counter("omq.call_timeouts_total"),
            call_latency: obs::histogram("omq.call_seconds"),
        }
    }
}

impl std::fmt::Debug for Proxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proxy")
            .field("oid", &self.oid)
            .field("response_queue", &self.response_queue)
            .finish()
    }
}

impl Proxy {
    pub(crate) fn new(
        mq: Arc<dyn Messaging>,
        codec: Arc<dyn Codec>,
        oid: String,
        multi_exchange: String,
        response_queue: String,
        response_consumer: Box<dyn MessageConsumer>,
    ) -> Self {
        Proxy {
            mq,
            codec,
            oid,
            multi_exchange,
            response_queue,
            response_consumer,
            pending: Mutex::new(HashMap::new()),
            obs: ProxyObs::new(),
        }
    }

    /// The object id this proxy talks to.
    pub fn oid(&self) -> &str {
        &self.oid
    }

    fn request_message(
        &self,
        request: &Request,
        expect_reply: bool,
        trace: Option<&obs::SpanContext>,
    ) -> Message {
        let payload = wire::encode_to_bytes(self.codec.as_ref(), &request.to_value());
        let props = MessageProperties {
            correlation_id: Some(request.id.clone()),
            reply_to: expect_reply.then(|| self.response_queue.clone()),
            content_type: Some(format!("omq/{}", self.codec.name())),
            persistent: true,
            trace: trace.map(obs::SpanContext::encode),
        };
        Message::with_properties(payload, props)
    }

    /// Opens the root span for one invocation, parented under the caller's
    /// thread-local context when inside an already-traced handler.
    fn invocation_span(&self, name: &'static str, method: &str) -> obs::Span {
        let mut span = match obs::current() {
            Some(parent) => obs::Span::start_child_of(name, &parent),
            None => obs::Span::start(name),
        };
        span.note(format!("oid:{}", self.oid));
        span.note(format!("method:{method}"));
        span
    }

    /// `@AsyncMethod`: fire-and-forget unicast invocation. The message is
    /// queued persistently; one idle server instance will process it. The
    /// client gets no confirmation (paper §3.2).
    ///
    /// # Errors
    ///
    /// Only middleware errors (e.g. the `oid` queue disappeared) are
    /// reported; remote failures are invisible by design.
    pub fn call_async(&self, method: &str, args: Vec<Value>) -> CallResult<()> {
        let request = Request {
            id: fresh_id(),
            method: method.to_string(),
            args,
        };
        self.obs.calls.inc();
        let root = self.invocation_span("omq.call_async", method);
        let message = self.request_message(&request, false, Some(&root.context()));
        let publish = root.child("proxy.publish");
        let published = self.mq.publish_to_queue(&self.oid, message);
        publish.finish();
        root.finish();
        published.map_err(CallError::from)
    }

    /// `@SyncMethod(retry, timeout)`: blocking unicast invocation. Publishes
    /// the request and waits for the correlated response on the proxy's
    /// private queue; on timeout the request is republished up to `retries`
    /// additional times.
    ///
    /// # Errors
    ///
    /// [`CallError::Timeout`] after all attempts, [`CallError::Remote`] if
    /// the server object returned an error.
    pub fn call_sync(
        &self,
        method: &str,
        args: Vec<Value>,
        timeout: Duration,
        retries: u32,
    ) -> CallResult<Value> {
        let request = Request {
            id: fresh_id(),
            method: method.to_string(),
            args,
        };
        self.obs.calls.inc();
        let root = self.invocation_span("omq.call_sync", method);
        let ctx = root.context();
        let started = Instant::now();
        let mut attempts = 0;
        let result = loop {
            attempts += 1;
            if attempts > 1 {
                self.obs.retries.inc();
            }
            let message = self.request_message(&request, true, Some(&ctx));
            let publish = obs::Span::start_child_of("proxy.publish", &ctx);
            let published = self.mq.publish_to_queue(&self.oid, message);
            publish.finish();
            if let Err(e) = published {
                break Err(CallError::from(e));
            }
            let wait = obs::Span::start_child_of("reply.wait", &ctx);
            let response = self.await_response(&request.id, timeout);
            wait.finish();
            match response {
                Some(response) => {
                    break response.outcome.map_err(CallError::Remote);
                }
                None if attempts > retries => {
                    self.obs.timeouts.inc();
                    break Err(CallError::Timeout { attempts });
                }
                None => continue,
            }
        };
        self.obs.call_latency.record(started.elapsed());
        root.finish();
        result
    }

    /// `@MultiMethod @AsyncMethod`: non-blocking one-to-many invocation.
    /// The request is published through the `oid` fanout exchange and every
    /// bound instance receives a copy in its private queue. Returns how many
    /// instances were reached.
    ///
    /// # Errors
    ///
    /// Middleware errors only (e.g. the fanout exchange is gone).
    pub fn call_multi_async(&self, method: &str, args: Vec<Value>) -> CallResult<usize> {
        let request = Request {
            id: fresh_id(),
            method: method.to_string(),
            args,
        };
        self.obs.calls.inc();
        let root = self.invocation_span("omq.call_multi_async", method);
        let message = self.request_message(&request, false, Some(&root.context()));
        let publish = root.child("proxy.publish");
        let published = self.mq.publish(&self.multi_exchange, "", message);
        publish.finish();
        root.finish();
        published.map_err(CallError::from)
    }

    /// `@MultiMethod @SyncMethod`: blocking one-to-many invocation that
    /// collects the replies received within `timeout`. Remote-side errors
    /// are returned as `Err` entries; the vector length is at most the
    /// number of instances reached.
    ///
    /// # Errors
    ///
    /// Middleware errors only; an empty pool yields an empty vector.
    pub fn call_multi_sync(
        &self,
        method: &str,
        args: Vec<Value>,
        timeout: Duration,
    ) -> CallResult<Vec<Result<Value, String>>> {
        let request = Request {
            id: fresh_id(),
            method: method.to_string(),
            args,
        };
        self.obs.calls.inc();
        let root = self.invocation_span("omq.call_multi_sync", method);
        let ctx = root.context();
        let message = self.request_message(&request, true, Some(&ctx));
        let publish = root.child("proxy.publish");
        let published = self.mq.publish(&self.multi_exchange, "", message);
        publish.finish();
        let expected = match published {
            Ok(n) => n,
            Err(e) => {
                root.finish();
                return Err(CallError::from(e));
            }
        };
        let mut results = Vec::with_capacity(expected);
        let deadline = Instant::now() + timeout;
        let wait = obs::Span::start_child_of("reply.wait", &ctx);
        while results.len() < expected {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.recv_correlated(&request.id, deadline - now) {
                Some(response) => results.push(response.outcome),
                None => break,
            }
        }
        wait.finish();
        root.finish();
        Ok(results)
    }

    /// Waits for a single response with the given correlation id.
    fn await_response(&self, id: &str, timeout: Duration) -> Option<Response> {
        if let Some(r) = self.pending.lock().remove(id) {
            return Some(r);
        }
        let deadline = Instant::now() + timeout;
        let now = Instant::now();
        if now >= deadline {
            return None;
        }
        self.recv_correlated(id, deadline - now)
    }

    /// Receives messages from the response queue until one matches `id` or
    /// the timeout elapses. Non-matching responses are stashed for their
    /// waiters (a proxy may be shared across threads).
    fn recv_correlated(&self, id: &str, timeout: Duration) -> Option<Response> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(r) = self.pending.lock().remove(id) {
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match self.response_consumer.recv_timeout(deadline - now) {
                Ok(delivery) => {
                    let decoded = decode_response(self.codec.as_ref(), delivery.message.payload());
                    delivery.ack();
                    if let Ok(response) = decoded {
                        if response.id == id {
                            return Some(response);
                        }
                        self.pending.lock().insert(response.id.clone(), response);
                    }
                    // Malformed responses are dropped.
                }
                Err(MqError::RecvTimeout) => return None,
                Err(_) => return None,
            }
        }
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        // The response queue is private to this stub; remove it like an
        // AMQP auto-delete queue.
        let _ = self.mq.delete_queue(&self.response_queue);
    }
}

/// Errors surfaced when creating a proxy.
pub(crate) fn unknown_object(oid: &str) -> OmqError {
    OmqError::UnknownObject(oid.to_string())
}

#[allow(dead_code)]
fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Proxy>();
}

#[cfg(test)]
mod tests {
    use crate::{Broker, CallError, RemoteObject};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;
    use wire::Value;

    const T: Duration = Duration::from_millis(500);

    struct Echo;
    impl RemoteObject for Echo {
        fn dispatch(&self, method: &str, args: &[Value]) -> Result<Value, String> {
            match method {
                "echo" => Ok(args.first().cloned().unwrap_or(Value::Null)),
                "fail" => Err("intentional".into()),
                other => Err(format!("unknown method {other}")),
            }
        }
    }

    #[test]
    fn response_wait_holds_deadline_under_unrelated_traffic() {
        use mqsim::{Message, MessageBroker, Messaging, QueueOptions};
        use std::sync::atomic::AtomicBool;
        use std::time::Instant;

        let mq: Arc<dyn Messaging> = Arc::new(MessageBroker::new());
        let codec: Arc<dyn wire::Codec> = Arc::new(wire::BinaryCodec);
        mq.declare_queue("resp", QueueOptions::default()).unwrap();
        let consumer = mq.subscribe("resp").unwrap();
        let proxy = super::Proxy::new(
            mq.clone(),
            codec.clone(),
            "oid".into(),
            "x".into(),
            "resp".into(),
            consumer,
        );

        // Flood the shared response queue with responses for *other*
        // callers. Each one wakes the waiter, which stashes it and must
        // re-arm with the remaining time — re-arming with the full timeout
        // would postpone the deadline forever under this traffic.
        let stop = Arc::new(AtomicBool::new(false));
        let noise_stop = stop.clone();
        let noise_mq = mq.clone();
        let noise_codec = codec.clone();
        let noise = std::thread::spawn(move || {
            let mut i = 0u64;
            while !noise_stop.load(Ordering::Acquire) {
                let response = crate::rpc::Response {
                    id: format!("other-{i}"),
                    outcome: Ok(Value::Null),
                };
                let payload = noise_codec.encode(&response.to_value());
                let _ = noise_mq.publish_to_queue("resp", Message::from_bytes(payload));
                i += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
        });

        let timeout = Duration::from_millis(300);
        let started = Instant::now();
        let got = proxy.await_response("wanted", timeout);
        let elapsed = started.elapsed();
        stop.store(true, Ordering::Release);
        noise.join().unwrap();

        assert!(got.is_none());
        assert!(elapsed >= timeout, "woke early after {elapsed:?}");
        assert!(
            elapsed < timeout * 3,
            "await_response drifted past its deadline: {elapsed:?}"
        );
    }

    #[test]
    fn sync_call_roundtrip() {
        let broker = Broker::in_process();
        let _server = broker.bind("echo", Echo).unwrap();
        let proxy = broker.lookup("echo").unwrap();
        let v = proxy
            .call_sync("echo", vec![Value::from(42i64)], T, 0)
            .unwrap();
        assert_eq!(v, Value::I64(42));
    }

    #[test]
    fn remote_error_propagates() {
        let broker = Broker::in_process();
        let _server = broker.bind("echo", Echo).unwrap();
        let proxy = broker.lookup("echo").unwrap();
        let err = proxy.call_sync("fail", vec![], T, 0).unwrap_err();
        assert_eq!(err, CallError::Remote("intentional".into()));
    }

    #[test]
    fn async_call_is_processed() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = counter.clone();
        let broker = Broker::in_process();
        let _server = broker
            .bind("count", move |_m: &str, _a: &[Value]| {
                c2.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Null)
            })
            .unwrap();
        let proxy = broker.lookup("count").unwrap();
        for _ in 0..5 {
            proxy.call_async("bump", vec![]).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while counter.load(Ordering::SeqCst) < 5 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn sync_call_times_out_without_server() {
        let broker = Broker::in_process();
        // Bind then shut the only instance down: queue exists, nobody serves.
        let server = broker.bind("ghost", Echo).unwrap();
        server.shutdown();
        let proxy = broker.lookup("ghost").unwrap();
        let err = proxy
            .call_sync("echo", vec![], Duration::from_millis(50), 2)
            .unwrap_err();
        assert_eq!(err, CallError::Timeout { attempts: 3 });
    }

    #[test]
    fn multi_sync_collects_all_instances() {
        let broker = Broker::in_process();
        let make = |tag: &'static str| {
            move |_m: &str, _a: &[Value]| -> Result<Value, String> { Ok(Value::from(tag)) }
        };
        let _s1 = broker.bind("grp", make("a")).unwrap();
        let _s2 = broker.bind("grp", make("b")).unwrap();
        let _s3 = broker.bind("grp", make("c")).unwrap();
        let proxy = broker.lookup("grp").unwrap();
        let results = proxy
            .call_multi_sync("who", vec![], Duration::from_secs(2))
            .unwrap();
        let mut tags: Vec<String> = results
            .into_iter()
            .map(|r| r.unwrap().as_str().unwrap().to_string())
            .collect();
        tags.sort();
        assert_eq!(tags, vec!["a", "b", "c"]);
    }

    #[test]
    fn multi_async_reaches_every_instance() {
        let counter = Arc::new(AtomicU64::new(0));
        let broker = Broker::in_process();
        let mut servers = Vec::new();
        for _ in 0..4 {
            let c = counter.clone();
            servers.push(
                broker
                    .bind("notify", move |_m: &str, _a: &[Value]| {
                        c.fetch_add(1, Ordering::SeqCst);
                        Ok(Value::Null)
                    })
                    .unwrap(),
            );
        }
        let proxy = broker.lookup("notify").unwrap();
        let reached = proxy.call_multi_async("ping", vec![]).unwrap();
        assert_eq!(reached, 4);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while counter.load(Ordering::SeqCst) < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn unicast_balances_across_instances() {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let broker = Broker::in_process();
        let mk = |c: Arc<AtomicU64>| {
            move |_m: &str, _a: &[Value]| -> Result<Value, String> {
                c.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                Ok(Value::Null)
            }
        };
        let _s1 = broker.bind("lb", mk(a.clone())).unwrap();
        let _s2 = broker.bind("lb", mk(b.clone())).unwrap();
        let proxy = broker.lookup("lb").unwrap();
        for _ in 0..20 {
            proxy
                .call_sync("work", vec![], Duration::from_secs(2), 0)
                .unwrap();
        }
        let (ca, cb) = (a.load(Ordering::SeqCst), b.load(Ordering::SeqCst));
        assert_eq!(ca + cb, 20);
        assert!(
            ca > 0 && cb > 0,
            "both instances must share load ({ca}/{cb})"
        );
    }

    #[test]
    fn crashed_instance_redelivers_inflight_call() {
        let broker = Broker::in_process();
        // First instance panics on the first call, then a healthy instance
        // picks up the redelivered message.
        let flaky = |_m: &str, _a: &[Value]| -> Result<Value, String> {
            panic!("simulated crash mid-operation");
        };
        let crashy = broker.bind("svc", flaky).unwrap();
        let proxy = broker.lookup("svc").unwrap();
        // Async call so we do not block: it will crash the instance.
        proxy.call_async("anything", vec![]).unwrap();
        // Give the flaky instance time to die.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while crashy.is_alive() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            !crashy.is_alive(),
            "panicking instance must self-report dead"
        );
        // Now bind a healthy instance; the unacked message must reach it.
        let healthy = broker
            .bind("svc", |_m: &str, _a: &[Value]| Ok(Value::from("done")))
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while healthy.stats().snapshot().processed == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            healthy.stats().snapshot().processed,
            1,
            "redelivered invocation must be processed exactly once by the healthy instance"
        );
    }
}
