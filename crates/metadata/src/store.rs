//! The DAO trait and the serializable in-memory implementation.

use crate::error::{MetadataError, MetadataResult};
use crate::model::{CommitOutcome, CommitResult, ItemMetadata, Workspace, WorkspaceId};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Duration;

/// The Data Access Object the SyncService talks through (paper §4.2.1:
/// "The SyncService interacts with the Metadata back-end using an
/// extensible Data Access Object").
///
/// Every read that can miss returns a [`MetadataResult`] with a typed
/// not-found error ([`MetadataError::UnknownWorkspace`] /
/// [`MetadataError::UnknownItem`]) rather than a bare `Option`, so store
/// implementations with internal routing (e.g. [`crate::ShardedStore`])
/// have a place to surface *why* a lookup failed.
pub trait MetadataStore: Send + Sync {
    /// Registers a user.
    ///
    /// # Errors
    ///
    /// [`MetadataError::UserExists`] when the name is taken.
    fn create_user(&self, user: &str) -> MetadataResult<()>;

    /// Creates a workspace owned by `user` and returns its id.
    ///
    /// # Errors
    ///
    /// [`MetadataError::UnknownUser`] when the owner does not exist.
    fn create_workspace(&self, user: &str, name: &str) -> MetadataResult<WorkspaceId>;

    /// Workspaces accessible to `user` — owned or shared with them (the
    /// `getWorkspaces` RPC).
    ///
    /// # Errors
    ///
    /// [`MetadataError::UnknownUser`] when the user does not exist.
    fn workspaces_of(&self, user: &str) -> MetadataResult<Vec<Workspace>>;

    /// Shares a workspace with another user, who then sees it in
    /// [`MetadataStore::workspaces_of`] and may commit to it. Idempotent.
    ///
    /// # Errors
    ///
    /// [`MetadataError::UnknownWorkspace`] / [`MetadataError::UnknownUser`].
    fn share_workspace(&self, workspace: &WorkspaceId, user: &str) -> MetadataResult<()>;

    /// Looks up one workspace record.
    ///
    /// # Errors
    ///
    /// [`MetadataError::UnknownWorkspace`].
    fn get_workspace(&self, workspace: &WorkspaceId) -> MetadataResult<Workspace>;

    /// Atomically applies a list of proposed changes (Algorithm 1). For
    /// each proposal: first version of a new item → committed; version ==
    /// current + 1 → committed; anything else → conflict carrying the
    /// current metadata. There is never a rollback: winners are decided by
    /// processing order.
    ///
    /// # Errors
    ///
    /// [`MetadataError::UnknownWorkspace`] or
    /// [`MetadataError::WrongWorkspace`]; per-item conflicts are *not*
    /// errors, they are [`CommitResult::Conflict`] outcomes.
    fn commit(
        &self,
        workspace: &WorkspaceId,
        proposals: Vec<ItemMetadata>,
    ) -> MetadataResult<Vec<CommitOutcome>>;

    /// Latest version of every item in a workspace (the `getChanges` RPC),
    /// tombstones included.
    ///
    /// # Errors
    ///
    /// [`MetadataError::UnknownWorkspace`].
    fn current_items(&self, workspace: &WorkspaceId) -> MetadataResult<Vec<ItemMetadata>>;

    /// Latest version of one item.
    ///
    /// # Errors
    ///
    /// [`MetadataError::UnknownItem`] when the item was never committed.
    fn get_current(&self, item_id: u64) -> MetadataResult<ItemMetadata>;

    /// Full version history of one item, oldest first.
    ///
    /// # Errors
    ///
    /// [`MetadataError::UnknownItem`] when the item was never committed.
    fn history(&self, item_id: u64) -> MetadataResult<Vec<ItemMetadata>>;
}

/// The item tables every store partition maintains: version chains plus the
/// per-workspace index. Shared between [`InMemoryStore`] (one global
/// partition) and [`crate::ShardedStore`] (one per shard), so Algorithm 1
/// is written exactly once.
#[derive(Debug, Default)]
pub(crate) struct ItemTables {
    /// item id -> all versions, oldest first.
    pub(crate) items: HashMap<u64, Vec<ItemMetadata>>,
    /// workspace -> item ids.
    pub(crate) by_workspace: HashMap<String, BTreeSet<u64>>,
}

impl ItemTables {
    /// Applies one proposal of a commit transaction — the per-item body of
    /// Algorithm 1. The caller has already verified the workspace exists
    /// (and, for a partitioned store, that the item is not pinned to a
    /// workspace living elsewhere).
    ///
    /// # Errors
    ///
    /// [`MetadataError::WrongWorkspace`] when the item's first version
    /// lives in a different workspace of this partition.
    pub(crate) fn apply_proposal(
        &mut self,
        workspace: &WorkspaceId,
        proposed: ItemMetadata,
    ) -> MetadataResult<CommitOutcome> {
        // An item is pinned to the workspace of its first version.
        if let Some(versions) = self.items.get(&proposed.item_id) {
            let owner_ws = &versions[0].workspace;
            if owner_ws != workspace {
                return Err(MetadataError::WrongWorkspace {
                    item: proposed.item_id,
                    belongs_to: owner_ws.0.clone(),
                });
            }
        }
        let current = self
            .items
            .get(&proposed.item_id)
            .and_then(|v| v.last())
            .cloned();
        let result = match current {
            None => {
                // First version of a new object.
                let mut stored = proposed.clone();
                stored.version = 1;
                stored.workspace = workspace.clone();
                self.items.insert(proposed.item_id, vec![stored]);
                self.by_workspace
                    .get_mut(&workspace.0)
                    .expect("workspace checked by caller")
                    .insert(proposed.item_id);
                CommitResult::Committed { version: 1 }
            }
            Some(cur)
                if proposed.version == cur.version
                    && proposed.chunks == cur.chunks
                    && proposed.modified_by == cur.modified_by
                    && proposed.is_deleted == cur.is_deleted =>
            {
                // At-least-once delivery: an instance that crashes after
                // applying a commit but before acking the queue message
                // leaves the request to be redelivered. The replay must
                // be confirmed, not reported as a conflict the committer
                // would wrongly "lose" to its own earlier commit.
                CommitResult::Committed {
                    version: cur.version,
                }
            }
            Some(cur) if proposed.version == cur.version + 1 => {
                let mut stored = proposed.clone();
                stored.workspace = workspace.clone();
                self.items
                    .get_mut(&proposed.item_id)
                    .expect("item present")
                    .push(stored);
                CommitResult::Committed {
                    version: proposed.version,
                }
            }
            Some(cur) => CommitResult::Conflict { current: cur },
        };
        Ok(CommitOutcome {
            item_id: proposed.item_id,
            result,
            proposed,
        })
    }

    /// Latest versions of every item of a workspace the caller verified.
    pub(crate) fn current_of(&self, workspace: &WorkspaceId) -> Option<Vec<ItemMetadata>> {
        let ids = self.by_workspace.get(&workspace.0)?;
        Some(
            ids.iter()
                .filter_map(|id| self.items.get(id).and_then(|v| v.last()).cloned())
                .collect(),
        )
    }
}

#[derive(Debug, Default)]
struct Inner {
    users: BTreeSet<String>,
    workspaces: BTreeMap<String, Workspace>,
    tables: ItemTables,
    next_workspace: u64,
}

/// Serializable in-memory metadata store.
///
/// One mutex serializes every transaction — the moral equivalent of
/// `SERIALIZABLE` isolation, and the strongest form of the ACID semantics
/// the paper leans on. Clones share state.
///
/// The optional *commit latency* models the transaction time of the ACID
/// back-end this store stands in for (the paper's PostgreSQL): it is spent
/// **while holding the store lock**, exactly as a relational back-end holds
/// its row locks across the transaction round trip. With the global mutex,
/// that latency serializes across every workspace — the bottleneck
/// [`crate::ShardedStore`] removes.
#[derive(Debug, Default)]
pub struct InMemoryStore {
    inner: Mutex<Inner>,
    commit_latency: Duration,
}

impl InMemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store whose commit transactions each take
    /// `latency`, held under the serialization lock (see the type docs).
    pub fn with_commit_latency(latency: Duration) -> Self {
        InMemoryStore {
            inner: Mutex::new(Inner::default()),
            commit_latency: latency,
        }
    }

    /// Dumps the full state for snapshotting: users, workspaces, and every
    /// item's version history (oldest first).
    pub(crate) fn dump(&self) -> (Vec<String>, Vec<Workspace>, Vec<Vec<ItemMetadata>>) {
        let inner = self.inner.lock();
        let users = inner.users.iter().cloned().collect();
        let workspaces = inner.workspaces.values().cloned().collect();
        let mut histories: Vec<Vec<ItemMetadata>> = inner.tables.items.values().cloned().collect();
        histories.sort_by_key(|v| v[0].item_id);
        (users, workspaces, histories)
    }

    /// Rebuilds a store from dumped state (inverse of
    /// [`InMemoryStore::dump`]). Workspace id allocation resumes past the
    /// highest restored id.
    pub(crate) fn from_dump(
        users: Vec<String>,
        workspaces: Vec<Workspace>,
        histories: Vec<Vec<ItemMetadata>>,
    ) -> InMemoryStore {
        let mut inner = Inner {
            users: users.into_iter().collect(),
            ..Inner::default()
        };
        for ws in workspaces {
            inner.next_workspace = inner.next_workspace.max(
                ws.id
                    .0
                    .strip_prefix("ws-")
                    .and_then(|n| n.parse::<u64>().ok())
                    .unwrap_or(0),
            );
            inner
                .tables
                .by_workspace
                .entry(ws.id.0.clone())
                .or_default();
            inner.workspaces.insert(ws.id.0.clone(), ws);
        }
        for versions in histories {
            if let Some(first) = versions.first() {
                inner
                    .tables
                    .by_workspace
                    .entry(first.workspace.0.clone())
                    .or_default()
                    .insert(first.item_id);
                inner.tables.items.insert(first.item_id, versions);
            }
        }
        InMemoryStore {
            inner: Mutex::new(inner),
            commit_latency: Duration::ZERO,
        }
    }
}

impl MetadataStore for InMemoryStore {
    fn create_user(&self, user: &str) -> MetadataResult<()> {
        let mut inner = self.inner.lock();
        if !inner.users.insert(user.to_string()) {
            return Err(MetadataError::UserExists(user.to_string()));
        }
        Ok(())
    }

    fn create_workspace(&self, user: &str, name: &str) -> MetadataResult<WorkspaceId> {
        let mut inner = self.inner.lock();
        if !inner.users.contains(user) {
            return Err(MetadataError::UnknownUser(user.to_string()));
        }
        inner.next_workspace += 1;
        let id = WorkspaceId(format!("ws-{}", inner.next_workspace));
        inner.workspaces.insert(
            id.0.clone(),
            Workspace {
                id: id.clone(),
                owner: user.to_string(),
                name: name.to_string(),
                members: Vec::new(),
            },
        );
        inner
            .tables
            .by_workspace
            .insert(id.0.clone(), BTreeSet::new());
        Ok(id)
    }

    fn workspaces_of(&self, user: &str) -> MetadataResult<Vec<Workspace>> {
        let inner = self.inner.lock();
        if !inner.users.contains(user) {
            return Err(MetadataError::UnknownUser(user.to_string()));
        }
        Ok(inner
            .workspaces
            .values()
            .filter(|w| w.owner == user || w.members.iter().any(|m| m == user))
            .cloned()
            .collect())
    }

    fn share_workspace(&self, workspace: &WorkspaceId, user: &str) -> MetadataResult<()> {
        let mut inner = self.inner.lock();
        if !inner.users.contains(user) {
            return Err(MetadataError::UnknownUser(user.to_string()));
        }
        let ws = inner
            .workspaces
            .get_mut(&workspace.0)
            .ok_or_else(|| MetadataError::UnknownWorkspace(workspace.0.clone()))?;
        if ws.owner != user && !ws.members.iter().any(|m| m == user) {
            ws.members.push(user.to_string());
        }
        Ok(())
    }

    fn get_workspace(&self, workspace: &WorkspaceId) -> MetadataResult<Workspace> {
        self.inner
            .lock()
            .workspaces
            .get(&workspace.0)
            .cloned()
            .ok_or_else(|| MetadataError::UnknownWorkspace(workspace.0.clone()))
    }

    fn commit(
        &self,
        workspace: &WorkspaceId,
        proposals: Vec<ItemMetadata>,
    ) -> MetadataResult<Vec<CommitOutcome>> {
        let lock_start = obs::now_ns();
        let mut inner = self.inner.lock();
        let lock_end = obs::now_ns();
        if !inner.workspaces.contains_key(&workspace.0) {
            return Err(MetadataError::UnknownWorkspace(workspace.0.clone()));
        }
        if !self.commit_latency.is_zero() {
            std::thread::sleep(self.commit_latency);
        }
        let mut outcomes = Vec::with_capacity(proposals.len());
        for proposed in proposals {
            outcomes.push(inner.tables.apply_proposal(workspace, proposed)?);
        }
        // Critical-path instrumentation: how long this commit waited on the
        // serialization lock vs. spent in the transaction proper.
        if let Some(parent) = obs::current() {
            let txn_end = obs::now_ns();
            obs::record_manual("meta.lock_wait", &parent, lock_start, lock_end);
            obs::record_manual("meta.txn", &parent, lock_end, txn_end);
        }
        Ok(outcomes)
    }

    fn current_items(&self, workspace: &WorkspaceId) -> MetadataResult<Vec<ItemMetadata>> {
        self.inner
            .lock()
            .tables
            .current_of(workspace)
            .ok_or_else(|| MetadataError::UnknownWorkspace(workspace.0.clone()))
    }

    fn get_current(&self, item_id: u64) -> MetadataResult<ItemMetadata> {
        self.inner
            .lock()
            .tables
            .items
            .get(&item_id)
            .and_then(|v| v.last())
            .cloned()
            .ok_or(MetadataError::UnknownItem(item_id))
    }

    fn history(&self, item_id: u64) -> MetadataResult<Vec<ItemMetadata>> {
        self.inner
            .lock()
            .tables
            .items
            .get(&item_id)
            .cloned()
            .ok_or(MetadataError::UnknownItem(item_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use content::ChunkId;
    use std::sync::Arc;

    fn setup() -> (InMemoryStore, WorkspaceId) {
        let s = InMemoryStore::new();
        s.create_user("alice").unwrap();
        let ws = s.create_workspace("alice", "Documents").unwrap();
        (s, ws)
    }

    fn file(id: u64, ws: &WorkspaceId, version: u64) -> ItemMetadata {
        ItemMetadata {
            version,
            ..ItemMetadata::new_file(id, ws, &format!("f{id}.txt"), vec![], 1, "dev")
        }
    }

    #[test]
    fn duplicate_user_rejected() {
        let s = InMemoryStore::new();
        s.create_user("u").unwrap();
        assert!(matches!(
            s.create_user("u"),
            Err(MetadataError::UserExists(_))
        ));
    }

    #[test]
    fn workspace_requires_user() {
        let s = InMemoryStore::new();
        assert!(matches!(
            s.create_workspace("ghost", "x"),
            Err(MetadataError::UnknownUser(_))
        ));
    }

    #[test]
    fn workspaces_of_lists_only_own() {
        let s = InMemoryStore::new();
        s.create_user("a").unwrap();
        s.create_user("b").unwrap();
        let wa = s.create_workspace("a", "A").unwrap();
        let _wb = s.create_workspace("b", "B").unwrap();
        let list = s.workspaces_of("a").unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].id, wa);
    }

    #[test]
    fn first_commit_creates_version_one() {
        let (s, ws) = setup();
        let outcomes = s.commit(&ws, vec![file(1, &ws, 1)]).unwrap();
        assert!(matches!(
            outcomes[0].result,
            CommitResult::Committed { version: 1 }
        ));
        assert_eq!(s.get_current(1).unwrap().version, 1);
    }

    #[test]
    fn sequential_versions_commit() {
        let (s, ws) = setup();
        s.commit(&ws, vec![file(1, &ws, 1)]).unwrap();
        let out = s.commit(&ws, vec![file(1, &ws, 2)]).unwrap();
        assert!(out[0].is_committed());
        assert_eq!(s.get_current(1).unwrap().version, 2);
        assert_eq!(s.history(1).unwrap().len(), 2);
    }

    #[test]
    fn stale_version_conflicts_and_carries_current() {
        let (s, ws) = setup();
        s.commit(&ws, vec![file(1, &ws, 1)]).unwrap();
        s.commit(&ws, vec![file(1, &ws, 2)]).unwrap();
        // A second client still at version 1 proposes its own version 2.
        let mut stale = file(1, &ws, 2);
        stale.modified_by = "other-dev".to_string();
        let out = s.commit(&ws, vec![stale]).unwrap();
        match &out[0].result {
            CommitResult::Conflict { current } => assert_eq!(current.version, 2),
            other => panic!("expected conflict, got {other:?}"),
        }
        // No rollback: current stays at version 2.
        assert_eq!(s.get_current(1).unwrap().version, 2);
    }

    #[test]
    fn replayed_commit_confirms_idempotently() {
        // At-least-once delivery (crash before ack, transport redelivery)
        // replays the exact same proposal; it must confirm, not conflict.
        let (s, ws) = setup();
        s.commit(&ws, vec![file(1, &ws, 1)]).unwrap();
        let out = s.commit(&ws, vec![file(1, &ws, 1)]).unwrap();
        assert!(matches!(
            out[0].result,
            CommitResult::Committed { version: 1 }
        ));
        // The replay is recognized, not stored as a second version.
        assert_eq!(s.history(1).unwrap().len(), 1);
    }

    #[test]
    fn skipping_versions_conflicts() {
        let (s, ws) = setup();
        s.commit(&ws, vec![file(1, &ws, 1)]).unwrap();
        let out = s.commit(&ws, vec![file(1, &ws, 5)]).unwrap();
        assert!(!out[0].is_committed());
    }

    #[test]
    fn mixed_batch_gets_per_item_outcomes() {
        let (s, ws) = setup();
        s.commit(&ws, vec![file(1, &ws, 1)]).unwrap();
        let out = s
            .commit(&ws, vec![file(1, &ws, 2), file(2, &ws, 1), file(1, &ws, 9)])
            .unwrap();
        assert!(out[0].is_committed());
        assert!(out[1].is_committed());
        assert!(
            !out[2].is_committed(),
            "stale proposal in same batch conflicts"
        );
    }

    #[test]
    fn tombstone_flow() {
        let (s, ws) = setup();
        s.commit(&ws, vec![file(1, &ws, 1)]).unwrap();
        let cur = s.get_current(1).unwrap();
        let out = s.commit(&ws, vec![cur.tombstone("dev")]).unwrap();
        assert!(out[0].is_committed());
        let current = s.get_current(1).unwrap();
        assert!(current.is_deleted);
        // Tombstones still appear in the workspace listing (clients need
        // them to delete local copies).
        let items = s.current_items(&ws).unwrap();
        assert_eq!(items.len(), 1);
        assert!(items[0].is_deleted);
    }

    #[test]
    fn unknown_workspace_errors() {
        let (s, _) = setup();
        let bogus = WorkspaceId::from("nope");
        assert!(matches!(
            s.commit(&bogus, vec![]),
            Err(MetadataError::UnknownWorkspace(_))
        ));
        assert!(matches!(
            s.current_items(&bogus),
            Err(MetadataError::UnknownWorkspace(_))
        ));
        assert!(matches!(
            s.get_workspace(&bogus),
            Err(MetadataError::UnknownWorkspace(_))
        ));
    }

    #[test]
    fn unknown_item_errors() {
        let (s, _) = setup();
        assert!(matches!(
            s.get_current(404),
            Err(MetadataError::UnknownItem(404))
        ));
        assert!(matches!(
            s.history(404),
            Err(MetadataError::UnknownItem(404))
        ));
    }

    #[test]
    fn items_are_pinned_to_their_workspace() {
        let s = InMemoryStore::new();
        s.create_user("alice").unwrap();
        let ws1 = s.create_workspace("alice", "A").unwrap();
        let ws2 = s.create_workspace("alice", "B").unwrap();
        s.commit(&ws1, vec![file(1, &ws1, 1)]).unwrap();
        assert!(matches!(
            s.commit(&ws2, vec![file(1, &ws2, 2)]),
            Err(MetadataError::WrongWorkspace { item: 1, .. })
        ));
    }

    #[test]
    fn concurrent_commits_have_exactly_one_winner() {
        let (s, ws) = setup();
        s.commit(&ws, vec![file(1, &ws, 1)]).unwrap();
        let s = Arc::new(s);
        // 8 devices race to commit version 2 of the same item — the paper's
        // conflict scenario. Exactly one must win.
        let mut handles = Vec::new();
        for d in 0..8 {
            let s = s.clone();
            let ws = ws.clone();
            handles.push(std::thread::spawn(move || {
                let proposal = ItemMetadata {
                    modified_by: format!("device-{d}"),
                    ..ItemMetadata {
                        version: 2,
                        ..ItemMetadata::new_file(1, &ws, "f1.txt", vec![], 1, "x")
                    }
                };
                s.commit(&ws, vec![proposal]).unwrap()[0].is_committed()
            }));
        }
        let wins: usize = handles
            .into_iter()
            .map(|h| h.join().unwrap() as usize)
            .sum();
        assert_eq!(wins, 1, "exactly one concurrent committer wins");
        assert_eq!(s.get_current(1).unwrap().version, 2);
    }

    #[test]
    fn chunks_are_stored_with_versions() {
        let (s, ws) = setup();
        let c1 = ChunkId::of(b"one");
        let c2 = ChunkId::of(b"two");
        let mut f = file(1, &ws, 1);
        f.chunks = vec![c1, c2];
        s.commit(&ws, vec![f]).unwrap();
        assert_eq!(s.get_current(1).unwrap().chunks, vec![c1, c2]);
    }

    #[test]
    fn commit_latency_is_spent_inside_the_transaction() {
        let s = InMemoryStore::with_commit_latency(Duration::from_millis(5));
        s.create_user("u").unwrap();
        let ws = s.create_workspace("u", "W").unwrap();
        let start = std::time::Instant::now();
        s.commit(&ws, vec![file(1, &ws, 1)]).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
        // Reads stay instant — only the write transaction pays.
        assert_eq!(s.get_current(1).unwrap().version, 1);
    }

    #[test]
    fn version_monotonicity_property() {
        // Drive a pseudo-random schedule of valid/stale commits and check
        // the history is strictly monotonically versioned.
        let (s, ws) = setup();
        s.commit(&ws, vec![file(1, &ws, 1)]).unwrap();
        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..200 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let cur = s.get_current(1).unwrap().version;
            let proposed = if state.is_multiple_of(3) {
                cur + 1
            } else {
                state % 7
            };
            let _ = s.commit(&ws, vec![file(1, &ws, proposed)]);
        }
        let history = s.history(1).unwrap();
        for (i, v) in history.iter().enumerate() {
            assert_eq!(v.version, i as u64 + 1, "history must be gapless");
        }
    }
}
