//! Metadata-tier errors.

use std::error::Error;
use std::fmt;

/// Result alias for metadata operations.
pub type MetadataResult<T> = Result<T, MetadataError>;

/// Errors from the metadata back-end.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MetadataError {
    /// The user does not exist.
    UnknownUser(String),
    /// The user already exists.
    UserExists(String),
    /// The workspace does not exist.
    UnknownWorkspace(String),
    /// The item was never committed.
    UnknownItem(u64),
    /// A commit proposed an item that belongs to a different workspace.
    WrongWorkspace {
        /// The item in question.
        item: u64,
        /// The workspace it actually belongs to.
        belongs_to: String,
    },
    /// The durable store could not persist the operation (WAL append or
    /// fsync failed, or the log is down). The operation was **not**
    /// acknowledged; the store refuses further writes until reopened.
    Durability(String),
}

impl fmt::Display for MetadataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetadataError::UnknownUser(u) => write!(f, "unknown user: {u}"),
            MetadataError::UserExists(u) => write!(f, "user already exists: {u}"),
            MetadataError::UnknownWorkspace(w) => write!(f, "unknown workspace: {w}"),
            MetadataError::UnknownItem(i) => write!(f, "unknown item: {i}"),
            MetadataError::WrongWorkspace { item, belongs_to } => {
                write!(f, "item {item} belongs to workspace {belongs_to}")
            }
            MetadataError::Durability(e) => write!(f, "durability failure: {e}"),
        }
    }
}

impl Error for MetadataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        for e in [
            MetadataError::UnknownUser("u".into()),
            MetadataError::UserExists("u".into()),
            MetadataError::UnknownWorkspace("w".into()),
            MetadataError::UnknownItem(9),
            MetadataError::WrongWorkspace {
                item: 3,
                belongs_to: "w".into(),
            },
            MetadataError::Durability("disk on fire".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
