//! # metadata — the Metadata back-end (PostgreSQL stand-in)
//!
//! StackSync keeps all file-sync metadata — workspaces, item versions,
//! chunk lists — in an ACID store, deliberately choosing a relational
//! database over an eventually-consistent KV store "to benefit from the
//! ACID semantics, and this way simplify the maintenance of consistency"
//! (paper §4). The SyncService talks to it through an extensible DAO so the
//! back-end can be replaced.
//!
//! This crate reproduces that tier as a serializable in-memory store:
//!
//! * [`MetadataStore`] is the DAO trait (the paper's extension hook);
//! * [`InMemoryStore`] implements it with one big serialization lock —
//!   every commit is atomic and totally ordered, which is exactly the
//!   property Algorithm 1 relies on to declare winners;
//! * [`ShardedStore`] implements the same DAO over N per-workspace
//!   partitions routed by `hash(workspace_id)`, so commits to different
//!   workspaces proceed in parallel while each workspace keeps the same
//!   totally-ordered transaction semantics (Algorithm 1 never crosses
//!   workspaces);
//! * [`ItemMetadata`]/[`CommitOutcome`] model versioned items and the
//!   commit results piggybacked in `CommitNotification`s.
//!
//! ## Example
//!
//! ```
//! use metadata::{InMemoryStore, MetadataStore, ItemMetadata, CommitResult};
//!
//! let store = InMemoryStore::new();
//! store.create_user("alice").unwrap();
//! let ws = store.create_workspace("alice", "Documents").unwrap();
//! let item = ItemMetadata::new_file(1, &ws, "report.txt", vec![], 0, "device-1");
//! let outcomes = store.commit(&ws, vec![item]).unwrap();
//! assert!(matches!(outcomes[0].result, CommitResult::Committed { version: 1 }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod durable;
mod error;
mod model;
mod shard;
mod snapshot;
mod store;

pub use durable::DurableRecovery;
pub use error::{MetadataError, MetadataResult};
pub use model::{CommitOutcome, CommitResult, ItemMetadata, Workspace, WorkspaceId};
pub use shard::ShardedStore;
pub use store::{InMemoryStore, MetadataStore};
