//! The durable commit plane: per-shard write-ahead logs under
//! [`ShardedStore`].
//!
//! A durable store ([`ShardedStore::open_durable`]) owns one [`wal::Log`]
//! per data shard plus one for the directory shard, laid out as
//!
//! ```text
//! <root>/snapshot.json      latest checkpoint (atomic temp-file + rename)
//! <root>/dir/wal-*.log      directory ops: users, workspaces, shares
//! <root>/shard-<i>/wal-*.log   commit records of partition i
//! ```
//!
//! **Write path.** Every mutating operation appends one record *inside* the
//! same critical section that mutates the in-memory state — so each log's
//! record order equals its shard's commit order — and waits for durability
//! *after* releasing the lock, so the fsync (group commit, [`wal::Log`])
//! never serializes other workspaces. Records carry a store-wide LSN drawn
//! from one atomic counter; because an operation's LSN is assigned before
//! its caller observes completion, any causally-later operation gets a
//! larger LSN, and sorting all logs' records by LSN yields a valid
//! serialization for replay.
//!
//! **Recovery.** Open loads the snapshot (if any), replays every log with
//! torn-tail tolerance, merges the records by LSN, and applies them through
//! idempotent appliers: a record already reflected in the snapshot confirms
//! against the stored chain instead of double-applying. A crash can only
//! lose a *suffix* of un-fsynced records per log — and those were never
//! acknowledged — so recovery always lands on exactly the state every
//! acknowledged operation saw: no lost acked commit, no double-commit,
//! gap-free version chains.
//!
//! **Checkpoint.** [`ShardedStore::checkpoint`] captures each log's
//! watermark under its shard lock, writes the snapshot atomically, then
//! truncates sealed segments below the watermarks. Records landing between
//! the per-shard captures replay idempotently over the snapshot.

use crate::error::{MetadataError, MetadataResult};
use crate::model::{CommitOutcome, ItemMetadata, Workspace, WorkspaceId};
use crate::shard::{route_workspace, Directory, Shard, ShardedStore};
use crate::snapshot::{item_from_value, item_to_value, parts_from_value, parts_to_value};
use crate::snapshot::{write_atomic, StoreParts};
use crate::store::ItemTables;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wire::{BinaryCodec, Codec, JsonCodec, Value, WireError, WireResult};

/// The WAL side of a durable [`ShardedStore`]: one log per shard, one for
/// the directory, and the store-wide LSN counter.
pub(crate) struct WalPlane {
    pub(crate) root: PathBuf,
    pub(crate) dir_log: wal::Log,
    pub(crate) shard_logs: Vec<wal::Log>,
    lsn: AtomicU64,
}

impl WalPlane {
    fn next_lsn(&self) -> u64 {
        self.lsn.fetch_add(1, Ordering::SeqCst)
    }

    pub(crate) fn status(&self) -> Result<(), String> {
        self.dir_log.status().map_err(|e| format!("dir log: {e}"))?;
        for (i, log) in self.shard_logs.iter().enumerate() {
            log.status().map_err(|e| format!("shard {i} log: {e}"))?;
        }
        Ok(())
    }
}

/// What [`ShardedStore::open_durable`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableRecovery {
    /// Whether a snapshot file was loaded as the replay base.
    pub snapshot_loaded: bool,
    /// WAL records replayed over the base (all logs combined).
    pub replayed: u64,
    /// Logs whose tail was torn (partial final write truncated away).
    pub torn_logs: u64,
}

fn wal_err(e: wal::WalError) -> MetadataError {
    MetadataError::Durability(e.to_string())
}

fn wal_io(e: wal::WalError) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

fn invalid(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

// ---------------------------------------------------------------------------
// Record encoding
// ---------------------------------------------------------------------------

/// One logged operation, the replay unit.
enum Op {
    User(String),
    Ws {
        id: String,
        owner: String,
        name: String,
    },
    Share {
        ws: String,
        user: String,
    },
    Commit {
        ws: WorkspaceId,
        items: Vec<ItemMetadata>,
    },
}

fn user_record(lsn: u64, user: &str) -> Value {
    Value::Map(vec![
        ("lsn".into(), Value::U64(lsn)),
        ("op".into(), Value::from("user")),
        ("user".into(), Value::Str(user.to_string())),
    ])
}

fn ws_record(lsn: u64, id: &str, owner: &str, name: &str) -> Value {
    Value::Map(vec![
        ("lsn".into(), Value::U64(lsn)),
        ("op".into(), Value::from("ws")),
        ("id".into(), Value::Str(id.to_string())),
        ("owner".into(), Value::Str(owner.to_string())),
        ("name".into(), Value::Str(name.to_string())),
    ])
}

fn share_record(lsn: u64, ws: &str, user: &str) -> Value {
    Value::Map(vec![
        ("lsn".into(), Value::U64(lsn)),
        ("op".into(), Value::from("share")),
        ("ws".into(), Value::Str(ws.to_string())),
        ("user".into(), Value::Str(user.to_string())),
    ])
}

fn commit_record(lsn: u64, ws: &WorkspaceId, items: Vec<Value>) -> Value {
    Value::Map(vec![
        ("lsn".into(), Value::U64(lsn)),
        ("op".into(), Value::from("commit")),
        ("ws".into(), Value::Str(ws.0.clone())),
        ("items".into(), Value::List(items)),
    ])
}

fn parse_record(bytes: &[u8]) -> WireResult<(u64, Op)> {
    let v = BinaryCodec.decode(bytes)?;
    let lsn = v.field("lsn")?.as_u64()?;
    let op = match v.field("op")?.as_str()? {
        "user" => Op::User(v.field("user")?.as_str()?.to_string()),
        "ws" => Op::Ws {
            id: v.field("id")?.as_str()?.to_string(),
            owner: v.field("owner")?.as_str()?.to_string(),
            name: v.field("name")?.as_str()?.to_string(),
        },
        "share" => Op::Share {
            ws: v.field("ws")?.as_str()?.to_string(),
            user: v.field("user")?.as_str()?.to_string(),
        },
        "commit" => Op::Commit {
            ws: WorkspaceId(v.field("ws")?.as_str()?.to_string()),
            items: v
                .field("items")?
                .as_list()?
                .iter()
                .map(item_from_value)
                .collect::<WireResult<Vec<ItemMetadata>>>()?,
        },
        other => {
            return Err(WireError::Invalid(format!(
                "unknown wal record op `{other}`"
            )))
        }
    };
    Ok((lsn, op))
}

// ---------------------------------------------------------------------------
// Write-path hooks (called from the MetadataStore impl in shard.rs)
// ---------------------------------------------------------------------------

/// Appends a directory-log record if the store is durable. Call while
/// holding the directory lock; [`wait`] on the ticket after releasing it.
pub(crate) fn append_dir(
    store: &ShardedStore,
    build: impl FnOnce(u64) -> Value,
) -> MetadataResult<Option<wal::Ticket>> {
    let Some(plane) = &store.wal else {
        return Ok(None);
    };
    let record = build(plane.next_lsn());
    plane
        .dir_log
        .append(&BinaryCodec.encode(&record))
        .map(Some)
        .map_err(wal_err)
}

/// Directory record builders, paired with [`append_dir`].
pub(crate) fn dir_user(user: &str) -> impl FnOnce(u64) -> Value + '_ {
    move |lsn| user_record(lsn, user)
}

pub(crate) fn dir_workspace<'a>(
    id: &'a WorkspaceId,
    owner: &'a str,
    name: &'a str,
) -> impl FnOnce(u64) -> Value + 'a {
    move |lsn| ws_record(lsn, &id.0, owner, name)
}

pub(crate) fn dir_share<'a>(ws: &'a WorkspaceId, user: &'a str) -> impl FnOnce(u64) -> Value + 'a {
    move |lsn| share_record(lsn, &ws.0, user)
}

/// Appends the commit record for the *stored* (winning) items of a commit.
/// Call while holding the shard lock so the log order matches the apply
/// order; [`wait`] after releasing it. Conflict-only commits log nothing.
pub(crate) fn append_commit(
    store: &ShardedStore,
    shard_index: usize,
    workspace: &WorkspaceId,
    outcomes: &[CommitOutcome],
) -> MetadataResult<Option<wal::Ticket>> {
    let Some(plane) = &store.wal else {
        return Ok(None);
    };
    let mut items = Vec::new();
    for outcome in outcomes {
        if let crate::model::CommitResult::Committed { version } = outcome.result {
            let mut stored = outcome.proposed.clone();
            stored.version = version;
            stored.workspace = workspace.clone();
            items.push(item_to_value(&stored));
        }
    }
    if items.is_empty() {
        return Ok(None);
    }
    let record = commit_record(plane.next_lsn(), workspace, items);
    plane.shard_logs[shard_index]
        .append(&BinaryCodec.encode(&record))
        .map(Some)
        .map_err(wal_err)
}

/// Blocks until a ticket from [`append_dir`]/[`append_commit`] is durable.
pub(crate) fn wait(ticket: Option<wal::Ticket>) -> MetadataResult<()> {
    match ticket {
        None => Ok(()),
        Some(t) => t.wait().map_err(wal_err),
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Applies one stored (post-Algorithm-1) item during replay. Idempotent:
/// versions at or below the chain head must *match* the chain (the record
/// was already covered by the snapshot or an earlier log); version head+1
/// extends the chain; anything else is a recovery invariant violation.
fn replay_item(
    tables: &mut ItemTables,
    ws: &WorkspaceId,
    item: ItemMetadata,
) -> Result<(), String> {
    match tables.items.get_mut(&item.item_id) {
        None => {
            if item.version != 1 {
                return Err(format!(
                    "replay: first record of item {} has version {}",
                    item.item_id, item.version
                ));
            }
            tables
                .by_workspace
                .entry(ws.0.clone())
                .or_default()
                .insert(item.item_id);
            tables.items.insert(item.item_id, vec![item]);
        }
        Some(chain) => {
            let head = chain.last().expect("chains are never empty").version;
            if item.version == head + 1 {
                chain.push(item);
            } else if item.version >= 1 && item.version <= head {
                let existing = &chain[(item.version - 1) as usize];
                if existing.modified_by != item.modified_by
                    || existing.chunks != item.chunks
                    || existing.is_deleted != item.is_deleted
                {
                    return Err(format!(
                        "replay: item {} version {} diverges from stored chain",
                        item.item_id, item.version
                    ));
                }
            } else {
                return Err(format!(
                    "replay: item {} jumps from version {head} to {}",
                    item.item_id, item.version
                ));
            }
        }
    }
    Ok(())
}

fn apply_op(
    directory: &mut Directory,
    tables: &mut [ItemTables],
    item_home: &mut HashMap<u64, WorkspaceId>,
    op: Op,
) -> Result<(), String> {
    let shards = tables.len();
    match op {
        Op::User(user) => {
            directory.users.insert(user);
        }
        Op::Ws { id, owner, name } => {
            if let Some(n) = id.strip_prefix("ws-").and_then(|n| n.parse::<u64>().ok()) {
                directory.next_workspace = directory.next_workspace.max(n);
            }
            tables[route_workspace(&id, shards)]
                .by_workspace
                .entry(id.clone())
                .or_default();
            directory.workspaces.entry(id.clone()).or_insert(Workspace {
                id: WorkspaceId(id),
                owner,
                name,
                members: Vec::new(),
            });
        }
        Op::Share { ws, user } => {
            let w = directory
                .workspaces
                .get_mut(&ws)
                .ok_or_else(|| format!("replay: share targets unknown workspace {ws}"))?;
            if w.owner != user && !w.members.iter().any(|m| m == &user) {
                w.members.push(user);
            }
        }
        Op::Commit { ws, items } => {
            let t = &mut tables[route_workspace(&ws.0, shards)];
            if !t.by_workspace.contains_key(&ws.0) {
                return Err(format!("replay: commit to unknown workspace {}", ws.0));
            }
            for item in items {
                item_home.entry(item.item_id).or_insert_with(|| ws.clone());
                replay_item(t, &ws, item)?;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Open / checkpoint / crash hooks
// ---------------------------------------------------------------------------

impl ShardedStore {
    /// Opens (or creates) a durable sharded store rooted at `root`:
    /// `shards` partitions, each commit WAL-logged before acknowledgement.
    /// Recovery replays the logs over the latest snapshot; see the module
    /// docs for the invariants.
    ///
    /// `template` supplies the WAL tuning (sync policy, group-commit
    /// interval/bytes, segment size); each log derives its name from it.
    ///
    /// # Errors
    ///
    /// Filesystem errors, or `InvalidData` when the snapshot or a log
    /// record fails to decode or violates a replay invariant.
    pub fn open_durable(
        root: impl AsRef<Path>,
        shards: usize,
        latency: Duration,
        template: wal::LogConfig,
    ) -> std::io::Result<(ShardedStore, DurableRecovery)> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        let n = shards.max(1);

        // Base state: the latest snapshot, if one exists.
        let snap_path = root.join("snapshot.json");
        let mut directory = Directory::default();
        let mut tables: Vec<ItemTables> = (0..n).map(|_| ItemTables::default()).collect();
        let mut item_home: HashMap<u64, WorkspaceId> = HashMap::new();
        let snapshot_loaded = snap_path.exists();
        if snapshot_loaded {
            let bytes = std::fs::read(&snap_path)?;
            let value = JsonCodec.decode(&bytes).map_err(invalid)?;
            let parts = parts_from_value(&value).map_err(invalid)?;
            for user in parts.users {
                directory.users.insert(user);
            }
            for ws in parts.workspaces {
                if let Some(num) = ws.id.0.strip_prefix("ws-").and_then(|s| s.parse().ok()) {
                    directory.next_workspace = directory.next_workspace.max(num);
                }
                tables[route_workspace(&ws.id.0, n)]
                    .by_workspace
                    .entry(ws.id.0.clone())
                    .or_default();
                directory.workspaces.insert(ws.id.0.clone(), ws);
            }
            for versions in parts.histories {
                let Some(first) = versions.first() else {
                    continue;
                };
                let ws = first.workspace.clone();
                let id = first.item_id;
                let t = &mut tables[route_workspace(&ws.0, n)];
                t.by_workspace.entry(ws.0.clone()).or_default().insert(id);
                t.items.insert(id, versions);
                item_home.insert(id, ws);
            }
        }

        // Open every log, collecting the replayed records.
        let cfg = |suffix: String| {
            let mut c = template.clone();
            c.name = format!("{}.{suffix}", template.name);
            c
        };
        let (dir_log, dir_rec) =
            wal::Log::open(&root.join("dir"), cfg("dir".to_string())).map_err(wal_io)?;
        let mut shard_logs = Vec::with_capacity(n);
        let mut recoveries = vec![dir_rec];
        for i in 0..n {
            let (log, rec) =
                wal::Log::open(&root.join(format!("shard-{i}")), cfg(format!("shard{i}")))
                    .map_err(wal_io)?;
            shard_logs.push(log);
            recoveries.push(rec);
        }

        // Merge by LSN and apply through the idempotent repliers.
        let mut ops: Vec<(u64, Op)> = Vec::new();
        let mut torn_logs = 0u64;
        for rec in &recoveries {
            if rec.torn.is_some() {
                torn_logs += 1;
            }
            for (_, payload) in &rec.records {
                ops.push(parse_record(payload).map_err(invalid)?);
            }
        }
        ops.sort_by_key(|(lsn, _)| *lsn);
        let replayed = ops.len() as u64;
        let max_lsn = ops.last().map(|(lsn, _)| *lsn);
        for (_, op) in ops {
            apply_op(&mut directory, &mut tables, &mut item_home, op).map_err(invalid)?;
        }

        let plane = Arc::new(WalPlane {
            root,
            dir_log,
            shard_logs,
            lsn: AtomicU64::new(max_lsn.map(|l| l + 1).unwrap_or(0)),
        });
        let weak = Arc::downgrade(&plane);
        let wal_health = obs::register_health("metadata.wal", move || match weak.upgrade() {
            Some(plane) => plane.status(),
            None => Err("wal plane dropped".to_string()),
        });

        obs::flight_event!(
            "metadata",
            "durable store opened: {replayed} record(s) replayed over {} ({torn_logs} torn log(s))",
            if snapshot_loaded {
                "snapshot"
            } else {
                "empty base"
            }
        );

        let store = ShardedStore::assemble(
            directory,
            item_home,
            tables
                .into_iter()
                .enumerate()
                .map(|(i, t)| Shard::with_tables(i, t))
                .collect(),
            latency,
            Some(plane),
            Some(wal_health),
        );
        Ok((
            store,
            DurableRecovery {
                snapshot_loaded,
                replayed,
                torn_logs,
            },
        ))
    }

    /// Whether this store persists through a WAL plane.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Serializes the full store state into the wire data model — the same
    /// `stacksync-metadata-v1` format as [`crate::InMemoryStore::snapshot`].
    pub fn snapshot(&self) -> Value {
        parts_to_value(&self.dump_parts())
    }

    fn dump_parts(&self) -> StoreParts {
        let (users, workspaces) = {
            let dir = self.directory.lock();
            (
                dir.users.iter().cloned().collect(),
                dir.workspaces.values().cloned().collect(),
            )
        };
        let mut histories: Vec<Vec<ItemMetadata>> = Vec::new();
        for shard in &self.shards {
            histories.extend(shard.tables.lock().items.values().cloned());
        }
        histories.sort_by_key(|v| v[0].item_id);
        StoreParts {
            users,
            workspaces,
            histories,
        }
    }

    /// Writes a snapshot (atomic temp-file + rename) and truncates every
    /// log's sealed segments below the watermark captured under its shard
    /// lock. Records appended between the captures replay idempotently over
    /// the snapshot, so the checkpoint is safe under concurrent commits.
    ///
    /// # Errors
    ///
    /// `Unsupported` on a non-durable store; filesystem or WAL errors.
    pub fn checkpoint(&self) -> std::io::Result<()> {
        let plane = self.wal.as_ref().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "checkpoint requires a store opened with open_durable",
            )
        })?;
        let (users, workspaces, dir_mark) = {
            let dir = self.directory.lock();
            (
                dir.users.iter().cloned().collect(),
                dir.workspaces.values().cloned().collect(),
                plane.dir_log.mark(),
            )
        };
        let mut histories: Vec<Vec<ItemMetadata>> = Vec::new();
        let mut marks = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let t = shard.tables.lock();
            histories.extend(t.items.values().cloned());
            marks.push(plane.shard_logs[i].mark());
        }
        histories.sort_by_key(|v| v[0].item_id);
        let parts = StoreParts {
            users,
            workspaces,
            histories,
        };
        write_atomic(
            &plane.root.join("snapshot.json"),
            &JsonCodec.encode(&parts_to_value(&parts)),
        )?;
        plane.dir_log.truncate_through(dir_mark).map_err(wal_io)?;
        for (log, mark) in plane.shard_logs.iter().zip(marks) {
            log.truncate_through(mark).map_err(wal_io)?;
        }
        obs::flight_event!(
            "metadata",
            "checkpoint written to {} (dir mark {dir_mark})",
            plane.root.display()
        );
        Ok(())
    }

    /// Fault-simulator hook: models process death by crashing every WAL
    /// (each keeps `surviving_pending_bytes` of its pending buffer as a
    /// torn tail). No-op on a non-durable store. After this, every write
    /// fails with [`MetadataError::Durability`]; reopen with
    /// [`ShardedStore::open_durable`] to recover.
    pub fn wal_simulate_crash(&self, surviving_pending_bytes: usize) {
        if let Some(plane) = &self.wal {
            plane.dir_log.simulate_crash(surviving_pending_bytes);
            for log in &plane.shard_logs {
                log.simulate_crash(surviving_pending_bytes);
            }
        }
    }

    /// The filesystem root of a durable store.
    pub fn durable_root(&self) -> Option<&Path> {
        self.wal.as_ref().map(|p| p.root.as_path())
    }
}

impl std::fmt::Debug for WalPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalPlane")
            .field("root", &self.root)
            .field("shards", &self.shard_logs.len())
            .finish_non_exhaustive()
    }
}
