//! Metadata model: workspaces, versioned items, commit outcomes.

use content::ChunkId;
use std::fmt;

/// Identifier of a workspace (a synced folder, paper §4.1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkspaceId(pub String);

impl fmt::Display for WorkspaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for WorkspaceId {
    fn from(s: &str) -> Self {
        WorkspaceId(s.to_string())
    }
}

/// A workspace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workspace {
    /// Unique workspace id.
    pub id: WorkspaceId,
    /// Owning user.
    pub owner: String,
    /// Human-readable name ("Documents").
    pub name: String,
    /// Users the workspace is shared with (owner excluded).
    pub members: Vec<String>,
}

/// One version of one item (file) — the `ObjectMetadata` of the paper's
/// SyncService interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemMetadata {
    /// Stable item identifier (survives renames and versions).
    pub item_id: u64,
    /// Workspace the item lives in.
    pub workspace: WorkspaceId,
    /// Path within the workspace.
    pub path: String,
    /// Version number; the first committed version is 1.
    pub version: u64,
    /// Ordered fingerprints of the item's chunks.
    pub chunks: Vec<ChunkId>,
    /// File size in bytes.
    pub size: u64,
    /// Tombstone flag for deletions.
    pub is_deleted: bool,
    /// Device that produced this version.
    pub modified_by: String,
}

impl ItemMetadata {
    /// Convenience constructor for a new (version-1 proposal) file.
    pub fn new_file(
        item_id: u64,
        workspace: &WorkspaceId,
        path: &str,
        chunks: Vec<ChunkId>,
        size: u64,
        device: &str,
    ) -> Self {
        ItemMetadata {
            item_id,
            workspace: workspace.clone(),
            path: path.to_string(),
            version: 1,
            chunks,
            size,
            is_deleted: false,
            modified_by: device.to_string(),
        }
    }

    /// Builds the next-version proposal derived from this version.
    pub fn next_version(&self, chunks: Vec<ChunkId>, size: u64, device: &str) -> Self {
        ItemMetadata {
            version: self.version + 1,
            chunks,
            size,
            is_deleted: false,
            modified_by: device.to_string(),
            ..self.clone()
        }
    }

    /// Builds a deletion tombstone as the next version.
    pub fn tombstone(&self, device: &str) -> Self {
        ItemMetadata {
            version: self.version + 1,
            chunks: Vec::new(),
            size: 0,
            is_deleted: true,
            modified_by: device.to_string(),
            ..self.clone()
        }
    }
}

/// Per-item result of a commit (Algorithm 1 lines 8, 12, 15).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitResult {
    /// The proposed version was persisted.
    Committed {
        /// The version that was stored.
        version: u64,
    },
    /// Version conflict: the current server-side metadata is piggybacked so
    /// the losing client can reconstruct the winning version.
    Conflict {
        /// The current (winning) version on the server.
        current: ItemMetadata,
    },
}

/// Outcome of one proposed change inside a commit request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitOutcome {
    /// The item the proposal was about.
    pub item_id: u64,
    /// What happened.
    pub result: CommitResult,
    /// The metadata as proposed (echoed for the notification).
    pub proposed: ItemMetadata,
}

impl CommitOutcome {
    /// Whether the proposal was accepted.
    pub fn is_committed(&self) -> bool {
        matches!(self.result, CommitResult::Committed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws() -> WorkspaceId {
        WorkspaceId::from("ws-1")
    }

    #[test]
    fn new_file_starts_at_version_one() {
        let m = ItemMetadata::new_file(7, &ws(), "a.txt", vec![], 10, "dev");
        assert_eq!(m.version, 1);
        assert!(!m.is_deleted);
    }

    #[test]
    fn next_version_increments_and_replaces_content() {
        let v1 = ItemMetadata::new_file(7, &ws(), "a.txt", vec![], 10, "dev");
        let id = ChunkId::of(b"chunk");
        let v2 = v1.next_version(vec![id], 99, "dev2");
        assert_eq!(v2.version, 2);
        assert_eq!(v2.chunks, vec![id]);
        assert_eq!(v2.size, 99);
        assert_eq!(v2.modified_by, "dev2");
        assert_eq!(v2.path, "a.txt");
    }

    #[test]
    fn tombstone_marks_deleted() {
        let v1 = ItemMetadata::new_file(7, &ws(), "a.txt", vec![ChunkId::of(b"x")], 10, "d");
        let t = v1.tombstone("d");
        assert!(t.is_deleted);
        assert_eq!(t.version, 2);
        assert!(t.chunks.is_empty());
    }

    #[test]
    fn outcome_predicates() {
        let m = ItemMetadata::new_file(1, &ws(), "p", vec![], 0, "d");
        let committed = CommitOutcome {
            item_id: 1,
            result: CommitResult::Committed { version: 1 },
            proposed: m.clone(),
        };
        let conflicted = CommitOutcome {
            item_id: 1,
            result: CommitResult::Conflict { current: m.clone() },
            proposed: m,
        };
        assert!(committed.is_committed());
        assert!(!conflicted.is_committed());
    }
}
