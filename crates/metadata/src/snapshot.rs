//! Snapshot/restore of the metadata store: the persistence story for the
//! metadata tier (the paper's PostgreSQL keeps this durable; the in-memory
//! stand-in serializes to the wire data model instead, so a deployment can
//! checkpoint to disk and restart).

use crate::error::MetadataResult;
use crate::model::{ItemMetadata, Workspace, WorkspaceId};
use crate::store::InMemoryStore;
use content::ChunkId;
use std::io::Write;
use wire::{Codec, JsonCodec, Value, WireError, WireResult};

pub(crate) fn item_to_value(item: &ItemMetadata) -> Value {
    Value::Map(vec![
        ("item".into(), Value::U64(item.item_id)),
        ("ws".into(), Value::Str(item.workspace.0.clone())),
        ("path".into(), Value::Str(item.path.clone())),
        ("version".into(), Value::U64(item.version)),
        (
            "chunks".into(),
            Value::List(
                item.chunks
                    .iter()
                    .map(|c| Value::Bytes(c.as_bytes().to_vec()))
                    .collect(),
            ),
        ),
        ("size".into(), Value::U64(item.size)),
        ("deleted".into(), Value::Bool(item.is_deleted)),
        ("device".into(), Value::Str(item.modified_by.clone())),
    ])
}

pub(crate) fn item_from_value(value: &Value) -> WireResult<ItemMetadata> {
    let chunks = value
        .field("chunks")?
        .as_list()?
        .iter()
        .map(|v| {
            let raw = v.as_bytes()?;
            let arr: [u8; 20] = raw
                .try_into()
                .map_err(|_| WireError::Invalid("chunk id must be 20 bytes".into()))?;
            Ok(ChunkId::from_bytes(arr))
        })
        .collect::<WireResult<Vec<ChunkId>>>()?;
    Ok(ItemMetadata {
        item_id: value.field("item")?.as_u64()?,
        workspace: WorkspaceId(value.field("ws")?.as_str()?.to_string()),
        path: value.field("path")?.as_str()?.to_string(),
        version: value.field("version")?.as_u64()?,
        chunks,
        size: value.field("size")?.as_u64()?,
        is_deleted: value.field("deleted")?.as_bool()?,
        modified_by: value.field("device")?.as_str()?.to_string(),
    })
}

/// Full serializable state of a metadata store — the common denominator of
/// [`InMemoryStore`] and [`crate::ShardedStore`], so both produce and load
/// the same `stacksync-metadata-v1` snapshot format.
pub(crate) struct StoreParts {
    pub(crate) users: Vec<String>,
    pub(crate) workspaces: Vec<Workspace>,
    /// Per-item version histories, oldest version first.
    pub(crate) histories: Vec<Vec<ItemMetadata>>,
}

pub(crate) fn parts_to_value(parts: &StoreParts) -> Value {
    Value::Map(vec![
        ("format".into(), Value::from("stacksync-metadata-v1")),
        (
            "users".into(),
            Value::List(parts.users.iter().cloned().map(Value::Str).collect()),
        ),
        (
            "workspaces".into(),
            Value::List(
                parts
                    .workspaces
                    .iter()
                    .map(|w| {
                        Value::Map(vec![
                            ("id".into(), Value::Str(w.id.0.clone())),
                            ("owner".into(), Value::Str(w.owner.clone())),
                            ("name".into(), Value::Str(w.name.clone())),
                            (
                                "members".into(),
                                Value::List(w.members.iter().cloned().map(Value::Str).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "items".into(),
            Value::List(
                parts
                    .histories
                    .iter()
                    .map(|versions| Value::List(versions.iter().map(item_to_value).collect()))
                    .collect(),
            ),
        ),
    ])
}

pub(crate) fn parts_from_value(value: &Value) -> WireResult<StoreParts> {
    let format = value.field("format")?.as_str()?;
    if format != "stacksync-metadata-v1" {
        return Err(WireError::Invalid(format!(
            "unsupported metadata snapshot format `{format}`"
        )));
    }
    let users = value
        .field("users")?
        .as_list()?
        .iter()
        .map(|v| Ok(v.as_str()?.to_string()))
        .collect::<WireResult<Vec<String>>>()?;
    let workspaces = value
        .field("workspaces")?
        .as_list()?
        .iter()
        .map(|v| {
            Ok(Workspace {
                id: WorkspaceId(v.field("id")?.as_str()?.to_string()),
                owner: v.field("owner")?.as_str()?.to_string(),
                name: v.field("name")?.as_str()?.to_string(),
                members: v
                    .field("members")?
                    .as_list()?
                    .iter()
                    .map(|m| Ok(m.as_str()?.to_string()))
                    .collect::<WireResult<Vec<String>>>()?,
            })
        })
        .collect::<WireResult<Vec<Workspace>>>()?;
    let histories = value
        .field("items")?
        .as_list()?
        .iter()
        .map(|versions| {
            versions
                .as_list()?
                .iter()
                .map(item_from_value)
                .collect::<WireResult<Vec<ItemMetadata>>>()
        })
        .collect::<WireResult<Vec<Vec<ItemMetadata>>>>()?;
    Ok(StoreParts {
        users,
        workspaces,
        histories,
    })
}

/// Crash-safe file write: the bytes land in a temp file in the target's
/// directory, are fsynced, and only then renamed over the destination — so
/// at every instant the destination is either the complete old content or
/// the complete new content, never a torn mix. (The rename is atomic on
/// POSIX filesystems; the directory fsync afterwards is best-effort, which
/// is all portability allows.)
pub(crate) fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = dir {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

impl InMemoryStore {
    /// Serializes the full store state (users, workspaces, every item
    /// version) into the wire data model.
    pub fn snapshot(&self) -> Value {
        let (users, workspaces, histories) = self.dump();
        parts_to_value(&StoreParts {
            users,
            workspaces,
            histories,
        })
    }

    /// Reconstructs a store from a snapshot.
    ///
    /// # Errors
    ///
    /// [`WireError`] when the value is not a v1 metadata snapshot.
    pub fn restore(value: &Value) -> WireResult<InMemoryStore> {
        let parts = parts_from_value(value)?;
        Ok(InMemoryStore::from_dump(
            parts.users,
            parts.workspaces,
            parts.histories,
        ))
    }

    /// Serializes the snapshot as JSON bytes.
    pub fn snapshot_json(&self) -> Vec<u8> {
        JsonCodec.encode(&self.snapshot())
    }

    /// Restores from JSON bytes.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed input.
    pub fn restore_json(bytes: &[u8]) -> WireResult<InMemoryStore> {
        Self::restore(&JsonCodec.decode(bytes)?)
    }

    /// Checkpoints the store to a file, atomically: the snapshot is written
    /// to a temp file, fsynced, and renamed into place, so a crash mid-write
    /// can never corrupt an existing checkpoint.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn checkpoint(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        write_atomic(path.as_ref(), &self.snapshot_json())
    }

    /// Loads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Filesystem errors, or `InvalidData` for malformed snapshots.
    pub fn load_checkpoint(path: impl AsRef<std::path::Path>) -> std::io::Result<InMemoryStore> {
        let bytes = std::fs::read(path)?;
        Self::restore_json(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Used by tests: a `MetadataResult` alias so the module compiles alone.
#[allow(dead_code)]
type _Compat = MetadataResult<()>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CommitResult;
    use crate::store::MetadataStore;

    fn populated() -> (InMemoryStore, WorkspaceId) {
        let s = InMemoryStore::new();
        s.create_user("alice").unwrap();
        s.create_user("bob").unwrap();
        let ws = s.create_workspace("alice", "Docs").unwrap();
        s.share_workspace(&ws, "bob").unwrap();
        let f1 = ItemMetadata::new_file(1, &ws, "a.txt", vec![ChunkId::of(b"x")], 3, "dev");
        s.commit(&ws, vec![f1.clone()]).unwrap();
        s.commit(
            &ws,
            vec![f1.next_version(vec![ChunkId::of(b"y")], 5, "dev2")],
        )
        .unwrap();
        let f2 = ItemMetadata::new_file(2, &ws, "b.txt", vec![], 0, "dev");
        s.commit(&ws, vec![f2.clone()]).unwrap();
        s.commit(&ws, vec![f2.tombstone("dev")]).unwrap();
        (s, ws)
    }

    #[test]
    fn snapshot_restore_preserves_everything() {
        let (original, ws) = populated();
        let restored = InMemoryStore::restore(&original.snapshot()).unwrap();

        // Users and workspaces (including sharing).
        let wss = restored.workspaces_of("bob").unwrap();
        assert_eq!(wss.len(), 1);
        assert_eq!(wss[0].members, vec!["bob".to_string()]);

        // Item state including tombstones and full histories.
        assert_eq!(restored.get_current(1).unwrap().version, 2);
        assert!(restored.get_current(2).unwrap().is_deleted);
        assert_eq!(restored.history(1).unwrap().len(), 2);
        assert_eq!(
            restored.current_items(&ws).unwrap(),
            original.current_items(&ws).unwrap()
        );

        // The restored store is fully operational: versions keep flowing.
        let cur = restored.get_current(1).unwrap();
        let out = restored
            .commit(&ws, vec![cur.next_version(vec![], 9, "dev3")])
            .unwrap();
        assert!(matches!(
            out[0].result,
            CommitResult::Committed { version: 3 }
        ));
    }

    #[test]
    fn json_checkpoint_roundtrip() {
        let (original, ws) = populated();
        let path =
            std::env::temp_dir().join(format!("stacksync-meta-ckpt-{}.json", std::process::id()));
        original.checkpoint(&path).unwrap();
        let restored = InMemoryStore::load_checkpoint(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            restored.current_items(&ws).unwrap(),
            original.current_items(&ws).unwrap()
        );
    }

    #[test]
    fn workspace_ids_continue_after_restore() {
        // New workspaces created after a restore must not collide with
        // pre-snapshot ids.
        let (original, ws) = populated();
        let restored = InMemoryStore::restore(&original.snapshot()).unwrap();
        let new_ws = restored.create_workspace("alice", "Photos").unwrap();
        assert_ne!(new_ws, ws, "restored id counter must not reuse ids");
    }

    #[test]
    fn bad_snapshots_rejected() {
        assert!(InMemoryStore::restore(&Value::Null).is_err());
        let wrong = Value::Map(vec![("format".into(), Value::from("nope"))]);
        assert!(InMemoryStore::restore(&wrong).is_err());
        assert!(InMemoryStore::restore_json(b"garbage").is_err());
    }

    #[test]
    fn corrupted_or_truncated_checkpoints_load_as_invalid_data() {
        let (original, _ws) = populated();
        let path = std::env::temp_dir().join(format!(
            "stacksync-meta-damaged-{}.json",
            std::process::id()
        ));
        original.checkpoint(&path).unwrap();
        let intact = std::fs::read(&path).unwrap();

        // Truncation at various depths: every prefix must be rejected as
        // InvalidData, never panic or load a partial store.
        for cut in [0, 1, intact.len() / 3, intact.len() - 1] {
            std::fs::write(&path, &intact[..cut]).unwrap();
            let err = InMemoryStore::load_checkpoint(&path).unwrap_err();
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::InvalidData,
                "truncation to {cut} bytes"
            );
        }

        // Structural corruption inside the document: break a separator (the
        // snapshot's strings contain no commas, so every `,` is structural).
        let mut corrupt = intact.clone();
        let comma = corrupt
            .iter()
            .position(|&b| b == b',')
            .expect("snapshot has structural commas");
        corrupt[comma] = b';';
        std::fs::write(&path, &corrupt).unwrap();
        assert!(InMemoryStore::load_checkpoint(&path).is_err());

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_replaces_existing_file_atomically() {
        // A second checkpoint over an existing file goes through the temp
        // file + rename path; the destination must hold the complete new
        // snapshot and the temp file must be gone.
        let (original, ws) = populated();
        let path = std::env::temp_dir().join(format!(
            "stacksync-meta-rewrite-{}.json",
            std::process::id()
        ));
        original.checkpoint(&path).unwrap();
        let cur = original.get_current(1).unwrap();
        original
            .commit(&ws, vec![cur.next_version(vec![], 2, "dev9")])
            .unwrap();
        original.checkpoint(&path).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file must be renamed away"
        );
        let restored = InMemoryStore::load_checkpoint(&path).unwrap();
        assert_eq!(restored.get_current(1).unwrap().version, 3);
        std::fs::remove_file(&path).ok();
    }
}
