//! The partitioned metadata store: per-workspace shards end the
//! global-mutex commit path.
//!
//! Algorithm 1 commits never cross workspaces — a commit transaction reads
//! and writes only the version chains of one workspace — so `workspace_id`
//! is a natural shard key. [`ShardedStore`] routes every commit to one of N
//! independent partitions by `hash(workspace_id)`; each partition has its
//! own lock and its own item tables, so commits to workspaces on different
//! shards proceed fully in parallel. The paper's elasticity argument
//! (§4.2.1) needs exactly this: the SyncService is stateless so that
//! "multiple instances can listen from the global request queue", but that
//! only buys throughput if the metadata tier behind the instances scales
//! too.
//!
//! Cross-shard state — the user registry and the workspace records that
//! `get_workspaces` / `share_workspace` touch — lives in a small,
//! separately-locked *directory* shard. Item → workspace pinning across
//! shards (the [`MetadataError::WrongWorkspace`] rule) is enforced through
//! a separately-locked `item_home` registry consulted only when a proposal
//! names an item its own shard has never seen.
//!
//! Lock order (each lock held briefly, never two shard locks at once):
//! `directory → shard → item_home`. Readers that start from an item id
//! (`get_current`/`history`) copy the home workspace out of `item_home`
//! and release it *before* taking the shard lock, so the order is acyclic.

use crate::error::{MetadataError, MetadataResult};
use crate::model::{CommitOutcome, ItemMetadata, Workspace, WorkspaceId};
use crate::store::{ItemTables, MetadataStore};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The partition index a workspace id routes to, as a free function so the
/// durable-recovery path can route before any [`ShardedStore`] exists.
/// FNV-1a over the id bytes: stable across runs (routing must be
/// deterministic for the faultsim replay guarantees) and cheap.
pub(crate) fn route_workspace(workspace: &str, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in workspace.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards.max(1) as u64) as usize
}

/// The directory shard: users, workspace records, id allocation. Every
/// operation on it is a point read/write; it is never held across a commit
/// transaction.
#[derive(Debug, Default)]
pub(crate) struct Directory {
    pub(crate) users: BTreeSet<String>,
    pub(crate) workspaces: BTreeMap<String, Workspace>,
    pub(crate) next_workspace: u64,
}

/// One data partition: its own lock, its own item-id tables, its own
/// `metadata.shard.*` instruments.
pub(crate) struct Shard {
    pub(crate) tables: Mutex<ItemTables>,
    commits: Arc<obs::Counter>,
    conflicts: Arc<obs::Counter>,
    lock_wait: Arc<obs::Histogram>,
}

impl Shard {
    fn new(index: usize) -> Self {
        Self::with_tables(index, ItemTables::default())
    }

    /// Builds a partition pre-seeded with recovered tables (the durable
    /// open path).
    pub(crate) fn with_tables(index: usize, tables: ItemTables) -> Self {
        Shard {
            tables: Mutex::new(tables),
            commits: obs::counter(&format!("metadata.shard.{index}.commits_total")),
            conflicts: obs::counter(&format!("metadata.shard.{index}.conflicts_total")),
            lock_wait: obs::histogram(&format!("metadata.shard.{index}.lock_wait_seconds")),
        }
    }

    /// Locks the partition, recording how long the commit path waited for
    /// it — the saturation signal of this shard.
    fn lock_timed(&self) -> parking_lot::MutexGuard<'_, ItemTables> {
        let start = Instant::now();
        let guard = self.tables.lock();
        self.lock_wait.record(start.elapsed());
        guard
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard").finish_non_exhaustive()
    }
}

/// Partitioned metadata store: N independent per-workspace partitions
/// behind the same [`MetadataStore`] DAO as [`crate::InMemoryStore`].
///
/// For any per-workspace history the outcomes are identical to the
/// global-mutex store (the per-item transaction body is literally the same
/// code); what changes is that transactions on different workspaces no
/// longer serialize against each other.
///
/// Like [`crate::InMemoryStore`], an optional commit latency models the
/// transaction time of the ACID back-end, held under the *partition* lock
/// — so it serializes commits within a workspace's shard but overlaps
/// across shards.
#[derive(Debug)]
pub struct ShardedStore {
    pub(crate) directory: Mutex<Directory>,
    /// item id -> owning workspace, for cross-shard pin checks and
    /// item-routed reads. Innermost lock.
    pub(crate) item_home: Mutex<HashMap<u64, WorkspaceId>>,
    pub(crate) shards: Vec<Shard>,
    commit_latency: Duration,
    /// Keeps the `metadata.sharded` health check registered while the
    /// store is alive; dropping the store deregisters it.
    _health: obs::HealthGuard,
    /// The durable commit plane ([`crate::durable`]); `None` for a purely
    /// in-memory store.
    pub(crate) wal: Option<Arc<crate::durable::WalPlane>>,
    /// Keeps the `metadata.wal` health check registered for durable stores.
    _wal_health: Option<obs::HealthGuard>,
}

impl Default for ShardedStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedStore {
    /// Creates a store with one partition per available CPU (at least 2 —
    /// a single partition would just be [`crate::InMemoryStore`] with
    /// extra steps).
    pub fn new() -> Self {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::with_shards(cpus.max(2))
    }

    /// Creates a store with exactly `shards` partitions (min 1).
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_and_latency(shards, Duration::ZERO)
    }

    /// Creates a store with `shards` partitions whose commit transactions
    /// each take `latency` under their partition lock (see the type docs).
    pub fn with_shards_and_latency(shards: usize, latency: Duration) -> Self {
        let n = shards.max(1);
        Self::assemble(
            Directory::default(),
            HashMap::new(),
            (0..n).map(Shard::new).collect(),
            latency,
            None,
            None,
        )
    }

    /// Assembles a store from pre-built state — the shared tail of the
    /// in-memory and durable ([`ShardedStore::open_durable`]) constructors.
    pub(crate) fn assemble(
        directory: Directory,
        item_home: HashMap<u64, WorkspaceId>,
        shards: Vec<Shard>,
        commit_latency: Duration,
        wal: Option<Arc<crate::durable::WalPlane>>,
        wal_health: Option<obs::HealthGuard>,
    ) -> Self {
        ShardedStore {
            directory: Mutex::new(directory),
            item_home: Mutex::new(item_home),
            shards,
            commit_latency,
            _health: obs::register_health("metadata.sharded", move || Ok(())),
            wal,
            _wal_health: wal_health,
        }
    }

    /// Number of partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partition index a workspace routes to.
    pub fn shard_of(&self, workspace: &WorkspaceId) -> usize {
        route_workspace(&workspace.0, self.shards.len())
    }

    fn shard(&self, workspace: &WorkspaceId) -> &Shard {
        &self.shards[self.shard_of(workspace)]
    }

    /// Enforces the cross-shard half of the item-pinning rule for a
    /// proposal whose item the local shard has never seen: either the item
    /// is globally new (and gets registered to `workspace`), or it already
    /// belongs elsewhere and the commit is rejected. Called with the shard
    /// lock held; `item_home` is the innermost lock.
    fn claim_item(&self, item_id: u64, workspace: &WorkspaceId) -> MetadataResult<()> {
        let mut home = self.item_home.lock();
        match home.get(&item_id) {
            Some(owner) if owner != workspace => Err(MetadataError::WrongWorkspace {
                item: item_id,
                belongs_to: owner.0.clone(),
            }),
            Some(_) => Ok(()),
            None => {
                home.insert(item_id, workspace.clone());
                Ok(())
            }
        }
    }
}

impl MetadataStore for ShardedStore {
    fn create_user(&self, user: &str) -> MetadataResult<()> {
        // WAL records are appended while the directory lock is held (so
        // the log order equals the apply order) but waited on after it is
        // released (so the fsync never serializes unrelated operations).
        let ticket = {
            let mut dir = self.directory.lock();
            if !dir.users.insert(user.to_string()) {
                return Err(MetadataError::UserExists(user.to_string()));
            }
            crate::durable::append_dir(self, crate::durable::dir_user(user))?
        };
        crate::durable::wait(ticket)
    }

    fn create_workspace(&self, user: &str, name: &str) -> MetadataResult<WorkspaceId> {
        let (id, ticket) = {
            let mut dir = self.directory.lock();
            if !dir.users.contains(user) {
                return Err(MetadataError::UnknownUser(user.to_string()));
            }
            dir.next_workspace += 1;
            let id = WorkspaceId(format!("ws-{}", dir.next_workspace));
            dir.workspaces.insert(
                id.0.clone(),
                Workspace {
                    id: id.clone(),
                    owner: user.to_string(),
                    name: name.to_string(),
                    members: Vec::new(),
                },
            );
            // Register the workspace in its home shard while still holding
            // the directory lock (order directory → shard), so a concurrent
            // `workspaces_of` can never see a workspace its shard rejects.
            self.shard(&id)
                .tables
                .lock()
                .by_workspace
                .insert(id.0.clone(), BTreeSet::new());
            let ticket =
                crate::durable::append_dir(self, crate::durable::dir_workspace(&id, user, name))?;
            (id, ticket)
        };
        crate::durable::wait(ticket)?;
        Ok(id)
    }

    fn workspaces_of(&self, user: &str) -> MetadataResult<Vec<Workspace>> {
        let dir = self.directory.lock();
        if !dir.users.contains(user) {
            return Err(MetadataError::UnknownUser(user.to_string()));
        }
        Ok(dir
            .workspaces
            .values()
            .filter(|w| w.owner == user || w.members.iter().any(|m| m == user))
            .cloned()
            .collect())
    }

    fn share_workspace(&self, workspace: &WorkspaceId, user: &str) -> MetadataResult<()> {
        let ticket = {
            let mut dir = self.directory.lock();
            if !dir.users.contains(user) {
                return Err(MetadataError::UnknownUser(user.to_string()));
            }
            let ws = dir
                .workspaces
                .get_mut(&workspace.0)
                .ok_or_else(|| MetadataError::UnknownWorkspace(workspace.0.clone()))?;
            if ws.owner != user && !ws.members.iter().any(|m| m == user) {
                ws.members.push(user.to_string());
            }
            crate::durable::append_dir(self, crate::durable::dir_share(workspace, user))?
        };
        crate::durable::wait(ticket)
    }

    fn get_workspace(&self, workspace: &WorkspaceId) -> MetadataResult<Workspace> {
        self.directory
            .lock()
            .workspaces
            .get(&workspace.0)
            .cloned()
            .ok_or_else(|| MetadataError::UnknownWorkspace(workspace.0.clone()))
    }

    fn commit(
        &self,
        workspace: &WorkspaceId,
        proposals: Vec<ItemMetadata>,
    ) -> MetadataResult<Vec<CommitOutcome>> {
        let shard_index = self.shard_of(workspace);
        let shard = &self.shards[shard_index];
        let lock_start = obs::now_ns();
        let mut tables = shard.lock_timed();
        let lock_end = obs::now_ns();
        if !tables.by_workspace.contains_key(&workspace.0) {
            return Err(MetadataError::UnknownWorkspace(workspace.0.clone()));
        }
        if !self.commit_latency.is_zero() {
            std::thread::sleep(self.commit_latency);
        }
        let mut outcomes = Vec::with_capacity(proposals.len());
        let mut conflicts = 0u64;
        let mut failure = None;
        for proposed in proposals {
            if !tables.items.contains_key(&proposed.item_id) {
                // Not on this shard: globally new, or pinned elsewhere.
                if let Err(e) = self.claim_item(proposed.item_id, workspace) {
                    failure = Some(e);
                    break;
                }
            }
            match tables.apply_proposal(workspace, proposed) {
                Ok(outcome) => {
                    if !outcome.is_committed() {
                        conflicts += 1;
                    }
                    outcomes.push(outcome);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // Log whatever was applied — even when a later proposal failed the
        // pin check — so the WAL always reflects the in-memory tables. The
        // record is appended under the shard lock (log order = apply order)
        // and waited on after release (fsync off the critical section).
        let ticket = crate::durable::append_commit(self, shard_index, workspace, &outcomes)?;
        if failure.is_none() {
            shard.commits.inc();
        }
        if conflicts > 0 {
            shard.conflicts.add(conflicts);
        }
        // Critical-path instrumentation: shard-lock wait vs. transaction
        // time, parented under the enclosing handler span when one exists.
        if let Some(parent) = obs::current() {
            let txn_end = obs::now_ns();
            obs::record_manual("meta.lock_wait", &parent, lock_start, lock_end);
            obs::record_manual("meta.txn", &parent, lock_end, txn_end);
        }
        drop(tables);
        crate::durable::wait(ticket)?;
        match failure {
            Some(e) => Err(e),
            None => Ok(outcomes),
        }
    }

    fn current_items(&self, workspace: &WorkspaceId) -> MetadataResult<Vec<ItemMetadata>> {
        self.shard(workspace)
            .tables
            .lock()
            .current_of(workspace)
            .ok_or_else(|| MetadataError::UnknownWorkspace(workspace.0.clone()))
    }

    fn get_current(&self, item_id: u64) -> MetadataResult<ItemMetadata> {
        // Copy the home out and release item_home before locking the
        // shard (commit holds shard → item_home; overlapping here would
        // invert that order).
        let home = self
            .item_home
            .lock()
            .get(&item_id)
            .cloned()
            .ok_or(MetadataError::UnknownItem(item_id))?;
        self.shard(&home)
            .tables
            .lock()
            .items
            .get(&item_id)
            .and_then(|v| v.last())
            .cloned()
            .ok_or(MetadataError::UnknownItem(item_id))
    }

    fn history(&self, item_id: u64) -> MetadataResult<Vec<ItemMetadata>> {
        let home = self
            .item_home
            .lock()
            .get(&item_id)
            .cloned()
            .ok_or(MetadataError::UnknownItem(item_id))?;
        self.shard(&home)
            .tables
            .lock()
            .items
            .get(&item_id)
            .cloned()
            .ok_or(MetadataError::UnknownItem(item_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CommitResult;
    use content::ChunkId;

    fn file(id: u64, ws: &WorkspaceId, version: u64) -> ItemMetadata {
        ItemMetadata {
            version,
            ..ItemMetadata::new_file(id, ws, &format!("f{id}.txt"), vec![], 1, "dev")
        }
    }

    fn setup(shards: usize) -> (ShardedStore, WorkspaceId) {
        let s = ShardedStore::with_shards(shards);
        s.create_user("alice").unwrap();
        let ws = s.create_workspace("alice", "Documents").unwrap();
        (s, ws)
    }

    #[test]
    fn basic_commit_flow_matches_global_store() {
        let (s, ws) = setup(4);
        let out = s.commit(&ws, vec![file(1, &ws, 1)]).unwrap();
        assert!(matches!(
            out[0].result,
            CommitResult::Committed { version: 1 }
        ));
        let out = s.commit(&ws, vec![file(1, &ws, 2)]).unwrap();
        assert!(out[0].is_committed());
        // Identical replay: idempotent confirm, not a conflict.
        let out = s.commit(&ws, vec![file(1, &ws, 2)]).unwrap();
        assert!(out[0].is_committed(), "identical replay confirms");
        // Same version from a different device: a real conflict.
        let rival = ItemMetadata {
            version: 2,
            ..ItemMetadata::new_file(1, &ws, "f1.txt", vec![ChunkId::of(b"z")], 1, "dev2")
        };
        let out = s.commit(&ws, vec![rival]).unwrap();
        assert!(
            !out[0].is_committed(),
            "independent same-version proposal conflicts"
        );
        assert_eq!(s.get_current(1).unwrap().version, 2);
        assert_eq!(s.history(1).unwrap().len(), 2);
        assert_eq!(s.current_items(&ws).unwrap().len(), 1);
    }

    #[test]
    fn many_workspaces_route_to_distinct_shards() {
        let s = ShardedStore::with_shards(8);
        s.create_user("u").unwrap();
        let mut used = BTreeSet::new();
        for i in 0..32 {
            let ws = s.create_workspace("u", &format!("w{i}")).unwrap();
            used.insert(s.shard_of(&ws));
        }
        assert!(
            used.len() >= 4,
            "32 workspaces over 8 shards must spread (got {} shards)",
            used.len()
        );
    }

    #[test]
    fn routing_is_deterministic() {
        let a = ShardedStore::with_shards(8);
        let b = ShardedStore::with_shards(8);
        for i in 0..50 {
            let ws = WorkspaceId(format!("ws-{i}"));
            assert_eq!(a.shard_of(&ws), b.shard_of(&ws));
        }
    }

    #[test]
    fn items_pinned_across_shards() {
        // The WrongWorkspace rule must hold even when the two workspaces
        // live on different shards — the cross-shard item_home check.
        let s = ShardedStore::with_shards(8);
        s.create_user("alice").unwrap();
        // Find two workspaces on different shards.
        let mut ws_by_shard: BTreeMap<usize, WorkspaceId> = BTreeMap::new();
        for i in 0..32 {
            let ws = s.create_workspace("alice", &format!("w{i}")).unwrap();
            ws_by_shard.entry(s.shard_of(&ws)).or_insert(ws);
            if ws_by_shard.len() >= 2 {
                break;
            }
        }
        let mut it = ws_by_shard.into_values();
        let (ws1, ws2) = (it.next().unwrap(), it.next().unwrap());
        s.commit(&ws1, vec![file(1, &ws1, 1)]).unwrap();
        assert!(matches!(
            s.commit(&ws2, vec![file(1, &ws2, 2)]),
            Err(MetadataError::WrongWorkspace { item: 1, .. })
        ));
        // The original chain is untouched and readable by item id.
        assert_eq!(s.get_current(1).unwrap().workspace, ws1);
    }

    #[test]
    fn directory_serves_users_and_sharing() {
        let s = ShardedStore::with_shards(4);
        s.create_user("a").unwrap();
        s.create_user("b").unwrap();
        assert!(matches!(
            s.create_user("a"),
            Err(MetadataError::UserExists(_))
        ));
        let ws = s.create_workspace("a", "A").unwrap();
        s.share_workspace(&ws, "b").unwrap();
        s.share_workspace(&ws, "b").unwrap(); // idempotent
        let list = s.workspaces_of("b").unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].members, vec!["b".to_string()]);
        assert_eq!(s.get_workspace(&ws).unwrap().owner, "a");
        assert!(matches!(
            s.workspaces_of("ghost"),
            Err(MetadataError::UnknownUser(_))
        ));
    }

    #[test]
    fn unknown_lookups_are_typed_errors() {
        let (s, _ws) = setup(4);
        let bogus = WorkspaceId::from("nope");
        assert!(matches!(
            s.commit(&bogus, vec![]),
            Err(MetadataError::UnknownWorkspace(_))
        ));
        assert!(matches!(
            s.current_items(&bogus),
            Err(MetadataError::UnknownWorkspace(_))
        ));
        assert!(matches!(
            s.get_workspace(&bogus),
            Err(MetadataError::UnknownWorkspace(_))
        ));
        assert!(matches!(
            s.get_current(404),
            Err(MetadataError::UnknownItem(404))
        ));
        assert!(matches!(
            s.history(404),
            Err(MetadataError::UnknownItem(404))
        ));
    }

    #[test]
    fn single_shard_degenerates_to_global_behavior() {
        let (s, ws) = setup(1);
        assert_eq!(s.shard_count(), 1);
        s.commit(&ws, vec![file(1, &ws, 1)]).unwrap();
        let cur = s.get_current(1).unwrap();
        let out = s.commit(&ws, vec![cur.tombstone("dev")]).unwrap();
        assert!(out[0].is_committed());
        assert!(s.current_items(&ws).unwrap()[0].is_deleted);
    }

    #[test]
    fn chunks_survive_routing() {
        let (s, ws) = setup(8);
        let c = ChunkId::of(b"payload");
        let mut f = file(1, &ws, 1);
        f.chunks = vec![c];
        s.commit(&ws, vec![f]).unwrap();
        assert_eq!(s.get_current(1).unwrap().chunks, vec![c]);
    }

    #[test]
    fn shard_metrics_are_recorded() {
        let (s, ws) = setup(2);
        s.commit(&ws, vec![file(1, &ws, 1)]).unwrap();
        // A genuinely conflicting proposal (different committer, same
        // version) on the same shard.
        let mut stale = file(1, &ws, 1);
        stale.modified_by = "other".to_string();
        s.commit(&ws, vec![stale]).unwrap();
        let idx = s.shard_of(&ws);
        assert!(obs::counter(&format!("metadata.shard.{idx}.commits_total")).value() >= 2);
        assert!(obs::counter(&format!("metadata.shard.{idx}.conflicts_total")).value() >= 1);
        assert!(
            obs::histogram(&format!("metadata.shard.{idx}.lock_wait_seconds")).count() >= 2,
            "lock-wait histogram must record each commit's acquisition"
        );
    }
}
