//! Crash-replay proof for the durable metadata plane: every acknowledged
//! operation survives process death (drop + reopen), un-fsynced tails are
//! lost *cleanly* (never a half-applied or double-applied commit), and
//! checkpoints compose with log replay idempotently.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use metadata::{ItemMetadata, MetadataError, MetadataStore, ShardedStore};
use wal::{LogConfig, SyncPolicy};
use wire::{Codec, JsonCodec};

fn temp_root(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("meta-durable-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Manual sync keeps the WAL single-threaded and deterministic: every
/// store operation flushes inline when it waits on its ticket.
fn manual_cfg() -> LogConfig {
    let mut cfg = LogConfig::named("meta-test");
    cfg.sync = SyncPolicy::Manual;
    cfg
}

fn open(root: &PathBuf, shards: usize) -> (ShardedStore, metadata::DurableRecovery) {
    ShardedStore::open_durable(root, shards, std::time::Duration::ZERO, manual_cfg()).unwrap()
}

fn snap_bytes(store: &ShardedStore) -> Vec<u8> {
    JsonCodec.encode(&store.snapshot())
}

#[test]
fn clean_restart_recovers_exact_state() {
    let root = temp_root("restart");
    let before = {
        let (store, rec) = open(&root, 4);
        assert!(!rec.snapshot_loaded);
        assert_eq!(rec.replayed, 0);
        assert!(store.is_durable());
        assert_eq!(store.durable_root(), Some(root.as_path()));

        store.create_user("alice").unwrap();
        store.create_user("bob").unwrap();
        let ws1 = store.create_workspace("alice", "Documents").unwrap();
        let ws2 = store.create_workspace("bob", "Photos").unwrap();
        store.share_workspace(&ws1, "bob").unwrap();

        let f = ItemMetadata::new_file(1, &ws1, "report.txt", vec![], 10, "dev-a");
        store.commit(&ws1, vec![f]).unwrap();
        let cur = store.get_current(1).unwrap();
        store
            .commit(&ws1, vec![cur.next_version(vec![], 20, "dev-a")])
            .unwrap();
        // A genuine conflict: committed nothing, must not disturb replay.
        let mut rival = store.get_current(1).unwrap();
        rival.modified_by = "dev-b".into();
        let out = store.commit(&ws1, vec![rival]).unwrap();
        assert!(!out[0].is_committed());
        store
            .commit(
                &ws2,
                vec![ItemMetadata::new_file(2, &ws2, "p.jpg", vec![], 5, "dev-b")],
            )
            .unwrap();

        snap_bytes(&store)
    };

    let (store, rec) = open(&root, 4);
    assert!(!rec.snapshot_loaded, "no checkpoint was written");
    assert!(rec.replayed >= 8, "users+workspaces+share+commits replayed");
    assert_eq!(rec.torn_logs, 0);
    assert_eq!(
        snap_bytes(&store),
        before,
        "recovered state is bit-identical"
    );
    // Version chains are exact: no lost acked commit, no double-commit.
    assert_eq!(store.get_current(1).unwrap().version, 2);
    assert_eq!(store.history(1).unwrap().len(), 2);
    assert_eq!(store.get_current(2).unwrap().version, 1);
    // The id allocator resumed past recovered workspaces.
    let ws3 = store.create_workspace("alice", "Music").unwrap();
    assert_eq!(ws3.0, "ws-3");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn checkpoint_composes_with_log_replay() {
    let root = temp_root("checkpoint");
    let before = {
        let (store, _) = open(&root, 2);
        store.create_user("alice").unwrap();
        let ws = store.create_workspace("alice", "Docs").unwrap();
        store
            .commit(
                &ws,
                vec![ItemMetadata::new_file(1, &ws, "a.txt", vec![], 1, "d")],
            )
            .unwrap();
        // Snapshot covers everything so far; the records still sitting in
        // the active segments must replay idempotently over it.
        store.checkpoint().unwrap();
        let cur = store.get_current(1).unwrap();
        store
            .commit(&ws, vec![cur.next_version(vec![], 2, "d")])
            .unwrap();
        snap_bytes(&store)
    };

    let (store, rec) = open(&root, 2);
    assert!(rec.snapshot_loaded);
    assert_eq!(snap_bytes(&store), before);
    assert_eq!(store.get_current(1).unwrap().version, 2);
    assert_eq!(
        store.history(1).unwrap().len(),
        2,
        "snapshot + replay never double-applies a commit"
    );

    // A second checkpoint + reopen cycle stays stable.
    store.checkpoint().unwrap();
    drop(store);
    let (store, rec) = open(&root, 2);
    assert!(rec.snapshot_loaded);
    assert_eq!(snap_bytes(&store), before);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_log_tail_loses_only_the_last_record() {
    let root = temp_root("torn");
    {
        let (store, _) = open(&root, 1);
        store.create_user("u").unwrap();
        let ws = store.create_workspace("u", "W").unwrap();
        store
            .commit(
                &ws,
                vec![ItemMetadata::new_file(1, &ws, "f", vec![], 1, "d")],
            )
            .unwrap();
        for _ in 0..4 {
            let cur = store.get_current(1).unwrap();
            store
                .commit(&ws, vec![cur.next_version(vec![], 1, "d")])
                .unwrap();
        }
        assert_eq!(store.get_current(1).unwrap().version, 5);
    }

    // Tear the tail of the shard log: the v5 commit record becomes a
    // partial write, as if the process died between write and fsync.
    let shard_dir = root.join("shard-0");
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&shard_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    segs.sort();
    let seg = segs.first().expect("shard log segment");
    let len = std::fs::metadata(seg).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(seg).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);

    let (store, rec) = open(&root, 1);
    assert!(rec.torn_logs >= 1, "damage must be reported");
    assert_eq!(
        store.get_current(1).unwrap().version,
        4,
        "exactly the torn record is lost, nothing before it"
    );
    // The store keeps working and re-lands the lost version.
    let cur = store.get_current(1).unwrap();
    store
        .commit(
            &metadata::WorkspaceId::from("ws-1"),
            vec![cur.next_version(vec![], 1, "d")],
        )
        .unwrap();
    assert_eq!(store.get_current(1).unwrap().version, 5);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn crashed_store_refuses_writes_until_reopened() {
    let root = temp_root("crashed");
    let (store, _) = open(&root, 2);
    store.create_user("u").unwrap();
    let ws = store.create_workspace("u", "W").unwrap();
    store
        .commit(
            &ws,
            vec![ItemMetadata::new_file(1, &ws, "f", vec![], 1, "d")],
        )
        .unwrap();

    store.wal_simulate_crash(usize::MAX);
    let cur = store.get_current(1).unwrap();
    let err = store
        .commit(&ws, vec![cur.next_version(vec![], 1, "d")])
        .unwrap_err();
    assert!(matches!(err, MetadataError::Durability(_)), "got {err:?}");
    assert!(matches!(
        store.create_user("v").unwrap_err(),
        MetadataError::Durability(_)
    ));
    drop(store);

    // Reopen recovers every acked operation and accepts writes again.
    let (store, _) = open(&root, 2);
    assert_eq!(store.get_current(1).unwrap().version, 1);
    let cur = store.get_current(1).unwrap();
    store
        .commit(&ws, vec![cur.next_version(vec![], 1, "d")])
        .unwrap();
    assert_eq!(store.get_current(1).unwrap().version, 2);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn non_durable_store_rejects_durable_only_calls() {
    let store = ShardedStore::with_shards(2);
    assert!(!store.is_durable());
    assert!(store.durable_root().is_none());
    let err = store.checkpoint().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    // And the crash hook is a harmless no-op.
    store.wal_simulate_crash(0);
    store.create_user("still-works").unwrap();
}
