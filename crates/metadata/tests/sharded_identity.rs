//! The sharding identity property: for any multi-workspace commit
//! interleaving, [`ShardedStore`] produces exactly the same
//! [`CommitOutcome`] sequence per workspace as the global-mutex
//! [`InMemoryStore`].
//!
//! This is what licenses swapping the store under a live SyncService pool:
//! partitioning changes *which commits can overlap in time*, never *what
//! any single commit decides*. The property replays one randomly generated
//! interleaved history — proposals hopping between several workspaces,
//! valid versions, stale versions, replays, tombstones, and
//! wrong-workspace pokes — through both stores in the same order and
//! demands identical outcomes, identical errors, identical final state.

use metadata::{
    CommitOutcome, CommitResult, InMemoryStore, ItemMetadata, MetadataError, MetadataStore,
    ShardedStore, WorkspaceId,
};
use proptest::prelude::*;

const WORKSPACES: u64 = 6;
const ITEMS_PER_WS: u64 = 4;

#[derive(Debug, Clone)]
struct Step {
    /// Which workspace the commit targets.
    ws: usize,
    /// Which of the workspace's item slots the proposal names. One slot in
    /// `WORKSPACES` deliberately aliases an item of another workspace to
    /// exercise the cross-shard WrongWorkspace path.
    slot: u64,
    version: u64,
    deleted: bool,
    device: u8,
}

fn arb_step() -> impl Strategy<Value = Step> {
    (
        0usize..WORKSPACES as usize,
        0u64..=ITEMS_PER_WS,
        1u64..6,
        any::<bool>(),
        0u8..3,
    )
        .prop_map(|(ws, slot, version, deleted, device)| Step {
            ws,
            slot,
            version,
            deleted,
            device,
        })
}

fn item_id(ws: usize, slot: u64) -> u64 {
    if slot == ITEMS_PER_WS {
        // Alias: point at the *next* workspace's slot 0 — a proposal for
        // an item pinned (or about to be pinned) to a different workspace.
        ((ws as u64 + 1) % WORKSPACES) * 100
    } else {
        ws as u64 * 100 + slot
    }
}

fn proposal(step: &Step, ws: &WorkspaceId) -> ItemMetadata {
    ItemMetadata {
        version: step.version,
        is_deleted: step.deleted,
        ..ItemMetadata::new_file(
            item_id(step.ws, step.slot),
            ws,
            &format!("f{}.txt", item_id(step.ws, step.slot)),
            vec![],
            1,
            &format!("dev-{}", step.device),
        )
    }
}

/// Outcome comparison key: everything a client can observe of a commit.
fn observed(result: Result<Vec<CommitOutcome>, MetadataError>) -> String {
    match result {
        Ok(outcomes) => outcomes
            .iter()
            .map(|o| match &o.result {
                CommitResult::Committed { version } => {
                    format!("item {} committed v{version};", o.item_id)
                }
                CommitResult::Conflict { current } => format!(
                    "item {} conflict cur v{} del {} by {};",
                    o.item_id, current.version, current.is_deleted, current.modified_by
                ),
            })
            .collect(),
        Err(e) => format!("error: {e}"),
    }
}

fn provision(store: &dyn MetadataStore) -> Vec<WorkspaceId> {
    store.create_user("u").unwrap();
    (0..WORKSPACES)
        .map(|i| store.create_workspace("u", &format!("w{i}")).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Replaying the same interleaved multi-workspace history through both
    /// stores yields identical per-commit outcomes and identical final
    /// per-workspace state.
    #[test]
    fn sharded_matches_global_outcome_for_outcome(
        steps in proptest::collection::vec(arb_step(), 1..120),
        shards in 1usize..9,
    ) {
        let global = InMemoryStore::new();
        let sharded = ShardedStore::with_shards(shards);
        let ws_g = provision(&global);
        let ws_s = provision(&sharded);
        // Both stores allocate ws-1..ws-N in order, so ids line up.
        prop_assert_eq!(&ws_g, &ws_s);

        for (i, step) in steps.iter().enumerate() {
            let g = observed(global.commit(&ws_g[step.ws], vec![proposal(step, &ws_g[step.ws])]));
            let s = observed(sharded.commit(&ws_s[step.ws], vec![proposal(step, &ws_s[step.ws])]));
            prop_assert_eq!(g, s, "divergence at step {} ({:?})", i, step);
        }

        // Final state: per-workspace listings and per-item chains agree.
        for ws in &ws_g {
            let mut g = global.current_items(ws).unwrap();
            let mut s = sharded.current_items(ws).unwrap();
            g.sort_by_key(|m| m.item_id);
            s.sort_by_key(|m| m.item_id);
            prop_assert_eq!(g, s, "workspace {} listing diverged", ws);
        }
        for ws in 0..WORKSPACES as usize {
            for slot in 0..ITEMS_PER_WS {
                let id = item_id(ws, slot);
                prop_assert_eq!(global.history(id).ok(), sharded.history(id).ok());
                prop_assert_eq!(global.get_current(id).ok(), sharded.get_current(id).ok());
            }
        }
    }

    /// Batches behave identically too: the same steps grouped into one
    /// commit per workspace-run keep the stores in lockstep.
    #[test]
    fn sharded_matches_global_on_batches(
        steps in proptest::collection::vec(arb_step(), 1..60),
        shards in 2usize..9,
    ) {
        let global = InMemoryStore::new();
        let sharded = ShardedStore::with_shards(shards);
        let ws_g = provision(&global);
        let ws_s = provision(&sharded);

        // Group consecutive steps targeting the same workspace into one
        // batch — the shape a SyncService commit_request produces.
        let mut batches: Vec<(usize, Vec<Step>)> = Vec::new();
        for step in steps {
            match batches.last_mut() {
                Some((ws, group)) if *ws == step.ws => group.push(step),
                _ => batches.push((step.ws, vec![step])),
            }
        }

        for (ws, group) in &batches {
            let g = observed(global.commit(
                &ws_g[*ws],
                group.iter().map(|p| proposal(p, &ws_g[*ws])).collect(),
            ));
            let s = observed(sharded.commit(
                &ws_s[*ws],
                group.iter().map(|p| proposal(p, &ws_s[*ws])).collect(),
            ));
            prop_assert_eq!(g, s, "batch for workspace {} diverged", ws);
        }
    }
}
