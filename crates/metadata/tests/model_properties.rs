//! Property tests of the metadata store against a simple oracle model:
//! commits are exactly "accept iff version == current + 1 (or first
//! version, or an identical replay of the current version)", histories
//! stay gapless, and the store agrees with the oracle under arbitrary
//! schedules.

use metadata::{CommitResult, InMemoryStore, ItemMetadata, MetadataStore, WorkspaceId};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Proposal {
    item: u64,
    version: u64,
    deleted: bool,
}

fn arb_proposal() -> impl Strategy<Value = Proposal> {
    (0u64..6, 1u64..8, any::<bool>()).prop_map(|(item, version, deleted)| Proposal {
        item,
        version,
        deleted,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn store_agrees_with_version_oracle(
        proposals in proptest::collection::vec(arb_proposal(), 1..80),
    ) {
        let store = InMemoryStore::new();
        store.create_user("u").unwrap();
        let ws = store.create_workspace("u", "w").unwrap();
        // Oracle: item -> (current version, deleted flag of that version).
        // All proposals here share chunks and device, so a same-version
        // proposal is an identical replay (accepted idempotently) exactly
        // when its deleted flag matches the stored one.
        let mut oracle: HashMap<u64, (u64, bool)> = HashMap::new();

        for p in &proposals {
            let meta = ItemMetadata {
                version: p.version,
                is_deleted: p.deleted,
                ..ItemMetadata::new_file(p.item, &ws, &format!("f{}", p.item), vec![], 1, "d")
            };
            let out = store.commit(&ws, vec![meta]).unwrap();
            let expected_accept = match oracle.get(&p.item) {
                None => true, // first version always accepted (stored as 1)
                Some((cur, cur_deleted)) => {
                    p.version == cur + 1 || (p.version == *cur && p.deleted == *cur_deleted)
                }
            };
            prop_assert_eq!(
                out[0].is_committed(),
                expected_accept,
                "item {} v{} against oracle {:?}",
                p.item,
                p.version,
                oracle.get(&p.item)
            );
            if expected_accept {
                let stored = match oracle.get(&p.item) {
                    None => (1, p.deleted),
                    // A replay leaves the store untouched.
                    Some(&(cur, cur_deleted)) if p.version == cur => (cur, cur_deleted),
                    Some(_) => (p.version, p.deleted),
                };
                oracle.insert(p.item, stored);
            } else if let CommitResult::Conflict { current } = &out[0].result {
                prop_assert_eq!(current.version, oracle.get(&p.item).unwrap().0);
            }
        }

        // Final agreement + gapless histories.
        for (item, (version, _)) in &oracle {
            let current = store.get_current(*item).unwrap();
            prop_assert_eq!(current.version, *version);
            let history = store.history(*item).unwrap();
            for (i, v) in history.iter().enumerate() {
                prop_assert_eq!(v.version, i as u64 + 1, "gapless history");
            }
        }
        // Everything the oracle knows is listed in the workspace.
        let listed = store.current_items(&ws).unwrap();
        prop_assert_eq!(listed.len(), oracle.len());
    }

    #[test]
    fn batch_commit_equals_sequential_commits(
        proposals in proptest::collection::vec(arb_proposal(), 1..40),
    ) {
        // Committing a batch must produce exactly the same outcomes as
        // committing its elements one by one (Algorithm 1 processes the
        // list in order with no rollback).
        let mk = |p: &Proposal, ws: &WorkspaceId| ItemMetadata {
            version: p.version,
            is_deleted: p.deleted,
            ..ItemMetadata::new_file(p.item, ws, &format!("f{}", p.item), vec![], 1, "d")
        };

        let batched = InMemoryStore::new();
        batched.create_user("u").unwrap();
        let ws_b = batched.create_workspace("u", "w").unwrap();
        let outcomes_batched = batched
            .commit(&ws_b, proposals.iter().map(|p| mk(p, &ws_b)).collect())
            .unwrap();

        let sequential = InMemoryStore::new();
        sequential.create_user("u").unwrap();
        let ws_s = sequential.create_workspace("u", "w").unwrap();
        let mut outcomes_sequential = Vec::new();
        for p in &proposals {
            outcomes_sequential.extend(sequential.commit(&ws_s, vec![mk(p, &ws_s)]).unwrap());
        }

        let accepts_a: Vec<bool> = outcomes_batched.iter().map(|o| o.is_committed()).collect();
        let accepts_b: Vec<bool> = outcomes_sequential.iter().map(|o| o.is_committed()).collect();
        prop_assert_eq!(accepts_a, accepts_b);
    }

    #[test]
    fn snapshot_restore_is_lossless(
        proposals in proptest::collection::vec(arb_proposal(), 1..40),
    ) {
        let store = InMemoryStore::new();
        store.create_user("u").unwrap();
        let ws = store.create_workspace("u", "w").unwrap();
        for p in &proposals {
            let meta = ItemMetadata {
                version: p.version,
                is_deleted: p.deleted,
                ..ItemMetadata::new_file(p.item, &ws, &format!("f{}", p.item), vec![], 1, "d")
            };
            let _ = store.commit(&ws, vec![meta]);
        }
        let restored = InMemoryStore::restore(&store.snapshot()).unwrap();
        prop_assert_eq!(
            restored.current_items(&ws).unwrap(),
            store.current_items(&ws).unwrap()
        );
        for item in 0u64..6 {
            prop_assert_eq!(restored.history(item).ok(), store.history(item).ok());
        }
    }
}
