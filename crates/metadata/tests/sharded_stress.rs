//! Threaded stress test of [`ShardedStore`]: 8 writer threads hammering 8
//! workspaces concurrently must still produce gap-free version chains —
//! the per-workspace total order Algorithm 1 needs survives partitioning.

use metadata::{CommitResult, ItemMetadata};
use metadata::{MetadataStore, ShardedStore};
use std::sync::Arc;

const WRITERS: usize = 8;
const ITEMS_PER_WRITER: u64 = 4;
const VERSIONS_PER_ITEM: u64 = 25;

#[test]
fn concurrent_writers_keep_gap_free_chains() {
    let store = Arc::new(ShardedStore::with_shards(8));
    store.create_user("u").unwrap();
    let workspaces: Vec<_> = (0..WRITERS)
        .map(|i| store.create_workspace("u", &format!("w{i}")).unwrap())
        .collect();

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            let ws = workspaces[w].clone();
            std::thread::spawn(move || {
                let mut committed = 0u64;
                for round in 0..VERSIONS_PER_ITEM {
                    for slot in 0..ITEMS_PER_WRITER {
                        let item_id = w as u64 * 1000 + slot;
                        let meta = ItemMetadata {
                            version: round + 1,
                            ..ItemMetadata::new_file(
                                item_id,
                                &ws,
                                &format!("f{slot}.txt"),
                                vec![],
                                1,
                                &format!("dev-{w}"),
                            )
                        };
                        let out = store.commit(&ws, vec![meta]).unwrap();
                        assert!(
                            matches!(out[0].result, CommitResult::Committed { .. }),
                            "writer {w} item {item_id} v{} rejected",
                            round + 1
                        );
                        committed += 1;
                    }
                }
                committed
            })
        })
        .collect();

    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, WRITERS as u64 * ITEMS_PER_WRITER * VERSIONS_PER_ITEM);

    // Every chain is gap-free 1..=VERSIONS_PER_ITEM and every item landed
    // in (only) its own workspace.
    for (w, workspace) in workspaces.iter().enumerate() {
        let listing = store.current_items(workspace).unwrap();
        assert_eq!(listing.len(), ITEMS_PER_WRITER as usize);
        for slot in 0..ITEMS_PER_WRITER {
            let item_id = w as u64 * 1000 + slot;
            let history = store.history(item_id).unwrap();
            assert_eq!(history.len(), VERSIONS_PER_ITEM as usize);
            for (i, v) in history.iter().enumerate() {
                assert_eq!(v.version, i as u64 + 1, "gap in item {item_id} chain");
                assert_eq!(&v.workspace, workspace);
            }
        }
    }
}

#[test]
fn contended_single_workspace_still_totally_ordered() {
    // The opposite shape: all writers race on ONE workspace and ONE item.
    // Exactly one writer may win each version; the chain must stay gapless.
    let store = Arc::new(ShardedStore::with_shards(8));
    store.create_user("u").unwrap();
    let ws = store.create_workspace("u", "hot").unwrap();

    let rounds = 40u64;
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            let ws = ws.clone();
            std::thread::spawn(move || {
                let mut wins = 0u64;
                for _ in 0..rounds {
                    // Read-modify-write against the current head, like a
                    // device proposing the next version it believes in.
                    let next = store.get_current(7).map(|m| m.version + 1).unwrap_or(1);
                    let meta = ItemMetadata {
                        version: next,
                        ..ItemMetadata::new_file(7, &ws, "hot.txt", vec![], 1, &format!("dev-{w}"))
                    };
                    let out = store.commit(&ws, vec![meta]).unwrap();
                    if out[0].is_committed() {
                        wins += 1;
                    }
                }
                wins
            })
        })
        .collect();

    let wins: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let history = store.history(7).unwrap();
    // Wins can overcount relative to distinct versions only via idempotent
    // replays (same device re-confirming); the chain itself must be exact.
    assert!(wins as usize >= history.len());
    for (i, v) in history.iter().enumerate() {
        assert_eq!(v.version, i as u64 + 1, "gap in contended chain");
    }
    assert!(!history.is_empty());
}
