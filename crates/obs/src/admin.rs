//! Live admin endpoint: a deliberately tiny blocking HTTP/1.0 listener,
//! hand-rolled over `TcpListener` so a running process can be scraped with
//! `curl` and nothing heavier. One short-lived connection per request,
//! `Connection: close`, request-line routing only.
//!
//! | path              | body                                                |
//! |-------------------|-----------------------------------------------------|
//! | `/metrics`        | Prometheus text exposition ([`crate::render_text`]) |
//! | `/healthz`        | JSON per-subsystem checks; 503 if any fails         |
//! | `/spans`          | span ring buffer, JSON lines with meta header       |
//! | `/snapshot`       | monotonic counter/histogram snapshot with seq       |
//! | `/flightrecorder` | flight-recorder events, JSON lines                  |

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a single request may take to arrive before the connection is
/// abandoned — keeps one stalled scraper from wedging the accept thread.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(2);

/// A running admin endpoint. Dropping it stops the listener.
#[derive(Debug)]
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// Binds the admin endpoint and serves it from a background thread. Bind to
/// port 0 to let the OS pick; read it back via [`AdminServer::local_addr`].
///
/// # Errors
///
/// Propagates socket errors from bind.
pub fn serve_admin(addr: impl ToSocketAddrs) -> std::io::Result<AdminServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = stop.clone();
    let thread = std::thread::Builder::new()
        .name("obs-admin".into())
        .spawn(move || accept_loop(&listener, &thread_stop))?;
    Ok(AdminServer {
        addr,
        stop,
        thread: Some(thread),
    })
}

impl AdminServer {
    /// The address the endpoint listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_now();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    fn stop_now(&self) {
        self.stop.store(true, Ordering::Release);
        // Unblock `accept` by dialling ourselves.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Served inline: every response is generated from in-memory state,
        // so the only thing that can stall is the peer — bounded above.
        let _ = serve_one(stream);
    }
}

fn serve_one(stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(REQUEST_TIMEOUT))?;
    stream.set_write_timeout(Some(REQUEST_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "only GET is served\n".to_string(),
        )
    } else {
        match path.split('?').next().unwrap_or("") {
            "/metrics" => ("200 OK", "text/plain; version=0.0.4", crate::render_text()),
            "/healthz" => {
                let report = crate::health_report();
                let all_ok = report.iter().all(|c| c.result.is_ok());
                let status = if all_ok {
                    "200 OK"
                } else {
                    "503 Service Unavailable"
                };
                (status, "application/json", healthz_json(&report))
            }
            "/spans" => (
                "200 OK",
                "application/json",
                crate::spans_json_with_meta(&crate::process_label()),
            ),
            "/snapshot" => ("200 OK", "application/json", crate::snapshot_json()),
            "/flightrecorder" => ("200 OK", "application/json", crate::flight::to_json()),
            _ => (
                "404 Not Found",
                "text/plain",
                "unknown path; try /metrics /healthz /spans /snapshot /flightrecorder\n"
                    .to_string(),
            ),
        }
    };

    let mut out = stream;
    write!(
        out,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    out.write_all(body.as_bytes())?;
    out.flush()
}

fn healthz_json(report: &[crate::HealthCheck]) -> String {
    use std::fmt::Write;
    let all_ok = report.iter().all(|c| c.result.is_ok());
    let mut out = format!(
        "{{\"status\":\"{}\",\"checks\":[",
        if all_ok { "ok" } else { "fail" }
    );
    for (i, check) in report.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match &check.result {
            Ok(()) => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ok\":true}}",
                    crate::export::json_escape(&check.name)
                );
            }
            Err(reason) => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ok\":false,\"error\":\"{}\"}}",
                    crate::export::json_escape(&check.name),
                    crate::export::json_escape(reason)
                );
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_all_endpoints() {
        crate::counter("admin.test_requests_total").inc();
        crate::histogram("admin.test_seconds").record_secs(0.001);
        let server = serve_admin("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200 OK"));
        assert!(metrics.contains("# TYPE admin_test_requests_total counter"));
        assert!(metrics.contains("Content-Type: text/plain"));

        let spans = get(addr, "/spans");
        assert!(spans.starts_with("HTTP/1.0 200 OK"));
        assert!(spans.contains("\"meta\":{\"process\":"));

        let snapshot = get(addr, "/snapshot");
        assert!(snapshot.starts_with("HTTP/1.0 200 OK"));
        assert!(snapshot.contains("\"seq\":"));
        assert!(snapshot.contains("\"admin.test_seconds\":{\"count\":"));

        crate::flight::record("admin.test", "endpoint probe");
        let flight = get(addr, "/flightrecorder");
        assert!(flight.starts_with("HTTP/1.0 200 OK"));
        assert!(flight.contains("endpoint probe"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));
        let post = {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            response
        };
        assert!(post.starts_with("HTTP/1.0 405"));

        server.shutdown();
    }

    #[test]
    fn healthz_reflects_registered_checks() {
        let server = serve_admin("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let healthy = register_for_test("admin.test_healthy", Ok(()));
        let response = get(addr, "/healthz");
        assert!(response.contains("\"name\":\"admin.test_healthy\",\"ok\":true"));

        let failing = register_for_test("admin.test_failing", Err("degraded".into()));
        let response = get(addr, "/healthz");
        assert!(response.starts_with("HTTP/1.0 503"));
        assert!(response.contains("\"status\":\"fail\""));
        assert!(response.contains("\"error\":\"degraded\""));

        drop(failing);
        drop(healthy);
        server.shutdown();
    }

    fn register_for_test(name: &str, result: Result<(), String>) -> crate::HealthGuard {
        crate::register_health(name, move || result.clone())
    }
}
