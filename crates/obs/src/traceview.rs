//! Offline trace assembly: merges per-process span dumps into fleet-wide
//! traces, exports Chrome trace-event JSON (loadable in `chrome://tracing`
//! or Perfetto), and computes the commit critical path — where each
//! millisecond of one `commit_request` RPC went.
//!
//! Input is the [`crate::spans_json_with_meta`] format: a meta header line
//! anchoring the process's monotonic span clock to unix time (plus the net
//! handshake's clock-skew estimate), then one span per line. Alignment adds
//! `epoch_unix_ns + skew_ns` to every timestamp, which places all processes
//! on the broker server's timeline; the critical-path decomposition then
//! telescopes — its six segments partition the root span exactly, so they
//! sum to the end-to-end latency by construction (modulo clamping of
//! skew-inverted boundaries to zero).

use crate::FinishedSpan;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (std-only; integers kept exact)
// ---------------------------------------------------------------------------

/// A parsed JSON value. Integers are held exactly (span timestamps exceed
/// `f64`'s 53-bit mantissa), everything else is the usual tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number written without fraction or exponent.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// A human-readable description with a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing garbage at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Non-negative integer payload.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Signed integer payload.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Numeric payload (integer or float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Array elements, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pair handling: a high surrogate must
                            // be followed by `\uDC00..\uDFFF`.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

// ---------------------------------------------------------------------------
// Dump parsing & cross-process assembly
// ---------------------------------------------------------------------------

/// One process's span dump, parsed from the
/// [`crate::spans_json_with_meta`] on-disk format.
#[derive(Debug, Clone)]
pub struct ProcessDump {
    /// Process label from the meta header (`"unknown"` if absent).
    pub process: String,
    /// The dumping process's pid.
    pub pid: u64,
    /// Unix nanoseconds at the process's obs-epoch zero.
    pub epoch_unix_ns: u64,
    /// Handshake-estimated clock skew toward the fleet reference.
    pub skew_ns: i64,
    /// The spans, in ring order.
    pub spans: Vec<FinishedSpan>,
}

/// Parses one span dump. Lines that are not JSON objects (e.g. the
/// Prometheus text section of a combined `--obs-dump` file) are skipped, so
/// both the dedicated `.spans.json` format and the combined dump parse.
///
/// # Errors
///
/// Reports the first malformed JSON object line.
pub fn parse_dump(text: &str) -> Result<ProcessDump, String> {
    let mut dump = ProcessDump {
        process: "unknown".to_string(),
        pid: 0,
        epoch_unix_ns: 0,
        skew_ns: 0,
        spans: Vec::new(),
    };
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with('{') {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("line {}: {e}", index + 1))?;
        if let Some(meta) = value.get("meta") {
            if let Some(p) = meta.get("process").and_then(Json::as_str) {
                dump.process = p.to_string();
            }
            dump.pid = meta.get("pid").and_then(Json::as_u64).unwrap_or(0);
            dump.epoch_unix_ns = meta
                .get("epoch_unix_ns")
                .and_then(Json::as_u64)
                .unwrap_or(0);
            dump.skew_ns = meta.get("skew_ns").and_then(Json::as_i64).unwrap_or(0);
            continue;
        }
        let hex_field = |key: &str| -> Result<u64, String> {
            let s = value
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: missing `{key}`", index + 1))?;
            u64::from_str_radix(s, 16).map_err(|e| format!("line {}: bad `{key}`: {e}", index + 1))
        };
        let num_field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {}: missing `{key}`", index + 1))
        };
        let parent_id = match value.get("parent") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(
                u64::from_str_radix(s, 16)
                    .map_err(|e| format!("line {}: bad `parent`: {e}", index + 1))?,
            ),
            Some(_) => return Err(format!("line {}: bad `parent`", index + 1)),
        };
        dump.spans.push(FinishedSpan {
            trace_id: hex_field("trace")?,
            span_id: hex_field("span")?,
            parent_id,
            name: value
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: missing `name`", index + 1))?
                .to_string(),
            start_ns: num_field("start_ns")?,
            end_ns: num_field("end_ns")?,
            annotations: value
                .get("annotations")
                .and_then(Json::as_array)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|a| a.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default(),
        });
    }
    Ok(dump)
}

/// A span placed on the shared unix timeline.
#[derive(Debug, Clone)]
pub struct AlignedSpan {
    /// Label of the process that recorded the span.
    pub process: String,
    /// That process's pid.
    pub pid: u64,
    /// Aligned start, unix nanoseconds.
    pub start_unix_ns: u64,
    /// Aligned end, unix nanoseconds.
    pub end_unix_ns: u64,
    /// The span as recorded.
    pub span: FinishedSpan,
}

/// One assembled cross-process trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The shared trace id.
    pub trace_id: u64,
    /// Member spans, sorted by aligned start.
    pub spans: Vec<AlignedSpan>,
}

impl Trace {
    /// Distinct process labels contributing spans to this trace.
    pub fn processes(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.spans.iter().map(|s| s.process.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

/// Merges per-process dumps by `trace_id`, aligning every timestamp with
/// the dump's epoch anchor plus its skew estimate. Traces come back sorted
/// by earliest aligned start.
pub fn assemble(dumps: &[ProcessDump]) -> Vec<Trace> {
    let mut by_trace: BTreeMap<u64, Vec<AlignedSpan>> = BTreeMap::new();
    for dump in dumps {
        let base = dump.epoch_unix_ns as i128 + i128::from(dump.skew_ns);
        for span in &dump.spans {
            let align =
                |ns: u64| -> u64 { (base + ns as i128).clamp(0, i128::from(u64::MAX)) as u64 };
            by_trace
                .entry(span.trace_id)
                .or_default()
                .push(AlignedSpan {
                    process: dump.process.clone(),
                    pid: dump.pid,
                    start_unix_ns: align(span.start_ns),
                    end_unix_ns: align(span.end_ns),
                    span: span.clone(),
                });
        }
    }
    let mut traces: Vec<Trace> = by_trace
        .into_iter()
        .map(|(trace_id, mut spans)| {
            spans.sort_by_key(|s| s.start_unix_ns);
            Trace { trace_id, spans }
        })
        .collect();
    traces.sort_by_key(|t| t.spans.first().map_or(0, |s| s.start_unix_ns));
    traces
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// Renders assembled traces as Chrome trace-event JSON (the object form,
/// `{"traceEvents":[...]}`) loadable in `chrome://tracing` and Perfetto.
/// Timestamps are rebased to the earliest span so the viewer opens at t=0;
/// each span becomes a complete (`"ph":"X"`) event under its process, and
/// each trace gets its own thread lane.
pub fn chrome_trace_json(traces: &[Trace]) -> String {
    let base = traces
        .iter()
        .flat_map(|t| t.spans.first())
        .map(|s| s.start_unix_ns)
        .min()
        .unwrap_or(0);
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |event: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&event);
    };

    let mut seen_pids: Vec<u64> = Vec::new();
    for trace in traces {
        for span in &trace.spans {
            if !seen_pids.contains(&span.pid) {
                seen_pids.push(span.pid);
                emit(
                    format!(
                        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                         \"args\":{{\"name\":\"{}\"}}}}",
                        span.pid,
                        crate::export::json_escape(&span.process)
                    ),
                    &mut out,
                );
            }
        }
    }
    for (lane, trace) in traces.iter().enumerate() {
        for span in &trace.spans {
            let ts_us = span.start_unix_ns.saturating_sub(base) as f64 / 1e3;
            let dur_us = span.end_unix_ns.saturating_sub(span.start_unix_ns) as f64 / 1e3;
            let annotations = span
                .span
                .annotations
                .iter()
                .map(|a| crate::export::json_escape(a))
                .collect::<Vec<_>>()
                .join("; ");
            emit(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{ts_us:.3},\
                     \"dur\":{dur_us:.3},\"pid\":{},\"tid\":{},\"args\":{{\
                     \"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"annotations\":\"{annotations}\"}}}}",
                    crate::export::json_escape(&span.span.name),
                    span.pid,
                    lane + 1,
                    trace.trace_id,
                    span.span.span_id,
                ),
                &mut out,
            );
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

// ---------------------------------------------------------------------------
// Commit critical path
// ---------------------------------------------------------------------------

/// The six named segments a commit's wall time is attributed to, in path
/// order.
pub const COMMIT_SEGMENTS: [&str; 6] = [
    "client encode",
    "socket",
    "queue wait",
    "shard lock wait",
    "txn",
    "reply",
];

/// Wall-time attribution for one commit RPC.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Trace the attribution came from (0 for an aggregate).
    pub trace_id: u64,
    /// Number of commits aggregated (1 for a single trace).
    pub commits: usize,
    /// End-to-end commit latency (call start → path end), seconds.
    pub e2e_secs: f64,
    /// `(segment name, seconds)` in [`COMMIT_SEGMENTS`] order.
    pub segments: Vec<(String, f64)>,
}

impl CriticalPath {
    /// Sum of the six segments, seconds (equals `e2e_secs` up to clamping).
    pub fn segment_sum_secs(&self) -> f64 {
        self.segments.iter().map(|(_, s)| s).sum()
    }
}

/// Decomposes one assembled trace into the commit critical path, walking
/// the span chain `omq.call_sync → proxy.publish / queue.wait →
/// skeleton.dispatch → handler.exec → meta.lock_wait / meta.txn`. The six
/// segments partition the commit's aligned interval:
///
/// * client encode — call start → request flushed (`proxy.publish` end)
/// * socket        — wire + server decode, until the broker enqueues
/// * queue wait    — the broker-side `queue.wait` span
/// * shard lock    — dispatch + waiting on the workspace shard mutex
/// * txn           — the ACID commit under the shard lock
/// * reply         — reply publish, wire back, client wakeup
///
/// StackSync's production commit is `@AsyncMethod` (fire-and-forget, the
/// ack arrives as a notification), so a trace rooted at `omq.call_async`
/// qualifies too; its root span ends at publish-return, and the path then
/// runs to the end of the server-side handler — the "reply" segment is the
/// post-transaction handler work (notification fan-out) instead of a wire
/// round-trip.
///
/// `None` if the trace is not a commit or a link of the chain is missing.
pub fn commit_critical_path(trace: &Trace) -> Option<CriticalPath> {
    let root = trace.spans.iter().find(|s| {
        (s.span.name == "omq.call_sync" || s.span.name == "omq.call_async")
            && s.span.parent_id.is_none()
            && s.span
                .annotations
                .iter()
                .any(|a| a == "method:commit_request")
    })?;
    let child = |name: &str, parent: u64| {
        trace
            .spans
            .iter()
            .find(|s| s.span.name == name && s.span.parent_id == Some(parent))
    };
    let publish = child("proxy.publish", root.span.span_id)?;
    let queue_wait = child("queue.wait", root.span.span_id)?;
    let dispatch = child("skeleton.dispatch", queue_wait.span.span_id)?;
    let exec = child("handler.exec", dispatch.span.span_id)?;
    let lock_wait = child("meta.lock_wait", exec.span.span_id)?;
    let txn = child("meta.txn", exec.span.span_id)?;

    // Sync commits end at the root (client wakeup); async commits end at
    // the server handler, which outlives the fire-and-forget root span.
    let path_end = root.end_unix_ns.max(exec.end_unix_ns);
    // Over a real transport the publish *ack* returns after the server has
    // already enqueued, so `publish.end` can fall inside later segments;
    // floor the first boundary at enqueue time (the ack wait is off the
    // commit's critical path) and force the waterfall monotone so the six
    // segments partition — and telescope exactly to — the path interval.
    let mut boundaries = [
        root.start_unix_ns,
        publish.end_unix_ns.min(queue_wait.start_unix_ns),
        queue_wait.start_unix_ns,
        queue_wait.end_unix_ns,
        lock_wait.end_unix_ns,
        txn.end_unix_ns,
        path_end,
    ];
    for i in 1..boundaries.len() {
        boundaries[i] = boundaries[i].max(boundaries[i - 1]);
    }
    let segments = COMMIT_SEGMENTS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let ns = boundaries[i + 1].saturating_sub(boundaries[i]);
            ((*name).to_string(), ns as f64 / 1e9)
        })
        .collect();
    Some(CriticalPath {
        trace_id: trace.trace_id,
        commits: 1,
        e2e_secs: boundaries[6].saturating_sub(boundaries[0]) as f64 / 1e9,
        segments,
    })
}

/// Averages several per-commit critical paths into one aggregate row set.
pub fn mean_critical_path(paths: &[CriticalPath]) -> Option<CriticalPath> {
    if paths.is_empty() {
        return None;
    }
    let n = paths.len() as f64;
    let segments = COMMIT_SEGMENTS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mean = paths.iter().map(|p| p.segments[i].1).sum::<f64>() / n;
            ((*name).to_string(), mean)
        })
        .collect();
    Some(CriticalPath {
        trace_id: 0,
        commits: paths.len(),
        e2e_secs: paths.iter().map(|p| p.e2e_secs).sum::<f64>() / n,
        segments,
    })
}

/// Renders a critical path as a fixed-width console table with per-segment
/// share of the end-to-end latency.
pub fn render_critical_path(path: &CriticalPath) -> String {
    let mut out = String::new();
    if path.commits > 1 {
        let _ = writeln!(
            out,
            "commit critical path (mean of {} commits)",
            path.commits
        );
    } else {
        let _ = writeln!(out, "commit critical path (trace {:016x})", path.trace_id);
    }
    let _ = writeln!(out, "{:<16} {:>10} {:>8}", "segment", "ms", "share");
    for (name, secs) in &path.segments {
        let share = if path.e2e_secs > 0.0 {
            100.0 * secs / path.e2e_secs
        } else {
            0.0
        };
        let _ = writeln!(out, "{name:<16} {:>10.3} {share:>7.1}%", secs * 1e3);
    }
    let sum = path.segment_sum_secs();
    let share = if path.e2e_secs > 0.0 {
        100.0 * sum / path.e2e_secs
    } else {
        0.0
    };
    let _ = writeln!(out, "{:<16} {:>10.3} {share:>7.1}%", "sum", sum * 1e3);
    let _ = writeln!(out, "{:<16} {:>10.3}", "end-to-end", path.e2e_secs * 1e3);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_the_dump_grammar() {
        let v = Json::parse(
            r#"{"a":null,"b":true,"big":1722180000000000123,"neg":-5,"f":1.5e3,
                "s":"he\"llo\nworld é","arr":[1,2,[]],"o":{}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a"), Some(&Json::Null));
        assert_eq!(v.get("b"), Some(&Json::Bool(true)));
        // Exact past 2^53: this is why integers are not parsed as f64.
        assert_eq!(
            v.get("big").and_then(Json::as_u64),
            Some(1_722_180_000_000_000_123)
        );
        assert_eq!(v.get("neg").and_then(Json::as_i64), Some(-5));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1500.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("he\"llo\nworld é"));
        assert_eq!(
            v.get("arr").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert!(Json::parse("{\"unterminated\":").is_err());
        assert!(Json::parse("[1,2] trailing").is_err());
    }

    /// Builds the writer + server dump pair for one synthetic commit with
    /// microsecond-exact boundaries, exercising every layer: parse, align
    /// (including a skewed client clock), assemble, decompose.
    fn synthetic_dumps() -> (String, String) {
        // Server timeline (unix ns): epoch 1_000_000, spans relative to it.
        let server = "\
{\"meta\":{\"process\":\"driver\",\"pid\":2,\"epoch_unix_ns\":1000000,\"skew_ns\":0}}
{\"trace\":\"00000000000000aa\",\"span\":\"0000000000000003\",\"parent\":\"0000000000000001\",\"name\":\"queue.wait\",\"start_ns\":3000,\"end_ns\":4000,\"annotations\":[]}
{\"trace\":\"00000000000000aa\",\"span\":\"0000000000000004\",\"parent\":\"0000000000000003\",\"name\":\"skeleton.dispatch\",\"start_ns\":4000,\"end_ns\":9000,\"annotations\":[]}
{\"trace\":\"00000000000000aa\",\"span\":\"0000000000000005\",\"parent\":\"0000000000000004\",\"name\":\"handler.exec\",\"start_ns\":4100,\"end_ns\":8000,\"annotations\":[\"ws:w1\"]}
{\"trace\":\"00000000000000aa\",\"span\":\"0000000000000006\",\"parent\":\"0000000000000005\",\"name\":\"meta.lock_wait\",\"start_ns\":4200,\"end_ns\":5000,\"annotations\":[]}
{\"trace\":\"00000000000000aa\",\"span\":\"0000000000000007\",\"parent\":\"0000000000000005\",\"name\":\"meta.txn\",\"start_ns\":5000,\"end_ns\":7000,\"annotations\":[]}
";
        // Client timeline: epoch 500_000 with skew +500_000 → same as server.
        let client = "\
{\"meta\":{\"process\":\"writer\",\"pid\":1,\"epoch_unix_ns\":500000,\"skew_ns\":500000}}
{\"trace\":\"00000000000000aa\",\"span\":\"0000000000000001\",\"parent\":null,\"name\":\"omq.call_sync\",\"start_ns\":0,\"end_ns\":10000,\"annotations\":[\"oid:sync\",\"method:commit_request\"]}
{\"trace\":\"00000000000000aa\",\"span\":\"0000000000000002\",\"parent\":\"0000000000000001\",\"name\":\"proxy.publish\",\"start_ns\":500,\"end_ns\":2000,\"annotations\":[]}
";
        (client.to_string(), server.to_string())
    }

    #[test]
    fn assembles_one_trace_across_skewed_processes() {
        let (client, server) = synthetic_dumps();
        let dumps = [parse_dump(&client).unwrap(), parse_dump(&server).unwrap()];
        assert_eq!(dumps[0].process, "writer");
        assert_eq!(dumps[0].skew_ns, 500_000);
        let traces = assemble(&dumps);
        assert_eq!(traces.len(), 1, "one shared trace id, one trace");
        let trace = &traces[0];
        assert_eq!(trace.trace_id, 0xaa);
        assert_eq!(trace.spans.len(), 7);
        assert_eq!(trace.processes(), vec!["driver", "writer"]);
        // Alignment: client span 0 lands at 500000+500000+0 = server epoch.
        assert_eq!(trace.spans[0].span.name, "omq.call_sync");
        assert_eq!(trace.spans[0].start_unix_ns, 1_000_000);
    }

    #[test]
    fn critical_path_telescopes_to_the_exact_e2e() {
        let (client, server) = synthetic_dumps();
        let dumps = [parse_dump(&client).unwrap(), parse_dump(&server).unwrap()];
        let traces = assemble(&dumps);
        let path = commit_critical_path(&traces[0]).expect("commit trace decomposes");
        assert_eq!(path.e2e_secs, 10_000.0 / 1e9);
        // Boundaries: 0, 2000, 3000, 4000, 5000, 7000, 10000 (aligned ns).
        let expect = [2000.0, 1000.0, 1000.0, 1000.0, 2000.0, 3000.0];
        for ((name, secs), (want_name, want_ns)) in
            path.segments.iter().zip(COMMIT_SEGMENTS.iter().zip(expect))
        {
            assert_eq!(name, want_name);
            assert!(
                (secs - want_ns / 1e9).abs() < 1e-15,
                "{name}: {secs} != {want_ns}ns"
            );
        }
        assert!((path.segment_sum_secs() - path.e2e_secs).abs() < 1e-15);

        let table = render_critical_path(&path);
        assert!(table.contains("shard lock wait"));
        assert!(table.contains("end-to-end"));

        let mean = mean_critical_path(&[path.clone(), path]).unwrap();
        assert_eq!(mean.commits, 2);
        assert!((mean.e2e_secs - 10_000.0 / 1e9).abs() < 1e-15);
    }

    #[test]
    fn chrome_export_is_valid_json_with_complete_events() {
        let (client, server) = synthetic_dumps();
        let dumps = [parse_dump(&client).unwrap(), parse_dump(&server).unwrap()];
        let traces = assemble(&dumps);
        let chrome = chrome_trace_json(&traces);
        let parsed = Json::parse(&chrome).expect("chrome export must be valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 7 spans + 2 process_name metadata events.
        assert_eq!(events.len(), 9);
        let complete = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .count();
        assert_eq!(complete, 7);
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    == Some("writer")
        }));
        // The viewer opens at t=0: the earliest event is rebased.
        assert!(chrome.contains("\"ts\":0.000"));
    }

    #[test]
    fn parse_dump_skips_non_json_lines() {
        let combined = "# TYPE foo counter\nfoo 3\n# spans\n\
{\"trace\":\"0000000000000001\",\"span\":\"0000000000000002\",\"parent\":null,\"name\":\"x\",\"start_ns\":1,\"end_ns\":2,\"annotations\":[]}\n";
        let dump = parse_dump(combined).unwrap();
        assert_eq!(dump.process, "unknown");
        assert_eq!(dump.spans.len(), 1);
        assert_eq!(dump.spans[0].name, "x");
    }
}
