//! Per-subsystem health checks behind the `/healthz` admin endpoint.
//!
//! Subsystems register a named callback at startup ([`register_health`])
//! and hold on to the returned guard; dropping the guard deregisters the
//! check, so a shut-down component never leaves a stale entry behind.
//! Checks run on demand — there is no background prober — and a panicking
//! check is reported as failed rather than taking the scraper down.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

type CheckFn = Arc<dyn Fn() -> Result<(), String> + Send + Sync>;

struct Entry {
    id: u64,
    name: String,
    check: CheckFn,
}

fn entries() -> &'static Mutex<Vec<Entry>> {
    static ENTRIES: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    ENTRIES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Keeps a health check registered; dropping it deregisters the check.
#[derive(Debug)]
pub struct HealthGuard {
    id: u64,
}

impl Drop for HealthGuard {
    fn drop(&mut self) {
        let mut entries = entries().lock().unwrap_or_else(|e| e.into_inner());
        entries.retain(|e| e.id != self.id);
    }
}

/// Registers a named health check. The callback should be cheap and
/// non-blocking — it runs inline on every `/healthz` scrape. Names need not
/// be unique; each registration reports separately.
pub fn register_health(
    name: &str,
    check: impl Fn() -> Result<(), String> + Send + Sync + 'static,
) -> HealthGuard {
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let mut entries = entries().lock().unwrap_or_else(|e| e.into_inner());
    entries.push(Entry {
        id,
        name: name.to_string(),
        check: Arc::new(check),
    });
    HealthGuard { id }
}

/// One health check's outcome at scrape time.
#[derive(Debug, Clone)]
pub struct HealthCheck {
    /// The name the subsystem registered under.
    pub name: String,
    /// `Ok` for healthy, `Err(reason)` otherwise.
    pub result: Result<(), String>,
}

/// Runs every registered check and returns the outcomes in registration
/// order. A check that panics reports as failed with the panic message.
pub fn health_report() -> Vec<HealthCheck> {
    let checks: Vec<(String, CheckFn)> = {
        let entries = entries().lock().unwrap_or_else(|e| e.into_inner());
        entries
            .iter()
            .map(|e| (e.name.clone(), e.check.clone()))
            .collect()
    };
    checks
        .into_iter()
        .map(|(name, check)| {
            let result = match std::panic::catch_unwind(AssertUnwindSafe(&*check)) {
                Ok(r) => r,
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "health check panicked".to_string());
                    Err(format!("panicked: {msg}"))
                }
            };
            HealthCheck { name, result }
        })
        .collect()
}

/// `true` when every registered check passes (vacuously true with none).
pub fn health_ok() -> bool {
    health_report().iter().all(|c| c.result.is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_report_and_deregister() {
        let ok = register_health("health.test_ok", || Ok(()));
        let bad = register_health("health.test_bad", || Err("broken".into()));
        let report = health_report();
        let find = |name: &str| {
            report
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("{name} missing from report"))
        };
        assert!(find("health.test_ok").result.is_ok());
        assert_eq!(find("health.test_bad").result, Err("broken".to_string()));
        assert!(!health_ok());

        drop(bad);
        assert!(
            !health_report().iter().any(|c| c.name == "health.test_bad"),
            "dropped guard left a stale check behind"
        );
        drop(ok);
    }

    #[test]
    fn panicking_check_reports_failed() {
        let guard = register_health("health.test_panics", || panic!("kaboom"));
        let report = health_report();
        let entry = report
            .iter()
            .find(|c| c.name == "health.test_panics")
            .unwrap();
        let err = entry.result.as_ref().unwrap_err();
        assert!(err.contains("kaboom"), "got: {err}");
        drop(guard);
    }
}
