//! Process-global metrics: counters, gauges, and log-bucketed latency
//! histograms. Handle acquisition takes a registry lock once; every
//! recording after that is atomics only.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time measurement that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        if !crate::enabled() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Geometric bucket layout: ~5% relative error from 1µs to 100s.
const BUCKET_MIN: f64 = 1e-6;
const BUCKET_MAX: f64 = 100.0;
const BUCKET_RATIO: f64 = 1.1;
/// `ceil(ln(BUCKET_MAX / BUCKET_MIN) / ln(BUCKET_RATIO))` interior buckets,
/// plus an underflow bucket (index 0) and an overflow bucket (last index).
const INTERIOR_BUCKETS: usize = 194;
const NUM_BUCKETS: usize = INTERIOR_BUCKETS + 2;

/// Striping of the count/sum pair to keep concurrent recorders off the same
/// cache line; buckets are already spread by value.
const STRIPES: usize = 8;

#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe {
    count: AtomicU64,
    sum_ns: AtomicU64,
}

/// A latency histogram with geometric (log-spaced) buckets from 1µs to
/// 100s at ≤5% relative error, answering quantile queries from a single
/// pass over bucket counts. Recording is lock-free: one `ln`, one bucket
/// `fetch_add`, striped count/sum updates, and a `fetch_max`.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    stripes: [Stripe; STRIPES],
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            stripes: Default::default(),
            max_ns: AtomicU64::new(0),
        }
    }
}

fn ln_ratio() -> f64 {
    static LN: OnceLock<f64> = OnceLock::new();
    *LN.get_or_init(|| BUCKET_RATIO.ln())
}

fn bucket_index(secs: f64) -> usize {
    // `record_secs` sanitizes its input, so `secs` is finite and >= 0 here.
    if secs <= BUCKET_MIN {
        return 0;
    }
    if secs >= BUCKET_MAX {
        return NUM_BUCKETS - 1;
    }
    let idx = ((secs / BUCKET_MIN).ln() / ln_ratio()).floor() as usize + 1;
    idx.min(NUM_BUCKETS - 2)
}

/// Representative value reported for a bucket: the geometric midpoint of
/// its bounds (exact bound for the under/overflow buckets).
fn bucket_value(index: usize) -> f64 {
    if index == 0 {
        return BUCKET_MIN;
    }
    if index >= NUM_BUCKETS - 1 {
        return BUCKET_MAX;
    }
    BUCKET_MIN * BUCKET_RATIO.powi(index as i32 - 1) * BUCKET_RATIO.sqrt()
}

fn stripe_index() -> usize {
    // Cheap per-thread spread: hash the address of a thread-local.
    thread_local! {
        static MARKER: u8 = const { 0 };
    }
    MARKER.with(|m| (m as *const u8 as usize >> 6) % STRIPES)
}

impl Histogram {
    /// Records one latency observation.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_secs(d.as_secs_f64());
    }

    /// Records one latency observation given in seconds.
    pub fn record_secs(&self, secs: f64) {
        if !crate::enabled() {
            return;
        }
        let secs = if secs.is_finite() && secs > 0.0 {
            secs
        } else {
            0.0
        };
        self.buckets[bucket_index(secs)].fetch_add(1, Ordering::Relaxed);
        let stripe = &self.stripes[stripe_index()];
        stripe.count.fetch_add(1, Ordering::Relaxed);
        let ns = (secs * 1e9) as u64;
        stripe.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records a unitless magnitude (e.g. a batch size).
    ///
    /// Same bucketing as [`Histogram::record_secs`] — the "seconds" in
    /// summaries then reads as the raw value. Useful for small counts
    /// (1..~64); values above the top bucket bound are clamped.
    #[inline]
    pub fn record_value(&self, value: f64) {
        self.record_secs(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observations, in seconds.
    pub fn sum_secs(&self) -> f64 {
        let ns: u64 = self
            .stripes
            .iter()
            .map(|s| s.sum_ns.load(Ordering::Relaxed))
            .sum();
        ns as f64 / 1e9
    }

    /// Largest observation, in seconds.
    pub fn max_secs(&self) -> f64 {
        self.max_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Mean observation, in seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_secs() / count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in seconds, with the layout's ≤5%
    /// relative error. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the value below which at least q·total observations fall.
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_value(i);
            }
        }
        bucket_value(NUM_BUCKETS - 1)
    }

    /// Convenience snapshot of the standard reporting quantiles
    /// `(p50, p90, p95, p99, max)`, all in seconds.
    pub fn summary(&self) -> (f64, f64, f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max_secs(),
        )
    }

    /// A point-in-time copy of the histogram state, suitable for shipping
    /// across processes (the bucket layout is fixed by the crate constants,
    /// so snapshots from different processes of the same build align
    /// bucket-for-bucket). Weakly consistent under concurrent recording:
    /// buckets and totals are read without a global lock.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum_ns: self
                .stripes
                .iter()
                .map(|s| s.sum_ns.load(Ordering::Relaxed))
                .sum(),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    /// Folds a snapshot — typically scraped from another process — into
    /// this histogram. Buckets add index-for-index; a snapshot with more
    /// buckets than this build spills the excess into the overflow bucket.
    /// Not gated on the kill switch: merging is collection, not measurement.
    pub fn merge(&self, snap: &HistogramSnapshot) {
        for (i, &c) in snap.buckets.iter().enumerate() {
            if c > 0 {
                let idx = i.min(NUM_BUCKETS - 1);
                self.buckets[idx].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.stripes[0]
            .count
            .fetch_add(snap.count, Ordering::Relaxed);
        self.stripes[0]
            .sum_ns
            .fetch_add(snap.sum_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(snap.max_ns, Ordering::Relaxed);
    }
}

/// Owned copy of a [`Histogram`]'s state at one instant. Produced by
/// [`Histogram::snapshot`], consumed by [`Histogram::merge`] and
/// [`HistogramSnapshot::delta`] (the scrape-twice-and-subtract idiom of a
/// pull-based collector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts in the crate's geometric layout.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, in nanoseconds.
    pub sum_ns: u64,
    /// Largest observation, in nanoseconds.
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// The observations recorded between `earlier` and `self` (both taken
    /// from the same histogram, `earlier` first). Counters are monotone, so
    /// per-bucket saturating subtraction is exact; `max_ns` carries over
    /// from `self` since a maximum cannot be un-observed.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| c.saturating_sub(earlier.buckets.get(i).copied().unwrap_or(0)))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
            max_ns: self.max_ns,
        }
    }

    /// The `q`-quantile over the snapshot's buckets, in seconds (same
    /// nearest-rank semantics and error bound as [`Histogram::quantile`]).
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_value(i.min(NUM_BUCKETS - 1));
            }
        }
        bucket_value(NUM_BUCKETS - 1)
    }

    /// Mean observation in seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / 1e9 / self.count as f64
        }
    }
}

/// The process-global named-metric registry.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Named counter, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_default().clone()
    }

    /// Named gauge, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_default().clone()
    }

    /// Named histogram, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_default().clone()
    }

    /// Sorted snapshot of all counters.
    pub fn counters(&self) -> Vec<(String, Arc<Counter>)> {
        let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Sorted snapshot of all gauges.
    pub fn gauges(&self) -> Vec<(String, Arc<Gauge>)> {
        let map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Sorted snapshot of all histograms.
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }
}

/// The process-global registry behind [`crate::counter`] and friends.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = registry().counter("metrics.test_counter");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        // Same name returns the same metric.
        assert_eq!(registry().counter("metrics.test_counter").value(), 5);

        let g = registry().gauge("metrics.test_gauge");
        g.set(2.5);
        g.add(-1.0);
        assert!((g.value() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucket_error_bound() {
        // Every representable value in range must round-trip through its
        // bucket with ≤5% relative error.
        let mut v = 1.5e-6;
        while v < 90.0 {
            let rep = bucket_value(bucket_index(v));
            let rel = (rep - v).abs() / v;
            assert!(rel <= 0.05, "value {v}: representative {rep}, error {rel}");
            v *= 1.37;
        }
    }

    #[test]
    fn histogram_quantiles_on_known_distribution() {
        let h = Histogram::default();
        // 1..=100 ms: p50 ≈ 50ms, p90 ≈ 90ms, p99 ≈ 99ms.
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        assert!((h.sum_secs() - 5.050).abs() < 0.001);
        assert!((h.max_secs() - 0.100).abs() < 1e-9);
        for (q, expect) in [(0.50, 0.050), (0.90, 0.090), (0.95, 0.095), (0.99, 0.099)] {
            let got = h.quantile(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.06, "q={q}: got {got}, want ~{expect} (rel {rel})");
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!(p99 >= p50);
    }

    #[test]
    fn histogram_edge_values() {
        let h = Histogram::default();
        h.record_secs(0.0); // underflow
        h.record_secs(5e-7); // below min
        h.record_secs(1000.0); // overflow
        h.record_secs(f64::NAN); // must not poison anything
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.0), BUCKET_MIN);
        assert_eq!(h.quantile(1.0), BUCKET_MAX);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.max_secs(), 0.0);
        assert_eq!(h.mean_secs(), 0.0);
    }

    #[test]
    fn snapshot_merge_preserves_buckets_count_and_sum() {
        let a = Histogram::default();
        for ms in [1u64, 5, 20, 80] {
            a.record(Duration::from_millis(ms));
        }
        let snap = a.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4);
        assert_eq!(snap.max_ns, 80_000_000);

        // Merging into an empty histogram reproduces the original exactly:
        // same bucket occupancy, count, sum, max, and therefore quantiles.
        let b = Histogram::default();
        b.merge(&snap);
        assert_eq!(b.snapshot(), snap);
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(b.quantile(q), a.quantile(q), "quantile {q} diverged");
        }

        // Merging twice doubles counts and sum but keeps bucket alignment.
        b.merge(&snap);
        let doubled = b.snapshot();
        assert_eq!(doubled.count, 8);
        assert_eq!(doubled.sum_ns, 2 * snap.sum_ns);
        for (i, &c) in snap.buckets.iter().enumerate() {
            assert_eq!(doubled.buckets[i], 2 * c, "bucket {i} misaligned");
        }
    }

    #[test]
    fn snapshot_delta_isolates_the_window() {
        let h = Histogram::default();
        h.record(Duration::from_millis(10));
        let first = h.snapshot();
        h.record(Duration::from_millis(30));
        h.record(Duration::from_millis(50));
        let second = h.snapshot();

        let delta = second.delta(&first);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.buckets.iter().sum::<u64>(), 2);
        assert_eq!(delta.sum_ns, 80_000_000);
        // The 10ms observation belongs to the earlier window.
        assert_eq!(delta.buckets[bucket_index(0.010)], 0);
        assert_eq!(delta.buckets[bucket_index(0.030)], 1);
        assert_eq!(delta.buckets[bucket_index(0.050)], 1);
        let p99 = delta.quantile(0.99);
        assert!((p99 - 0.050).abs() / 0.050 < 0.06, "window p99: {p99}");
    }

    #[test]
    fn merge_spills_unknown_buckets_into_overflow() {
        let h = Histogram::default();
        let mut buckets = vec![0u64; NUM_BUCKETS + 3];
        buckets[NUM_BUCKETS + 2] = 5; // from a layout with more buckets
        h.merge(&HistogramSnapshot {
            buckets,
            count: 5,
            sum_ns: 1_000,
            max_ns: 1_000,
        });
        let snap = h.snapshot();
        assert_eq!(snap.buckets[NUM_BUCKETS - 1], 5);
        assert_eq!(snap.count, 5);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::default());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_secs(1e-6 + (t * 10_000 + i) as f64 * 1e-9);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }
}
