//! Invocation tracing: causally-linked spans with a bounded in-memory ring
//! buffer. A span context is two 64-bit ids; it travels across process
//! boundaries as a short string (carried in message headers) so one RPC
//! yields a single trace spanning proxy, queue, and skeleton.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// How many finished spans the ring buffer retains before evicting the
/// oldest (overridable via `OBS_SPAN_CAPACITY`).
const DEFAULT_RING_CAPACITY: usize = 4096;

/// Identity of a span within a trace. `Copy`, cheap, and string-encodable
/// for transport in message headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// Shared by every span in one causal chain.
    pub trace_id: u64,
    /// Unique to this span within the process run.
    pub span_id: u64,
}

impl SpanContext {
    /// Encodes as `"<trace_id>:<span_id>"` in hex, for message headers.
    pub fn encode(&self) -> String {
        format!("{:016x}:{:016x}", self.trace_id, self.span_id)
    }

    /// Decodes the [`encode`](Self::encode) form; `None` on malformed input.
    pub fn decode(s: &str) -> Option<SpanContext> {
        let (t, sp) = s.split_once(':')?;
        Some(SpanContext {
            trace_id: u64::from_str_radix(t, 16).ok()?,
            span_id: u64::from_str_radix(sp, 16).ok()?,
        })
    }
}

/// A completed span as held by the ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedSpan {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id within the trace, if any.
    pub parent_id: Option<u64>,
    /// Operation name, e.g. `"skeleton.dispatch"`.
    pub name: String,
    /// Start, nanoseconds since the process obs epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the process obs epoch.
    pub end_ns: u64,
    /// Free-form notes attached during execution (e.g. `"ws:w1"`).
    pub annotations: Vec<String>,
}

impl FinishedSpan {
    /// Span duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.end_ns.saturating_sub(self.start_ns) as f64 / 1e9
    }
}

fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    // SplitMix64 over a sequence number: unique and well-spread, without
    // needing an entropy source.
    let seq = NEXT.fetch_add(1, Ordering::Relaxed);
    let mut z = seq.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    (z ^ (z >> 31)) | 1
}

/// An in-flight span. Create with [`Span::start`] (new trace) or
/// [`Span::child`]/[`Span::start_child_of`] (same trace); complete with
/// [`Span::finish`]. Dropping without finishing discards the span.
#[derive(Debug)]
pub struct Span {
    ctx: SpanContext,
    parent_id: Option<u64>,
    name: String,
    start_ns: u64,
    annotations: Vec<String>,
    recording: bool,
}

impl Span {
    /// Starts a root span, beginning a new trace.
    pub fn start(name: impl Into<String>) -> Span {
        let recording = crate::enabled();
        Span {
            ctx: SpanContext {
                trace_id: next_id(),
                span_id: next_id(),
            },
            parent_id: None,
            name: name.into(),
            start_ns: if recording { crate::now_ns() } else { 0 },
            annotations: Vec::new(),
            recording,
        }
    }

    /// Starts a child of this span (same trace).
    pub fn child(&self, name: impl Into<String>) -> Span {
        Span::start_child_of(name, &self.ctx)
    }

    /// Starts a child of a context received from elsewhere (e.g. decoded
    /// from a message header).
    pub fn start_child_of(name: impl Into<String>, parent: &SpanContext) -> Span {
        let recording = crate::enabled();
        Span {
            ctx: SpanContext {
                trace_id: parent.trace_id,
                span_id: next_id(),
            },
            parent_id: Some(parent.span_id),
            name: name.into(),
            start_ns: if recording { crate::now_ns() } else { 0 },
            annotations: Vec::new(),
            recording,
        }
    }

    /// This span's identity, for propagation.
    pub fn context(&self) -> SpanContext {
        self.ctx
    }

    /// Attaches a free-form note.
    pub fn note(&mut self, annotation: impl Into<String>) {
        if self.recording {
            self.annotations.push(annotation.into());
        }
    }

    /// Elapsed time so far, in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        if self.recording {
            crate::now_ns().saturating_sub(self.start_ns) as f64 / 1e9
        } else {
            0.0
        }
    }

    /// Completes the span, pushing it into the ring buffer.
    pub fn finish(self) {
        if !self.recording || !crate::enabled() {
            return;
        }
        ring_push(FinishedSpan {
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_id: self.parent_id,
            name: self.name,
            start_ns: self.start_ns,
            end_ns: crate::now_ns(),
            annotations: self.annotations,
        });
    }
}

/// Records a span whose timestamps were measured externally — e.g. a
/// `queue.wait` span synthesized from a message's enqueue time at delivery.
/// Returns the context of the recorded span.
pub fn record_manual(
    name: impl Into<String>,
    parent: &SpanContext,
    start_ns: u64,
    end_ns: u64,
) -> SpanContext {
    let ctx = SpanContext {
        trace_id: parent.trace_id,
        span_id: next_id(),
    };
    if crate::enabled() {
        ring_push(FinishedSpan {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: Some(parent.span_id),
            name: name.into(),
            start_ns,
            end_ns: end_ns.max(start_ns),
            annotations: Vec::new(),
        });
    }
    ctx
}

struct Ring {
    spans: VecDeque<FinishedSpan>,
    capacity: usize,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        let capacity = std::env::var("OBS_SPAN_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_RING_CAPACITY);
        Mutex::new(Ring {
            spans: VecDeque::with_capacity(capacity.min(DEFAULT_RING_CAPACITY)),
            capacity,
        })
    })
}

/// Eviction and occupancy accounting for the ring itself — the one part of
/// the pipeline that would otherwise fail silently under span pressure.
fn ring_metrics() -> &'static (std::sync::Arc<crate::Counter>, std::sync::Arc<crate::Gauge>) {
    static METRICS: OnceLock<(std::sync::Arc<crate::Counter>, std::sync::Arc<crate::Gauge>)> =
        OnceLock::new();
    METRICS.get_or_init(|| {
        (
            crate::counter("obs.spans.dropped"),
            crate::gauge("obs.spans.ring_occupancy"),
        )
    })
}

fn ring_push(span: FinishedSpan) {
    let (dropped, occupancy) = ring_metrics();
    let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    if ring.spans.len() == ring.capacity {
        ring.spans.pop_front();
        dropped.inc();
    }
    ring.spans.push_back(span);
    occupancy.set(ring.spans.len() as f64);
}

pub(crate) fn ring_snapshot() -> Vec<FinishedSpan> {
    let ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    ring.spans.iter().cloned().collect()
}

pub(crate) fn ring_clear() {
    let (_, occupancy) = ring_metrics();
    let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    ring.spans.clear();
    occupancy.set(0.0);
}

/// Configured ring capacity (tests size their overflow runs off this).
#[cfg(test)]
pub(crate) fn ring_capacity() -> usize {
    ring().lock().unwrap_or_else(|e| e.into_inner()).capacity
}

thread_local! {
    static CURRENT: RefCell<Option<SpanContext>> = const { RefCell::new(None) };
    static NOTES: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn current() -> Option<SpanContext> {
    CURRENT.with(|c| *c.borrow())
}

pub(crate) fn set_current(ctx: Option<SpanContext>) -> Option<SpanContext> {
    CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), ctx))
}

pub(crate) fn annotate_current(note: &str) {
    if crate::enabled() {
        NOTES.with(|n| n.borrow_mut().push(note.to_string()));
    }
}

pub(crate) fn take_annotations() -> Vec<String> {
    NOTES.with(|n| std::mem::take(&mut *n.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_encode_decode_roundtrip() {
        let ctx = SpanContext {
            trace_id: 0xdead_beef_0102_0304,
            span_id: 7,
        };
        assert_eq!(SpanContext::decode(&ctx.encode()), Some(ctx));
        assert_eq!(SpanContext::decode("junk"), None);
        assert_eq!(SpanContext::decode("12:zz"), None);
        assert_eq!(SpanContext::decode(""), None);
    }

    #[test]
    fn parent_child_linkage_and_ring_retrieval() {
        let root = Span::start("test.root");
        let trace = root.context().trace_id;
        let mut child = root.child("test.child");
        child.note("k:v");
        let grandchild = child.child("test.grandchild");
        grandchild.finish();
        child.finish();
        root.finish();

        let spans = crate::trace_spans(trace);
        assert_eq!(spans.len(), 3);
        let find = |name: &str| spans.iter().find(|s| s.name == name).unwrap();
        let root_s = find("test.root");
        let child_s = find("test.child");
        let grand_s = find("test.grandchild");
        assert_eq!(root_s.parent_id, None);
        assert_eq!(child_s.parent_id, Some(root_s.span_id));
        assert_eq!(grand_s.parent_id, Some(child_s.span_id));
        assert_eq!(child_s.annotations, vec!["k:v".to_string()]);
        assert!(root_s.end_ns >= root_s.start_ns);
    }

    #[test]
    fn manual_record_clamps_and_links() {
        let root = Span::start("test.manual_root");
        let ctx = record_manual("test.manual", &root.context(), 100, 50);
        assert_eq!(ctx.trace_id, root.context().trace_id);
        let spans = crate::trace_spans(root.context().trace_id);
        let manual = spans.iter().find(|s| s.name == "test.manual").unwrap();
        assert_eq!(manual.end_ns, manual.start_ns); // clamped, not negative
        assert_eq!(manual.parent_id, Some(root.context().span_id));
        root.finish();
    }

    #[test]
    fn ring_overflow_counts_drops_and_tracks_occupancy() {
        let dropped = crate::counter("obs.spans.dropped");
        let capacity = ring_capacity();
        // Retried because a concurrent test may briefly flip the global kill
        // switch, which silently skips some of our pushes.
        for _ in 0..5 {
            let before = dropped.value();
            for _ in 0..capacity + 64 {
                Span::start("span.overflow").finish();
            }
            if dropped.value() >= before + 64 {
                let occupancy = crate::gauge("obs.spans.ring_occupancy").value() as usize;
                assert!(
                    occupancy <= capacity,
                    "occupancy {occupancy} > cap {capacity}"
                );
                assert!(occupancy > 0, "gauge never updated");
                return;
            }
        }
        panic!("overflowing the ring never moved obs.spans.dropped");
    }

    #[test]
    fn ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(next_id()));
        }
    }
}
