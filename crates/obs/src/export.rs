//! Exporters: a Prometheus-style text snapshot of the metrics registry and
//! a JSON-lines rendering of the span ring buffer. Both are pull-based —
//! callers decide when and where snapshots go (stdout, a `--obs-dump`
//! file, a test assertion).

use crate::metrics::registry;
use std::fmt::Write;

/// Sanitizes a metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and dashes become underscores.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders every registered metric as Prometheus-style exposition text:
/// counters and gauges as single samples, histograms as `{quantile=..}`
/// samples plus `_count`, `_sum`, and `_max`.
pub fn render_text() -> String {
    let mut out = String::new();
    for (name, counter) in registry().counters() {
        let n = prom_name(&name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {}", counter.value());
    }
    for (name, gauge) in registry().gauges() {
        let n = prom_name(&name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", fmt_f64(gauge.value()));
    }
    for (name, histogram) in registry().histograms() {
        let n = prom_name(&name);
        let _ = writeln!(out, "# TYPE {n} summary");
        let (p50, p90, p95, p99, max) = histogram.summary();
        for (q, v) in [("0.5", p50), ("0.9", p90), ("0.95", p95), ("0.99", p99)] {
            let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {}", fmt_f64(v));
        }
        let _ = writeln!(out, "{n}_count {}", histogram.count());
        let _ = writeln!(out, "{n}_sum {}", fmt_f64(histogram.sum_secs()));
        let _ = writeln!(out, "{n}_max {}", fmt_f64(max));
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the span ring buffer as JSON lines — one span object per line,
/// oldest first. Suitable for `--obs-dump` files and offline trace
/// reconstruction.
pub fn spans_json() -> String {
    let mut out = String::new();
    for span in crate::finished_spans() {
        let parent = match span.parent_id {
            Some(p) => format!("\"{p:016x}\""),
            None => "null".to_string(),
        };
        let annotations = span
            .annotations
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            "{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":{parent},\
             \"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"annotations\":[{annotations}]}}",
            span.trace_id,
            span.span_id,
            json_escape(&span.name),
            span.start_ns,
            span.end_ns,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_snapshot_contains_all_metric_kinds() {
        crate::counter("export.requests_total").add(3);
        crate::gauge("export.pool_size").set(4.0);
        let h = crate::histogram("export.latency_seconds");
        h.record_secs(0.010);
        h.record_secs(0.020);

        let text = render_text();
        assert!(text.contains("# TYPE export_requests_total counter"));
        assert!(text.contains("export_requests_total 3"));
        assert!(text.contains("# TYPE export_pool_size gauge"));
        assert!(text.contains("export_pool_size 4.0"));
        assert!(text.contains("export_latency_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("export_latency_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("export_latency_seconds_count 2"));
        assert!(text.contains("export_latency_seconds_max"));
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(
            prom_name("mq.queue.publish-total"),
            "mq_queue_publish_total"
        );
        assert_eq!(prom_name("9lives"), "_9lives");
    }

    #[test]
    fn span_json_lines_are_well_formed() {
        let mut span = crate::Span::start("export.json \"quoted\"");
        span.note("line\nbreak");
        let trace = span.context().trace_id;
        span.finish();
        let json = spans_json();
        let line = json
            .lines()
            .find(|l| l.contains(&format!("{trace:016x}")))
            .expect("span line present");
        assert!(line.contains("\\\"quoted\\\""));
        assert!(line.contains("line\\nbreak"));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"parent\":null"));
    }
}
