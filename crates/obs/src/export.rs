//! Exporters: a Prometheus-style text snapshot of the metrics registry and
//! a JSON-lines rendering of the span ring buffer. Both are pull-based —
//! callers decide when and where snapshots go (stdout, a `--obs-dump`
//! file, a test assertion).

use crate::metrics::registry;
use std::fmt::Write;

/// Sanitizes a metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and dashes become underscores.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders every registered metric as Prometheus-style exposition text:
/// counters and gauges as single samples, histograms as `{quantile=..}`
/// samples plus `_count`, `_sum`, and `_max`.
pub fn render_text() -> String {
    let mut out = String::new();
    for (name, counter) in registry().counters() {
        let n = prom_name(&name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {}", counter.value());
    }
    for (name, gauge) in registry().gauges() {
        let n = prom_name(&name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", fmt_f64(gauge.value()));
    }
    for (name, histogram) in registry().histograms() {
        let n = prom_name(&name);
        let _ = writeln!(out, "# TYPE {n} summary");
        let (p50, p90, p95, p99, max) = histogram.summary();
        for (q, v) in [("0.5", p50), ("0.9", p90), ("0.95", p95), ("0.99", p99)] {
            let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {}", fmt_f64(v));
        }
        let _ = writeln!(out, "{n}_count {}", histogram.count());
        let _ = writeln!(out, "{n}_sum {}", fmt_f64(histogram.sum_secs()));
        let _ = writeln!(out, "{n}_max {}", fmt_f64(max));
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the span ring buffer as JSON lines — one span object per line,
/// oldest first. Suitable for `--obs-dump` files and offline trace
/// reconstruction.
pub fn spans_json() -> String {
    let mut out = String::new();
    for span in crate::finished_spans() {
        let parent = match span.parent_id {
            Some(p) => format!("\"{p:016x}\""),
            None => "null".to_string(),
        };
        let annotations = span
            .annotations
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            "{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":{parent},\
             \"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"annotations\":[{annotations}]}}",
            span.trace_id,
            span.span_id,
            json_escape(&span.name),
            span.start_ns,
            span.end_ns,
        );
    }
    out
}

/// [`spans_json`] preceded by a one-line meta header identifying the
/// dumping process and anchoring its span timestamps to unix time:
///
/// ```json
/// {"meta":{"process":"writer","pid":123,"epoch_unix_ns":...,"skew_ns":0}}
/// ```
///
/// This is the on-disk format `obs::traceview` assembles multi-process
/// traces from; `skew_ns` carries the net handshake's clock-offset estimate.
pub fn spans_json_with_meta(process: &str) -> String {
    let mut out = format!(
        "{{\"meta\":{{\"process\":\"{}\",\"pid\":{},\"epoch_unix_ns\":{},\"skew_ns\":{}}}}}\n",
        json_escape(process),
        std::process::id(),
        crate::epoch_unix_ns(),
        crate::clock_skew_ns(),
    );
    out.push_str(&spans_json());
    out
}

/// Monotonic scrape snapshot for the `/snapshot` admin endpoint: one JSON
/// object carrying a per-process sequence number (so a scraper can order
/// scrapes and detect restarts), raw counter/gauge values, and full
/// histogram state — bucket occupancy as sparse `[index, count]` pairs —
/// which [`crate::HistogramSnapshot::delta`] turns into per-window
/// distributions on the collector side.
pub fn snapshot_json() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);

    let sane = |v: f64| if v.is_finite() { v } else { 0.0 };
    let mut out = format!(
        "{{\"seq\":{seq},\"unix_ns\":{},\"process\":\"{}\"",
        crate::unix_now_ns(),
        json_escape(&crate::process_label()),
    );
    out.push_str(",\"counters\":{");
    for (i, (name, counter)) in registry().counters().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(&name), counter.value());
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, gauge)) in registry().gauges().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(&name), sane(gauge.value()));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, histogram)) in registry().histograms().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let snap = histogram.snapshot();
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum_ns\":{},\"max_ns\":{},\"buckets\":[",
            json_escape(&name),
            snap.count,
            snap.sum_ns,
            snap.max_ns
        );
        let mut first = true;
        for (idx, &c) in snap.buckets.iter().enumerate() {
            if c > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{idx},{c}]");
            }
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_snapshot_contains_all_metric_kinds() {
        crate::counter("export.requests_total").add(3);
        crate::gauge("export.pool_size").set(4.0);
        let h = crate::histogram("export.latency_seconds");
        h.record_secs(0.010);
        h.record_secs(0.020);

        let text = render_text();
        assert!(text.contains("# TYPE export_requests_total counter"));
        assert!(text.contains("export_requests_total 3"));
        assert!(text.contains("# TYPE export_pool_size gauge"));
        assert!(text.contains("export_pool_size 4.0"));
        assert!(text.contains("export_latency_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("export_latency_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("export_latency_seconds_count 2"));
        assert!(text.contains("export_latency_seconds_max"));
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(
            prom_name("mq.queue.publish-total"),
            "mq_queue_publish_total"
        );
        assert_eq!(prom_name("9lives"), "_9lives");
    }

    #[test]
    fn meta_header_prefixes_span_dump() {
        let dump = spans_json_with_meta("unit-test");
        let first = dump.lines().next().expect("non-empty dump");
        assert!(first.starts_with("{\"meta\":{\"process\":\"unit-test\""));
        assert!(first.contains("\"epoch_unix_ns\":"));
        assert!(first.contains("\"skew_ns\":"));
    }

    #[test]
    fn snapshot_json_carries_monotone_seq_and_sparse_buckets() {
        let h = crate::histogram("export.snapshot_seconds");
        h.record_secs(0.005);
        let a = snapshot_json();
        let b = snapshot_json();
        let seq_of = |s: &str| -> u64 {
            let rest = s.strip_prefix("{\"seq\":").expect("seq first");
            rest[..rest.find(',').unwrap()].parse().unwrap()
        };
        assert!(seq_of(&b) > seq_of(&a), "sequence must advance per scrape");
        assert!(a.contains("\"export.snapshot_seconds\":{\"count\":"));
        assert!(a.contains("\"buckets\":[["));
    }

    #[test]
    fn span_json_lines_are_well_formed() {
        let mut span = crate::Span::start("export.json \"quoted\"");
        span.note("line\nbreak");
        let trace = span.context().trace_id;
        span.finish();
        let json = spans_json();
        let line = json
            .lines()
            .find(|l| l.contains(&format!("{trace:016x}")))
            .expect("span line present");
        assert!(line.contains("\\\"quoted\\\""));
        assert!(line.contains("line\\nbreak"));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"parent\":null"));
    }
}
