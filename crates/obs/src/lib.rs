//! Observability for the StackSync reproduction: a process-global metrics
//! registry (counters, gauges, log-bucketed latency histograms), lightweight
//! invocation tracing with causally-linked spans, and pluggable exporters
//! (Prometheus-style text, JSON-lines traces, env-gated stderr logging).
//!
//! Everything is hand-rolled on `std` — no external dependencies — and the
//! hot paths are atomics only. A global kill switch ([`disable`]) turns every
//! recording site into a single relaxed load so instrumented builds can run
//! measurement-free.
//!
//! # Example
//!
//! ```
//! let calls = obs::counter("demo.calls");
//! let latency = obs::histogram("demo.latency_seconds");
//! calls.inc();
//! latency.record_secs(0.003);
//!
//! let root = obs::Span::start("demo.request");
//! let child = root.child("demo.step");
//! child.finish();
//! root.finish();
//!
//! let text = obs::render_text();
//! assert!(text.contains("demo_calls"));
//! ```

mod admin;
mod export;
pub mod flight;
mod health;
mod metrics;
mod span;
pub mod traceview;

pub use admin::{serve_admin, AdminServer};
pub use export::{render_text, snapshot_json, spans_json, spans_json_with_meta};
pub use health::{health_ok, health_report, register_health, HealthCheck, HealthGuard};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use span::{record_manual, FinishedSpan, Span, SpanContext};

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns all metric and span recording off (a single relaxed load remains
/// on each hot path). Exporters keep working on whatever was recorded.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Re-enables recording after [`disable`].
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

struct Epoch {
    started: Instant,
    unix_ns: u64,
}

/// The process obs epoch: a monotonic zero point plus the wall-clock time
/// at which it was taken, so per-process span timestamps can be placed on a
/// shared unix timeline by an offline collector.
fn epoch() -> &'static Epoch {
    static EPOCH: OnceLock<Epoch> = OnceLock::new();
    EPOCH.get_or_init(|| Epoch {
        started: Instant::now(),
        unix_ns: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0),
    })
}

/// Monotonic nanoseconds since the first observability call in this process.
/// All span timestamps share this epoch, so ordering is comparable across
/// threads.
pub fn now_ns() -> u64 {
    Instant::now().duration_since(epoch().started).as_nanos() as u64
}

/// Wall-clock nanoseconds (unix time) at obs-epoch zero. Written into span
/// dump headers so `traceview` can align dumps from several processes.
pub fn epoch_unix_ns() -> u64 {
    epoch().unix_ns
}

/// Current unix time in nanoseconds, derived from the monotonic clock (so
/// it never steps backwards within a process).
pub fn unix_now_ns() -> u64 {
    epoch_unix_ns() + now_ns()
}

static CLOCK_SKEW_NS: AtomicI64 = AtomicI64::new(0);

/// Estimated offset of this process's unix clock from the fleet reference
/// (the broker server), in nanoseconds: `reference − local`. Set by the net
/// client's connect handshake; 0 until then (and always 0 on the server).
pub fn clock_skew_ns() -> i64 {
    CLOCK_SKEW_NS.load(Ordering::Relaxed)
}

/// Records the handshake-estimated clock skew (see [`clock_skew_ns`]).
pub fn set_clock_skew_ns(ns: i64) {
    CLOCK_SKEW_NS.store(ns, Ordering::Relaxed);
}

/// Short label identifying this process in span dumps and trace exports:
/// the executable's file stem, falling back to the pid.
pub fn process_label() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| format!("pid-{}", std::process::id()))
}

/// Returns (registering on first use) the named monotonic counter.
pub fn counter(name: &str) -> std::sync::Arc<Counter> {
    metrics::registry().counter(name)
}

/// Returns (registering on first use) the named gauge.
pub fn gauge(name: &str) -> std::sync::Arc<Gauge> {
    metrics::registry().gauge(name)
}

/// Returns (registering on first use) the named latency histogram.
pub fn histogram(name: &str) -> std::sync::Arc<Histogram> {
    metrics::registry().histogram(name)
}

/// Snapshot of every finished span still held by the trace ring buffer,
/// oldest first.
pub fn finished_spans() -> Vec<FinishedSpan> {
    span::ring_snapshot()
}

/// Finished spans belonging to one trace, oldest first.
pub fn trace_spans(trace_id: u64) -> Vec<FinishedSpan> {
    span::ring_snapshot()
        .into_iter()
        .filter(|s| s.trace_id == trace_id)
        .collect()
}

/// Empties the trace ring buffer (tests and targeted captures).
pub fn clear_spans() {
    span::ring_clear()
}

/// Thread-local current span context, if one is installed via
/// [`set_current`]. Used to parent child spans across module boundaries.
pub fn current() -> Option<SpanContext> {
    span::current()
}

/// Installs (or clears, with `None`) the thread-local current span context
/// and returns the previous value so callers can restore it.
pub fn set_current(ctx: Option<SpanContext>) -> Option<SpanContext> {
    span::set_current(ctx)
}

/// Attaches a note to whatever span later drains this thread's annotation
/// buffer (see [`take_annotations`]). Lets deeply nested code — e.g. a
/// service handler — tag the enclosing span without holding it.
pub fn annotate_current(note: &str) {
    span::annotate_current(note)
}

/// Drains the thread-local annotation buffer (the span owner calls this
/// right before `finish`).
pub fn take_annotations() -> Vec<String> {
    span::take_annotations()
}

/// Log severity for [`log`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fine-grained diagnostics.
    Debug = 0,
    /// Routine operational events.
    Info = 1,
    /// Something unexpected but recoverable.
    Warn = 2,
    /// A failure worth surfacing.
    Error = 3,
}

fn log_threshold() -> Option<Level> {
    static THRESHOLD: OnceLock<Option<Level>> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        let raw = std::env::var("OBS_LOG").ok()?;
        match raw.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    })
}

/// Writes a line to stderr when `OBS_LOG` is set to this severity or lower.
/// With `OBS_LOG` unset the cost is one cached `Option` check.
pub fn log(level: Level, target: &str, message: &str) {
    if let Some(threshold) = log_threshold() {
        if level >= threshold {
            let label = match level {
                Level::Debug => "DEBUG",
                Level::Info => "INFO",
                Level::Warn => "WARN",
                Level::Error => "ERROR",
            };
            eprintln!(
                "[obs {:>12.6} {label} {target}] {message}",
                now_ns() as f64 / 1e9
            );
        }
    }
}

/// Records a formatted event in the crash flight recorder:
/// `obs::flight_event!("net", "reconnected to {addr} after {n} attempts")`.
/// Sugar over [`flight::record`].
#[macro_export]
macro_rules! flight_event {
    ($subsystem:expr, $($arg:tt)*) => {
        $crate::flight::record($subsystem, format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_switch_stops_recording() {
        let c = counter("lib.kill_switch_counter");
        let h = histogram("lib.kill_switch_hist");
        c.inc();
        h.record_secs(0.001);
        disable();
        c.inc();
        c.add(10);
        h.record_secs(0.001);
        let s = Span::start("lib.kill_switch_span");
        let trace = s.context().trace_id;
        s.finish();
        enable();
        assert_eq!(c.value(), 1);
        assert_eq!(h.count(), 1);
        assert!(trace_spans(trace).is_empty());
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn unix_epoch_anchors_monotonic_time() {
        let anchor = epoch_unix_ns();
        assert!(
            anchor > 1_500_000_000 * 1_000_000_000,
            "unix anchor predates 2017: {anchor}"
        );
        let a = unix_now_ns();
        let b = unix_now_ns();
        assert!(b >= a && a >= anchor);
    }

    #[test]
    fn current_context_roundtrip() {
        assert_eq!(set_current(None), None);
        let s = Span::start("lib.current");
        let prev = set_current(Some(s.context()));
        assert_eq!(prev, None);
        assert_eq!(current(), Some(s.context()));
        annotate_current("ws:w1");
        assert_eq!(take_annotations(), vec!["ws:w1".to_string()]);
        set_current(None);
        s.finish();
    }
}
