//! Crash flight recorder: a bounded in-memory ring of recent structured
//! events — net reconnects, supervisor scaling actions, fault injections —
//! cheap enough to leave on everywhere, dumped only when something goes
//! wrong (a panic, a failed chaos seed, or an explicit `/flightrecorder`
//! scrape). The last-N-events context turns a bare assertion failure in CI
//! into a story of what the process was doing just before.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// Default event retention (overridable via `OBS_FLIGHT_CAPACITY`).
const DEFAULT_CAPACITY: usize = 2048;

/// One recorded state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Unix nanoseconds at record time (comparable across processes).
    pub ts_unix_ns: u64,
    /// Originating subsystem, e.g. `"net"`, `"supervisor"`, `"faultsim"`.
    pub subsystem: String,
    /// Free-form description of the transition.
    pub message: String,
}

struct Ring {
    events: VecDeque<FlightEvent>,
    capacity: usize,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        let capacity = std::env::var("OBS_FLIGHT_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        Mutex::new(Ring {
            events: VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY)),
            capacity,
        })
    })
}

/// Records one event (see also the [`crate::flight_event!`] macro). Subject
/// to the global kill switch like every other recording site.
pub fn record(subsystem: &str, message: impl Into<String>) {
    if !crate::enabled() {
        return;
    }
    let event = FlightEvent {
        ts_unix_ns: crate::unix_now_ns(),
        subsystem: subsystem.to_string(),
        message: message.into(),
    };
    crate::counter("obs.flight.events_total").inc();
    let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    if ring.events.len() == ring.capacity {
        ring.events.pop_front();
    }
    ring.events.push_back(event);
}

/// Snapshot of the retained events, oldest first.
pub fn events() -> Vec<FlightEvent> {
    let ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    ring.events.iter().cloned().collect()
}

/// Empties the recorder (tests and targeted captures).
pub fn clear() {
    let mut ring = ring().lock().unwrap_or_else(|e| e.into_inner());
    ring.events.clear();
}

/// Renders the retained events as JSON lines, oldest first.
pub fn to_json() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for event in events() {
        let _ = writeln!(
            out,
            "{{\"ts_unix_ns\":{},\"subsystem\":\"{}\",\"message\":\"{}\"}}",
            event.ts_unix_ns,
            crate::export::json_escape(&event.subsystem),
            crate::export::json_escape(&event.message),
        );
    }
    out
}

/// Writes the JSON-lines dump to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn dump_to(path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path.as_ref())?;
    file.write_all(to_json().as_bytes())?;
    file.flush()
}

/// Where the panic hook writes its dump: `$OBS_FLIGHT_DIR/` if set (created
/// on demand), else the working directory, named `flight-<pid>.json`.
pub fn default_dump_path() -> PathBuf {
    let name = format!("flight-{}.json", std::process::id());
    match std::env::var_os("OBS_FLIGHT_DIR") {
        Some(dir) if !dir.is_empty() => {
            let dir = PathBuf::from(dir);
            let _ = std::fs::create_dir_all(&dir);
            dir.join(name)
        }
        _ => PathBuf::from(name),
    }
}

/// Installs a panic hook (once per process, chaining the previous hook)
/// that dumps the flight recorder to [`default_dump_path`] before the
/// process dies, so a crash ships its preceding state transitions.
pub fn install_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let path = default_dump_path();
            match dump_to(&path) {
                Ok(()) => eprintln!("flight recorder dumped to {}", path.display()),
                Err(e) => eprintln!("flight recorder dump failed: {e}"),
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_bounded_and_renders_json() {
        record("test", "first event");
        record("test", "second \"quoted\" event");
        let events = events();
        let ours: Vec<&FlightEvent> = events.iter().filter(|e| e.subsystem == "test").collect();
        assert!(ours.len() >= 2);
        assert!(ours[0].ts_unix_ns <= ours[1].ts_unix_ns);

        let json = to_json();
        let line = json
            .lines()
            .find(|l| l.contains("quoted"))
            .expect("event line present");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\\\"quoted\\\""));
        assert!(line.contains("\"subsystem\":\"test\""));
    }

    #[test]
    fn ring_is_bounded() {
        let capacity = ring().lock().unwrap_or_else(|e| e.into_inner()).capacity;
        // Retried because a concurrent test may briefly flip the global kill
        // switch, which silently skips some of our records.
        for _ in 0..5 {
            for i in 0..capacity + 50 {
                record("test.bound", format!("event {i}"));
            }
            let msgs: Vec<String> = events().into_iter().map(|e| e.message).collect();
            assert!(
                msgs.len() <= capacity,
                "{} retained, cap {capacity}",
                msgs.len()
            );
            if msgs.contains(&format!("event {}", capacity + 49)) {
                // Newest survived; oldest must have been evicted.
                assert!(!msgs.contains(&"event 0".to_string()));
                return;
            }
        }
        panic!("newest flight event never retained");
    }

    #[test]
    fn dump_writes_file() {
        record("test.dump", "persist me");
        let path =
            std::env::temp_dir().join(format!("obs-flight-test-{}.json", std::process::id()));
        dump_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("persist me"));
        let _ = std::fs::remove_file(&path);
    }
}
