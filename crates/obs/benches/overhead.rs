//! Overhead of the observability hot paths, enabled vs killed. The
//! acceptance bar: instrumentation costs <10% on a realistic dispatch
//! path, and `obs::disable()` drops recording to near-zero (one relaxed
//! atomic load per site).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// A stand-in for real per-message work (codec + hashing scale).
fn simulated_dispatch(payload: &[u8]) -> u64 {
    let mut acc = 0xcbf29ce484222325u64;
    for &b in payload {
        acc ^= b as u64;
        acc = acc.wrapping_mul(0x100000001b3);
    }
    acc
}

fn bench_metric_sites(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    let payload = vec![7u8; 512];
    let counter = obs::counter("bench.calls");
    let hist = obs::histogram("bench.latency_seconds");

    group.bench_function("baseline_dispatch", |b| {
        b.iter(|| simulated_dispatch(black_box(&payload)))
    });

    obs::enable();
    group.bench_function("instrumented_dispatch_enabled", |b| {
        b.iter(|| {
            counter.inc();
            let r = simulated_dispatch(black_box(&payload));
            hist.record_secs(1e-5);
            r
        })
    });

    obs::disable();
    group.bench_function("instrumented_dispatch_disabled", |b| {
        b.iter(|| {
            counter.inc();
            let r = simulated_dispatch(black_box(&payload));
            hist.record_secs(1e-5);
            r
        })
    });
    obs::enable();

    group.bench_function("counter_inc_enabled", |b| b.iter(|| counter.inc()));
    obs::disable();
    group.bench_function("counter_inc_disabled", |b| b.iter(|| counter.inc()));
    obs::enable();

    group.bench_function("histogram_record_enabled", |b| {
        b.iter(|| hist.record_secs(black_box(1.5e-4)))
    });
    obs::disable();
    group.bench_function("histogram_record_disabled", |b| {
        b.iter(|| hist.record_secs(black_box(1.5e-4)))
    });
    obs::enable();

    group.bench_function("span_start_finish", |b| {
        b.iter(|| obs::Span::start("bench.span").finish())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    targets = bench_metric_sites
}
criterion_main!(benches);
