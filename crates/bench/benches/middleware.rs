//! Middleware benchmarks: broker throughput, ObjectMQ invocation latency,
//! and the unicast-loop vs fanout-multicast notification ablation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mqsim::{ExchangeKind, Message, MessageBroker, QueueOptions};
use objectmq::{Broker, RemoteObject};
use std::time::Duration;
use wire::Value;

fn bench_broker(c: &mut Criterion) {
    let mut group = c.benchmark_group("broker");
    group.throughput(Throughput::Elements(1));

    let broker = MessageBroker::new();
    broker.declare_queue("q", QueueOptions::default()).unwrap();
    let consumer = broker.subscribe("q").unwrap();
    group.bench_function("publish_consume_ack", |b| {
        b.iter(|| {
            broker
                .publish_to_queue("q", Message::from_static(b"payload"))
                .unwrap();
            let d = consumer.recv_timeout(Duration::from_secs(1)).unwrap();
            d.ack();
        })
    });
    group.finish();
}

struct Echo;
impl RemoteObject for Echo {
    fn dispatch(&self, _method: &str, args: &[Value]) -> Result<Value, String> {
        Ok(args.first().cloned().unwrap_or(Value::Null))
    }
}

fn bench_rpc(c: &mut Criterion) {
    let mut group = c.benchmark_group("objectmq");
    group.throughput(Throughput::Elements(1));
    group.sample_size(20);

    let broker = Broker::in_process();
    let _server = broker.bind("echo", Echo).unwrap();
    let proxy = broker.lookup("echo").unwrap();
    group.bench_function("sync_call", |b| {
        b.iter(|| {
            proxy
                .call_sync("m", vec![Value::I64(1)], Duration::from_secs(2), 0)
                .unwrap()
        })
    });
    group.bench_function("async_call_publish", |b| {
        b.iter(|| proxy.call_async("m", vec![Value::I64(1)]).unwrap())
    });
    group.finish();
}

/// Ablation: notifying N listeners by publishing one fanout message vs N
/// separate unicast messages (why the paper's per-workspace fanout
/// exchange matters for change notification).
fn bench_notify(c: &mut Criterion) {
    let mut group = c.benchmark_group("notify_16_listeners");
    group.throughput(Throughput::Elements(16));

    let broker = MessageBroker::new();
    broker.declare_exchange("ws", ExchangeKind::Fanout).unwrap();
    let queues: Vec<String> = (0..16).map(|i| format!("dev-{i}")).collect();
    for q in &queues {
        broker.declare_queue(q, QueueOptions::default()).unwrap();
        broker.bind_queue("ws", "", q).unwrap();
    }
    let payload = vec![0u8; 256];

    group.bench_function("multicast_fanout", |b| {
        b.iter(|| {
            broker
                .publish("ws", "", Message::from_bytes(payload.clone()))
                .unwrap();
        })
    });
    group.bench_function("unicast_loop", |b| {
        b.iter(|| {
            for q in &queues {
                broker
                    .publish_to_queue(q, Message::from_bytes(payload.clone()))
                    .unwrap();
            }
        })
    });
    // Drain so queues do not grow unboundedly across iterations.
    for q in &queues {
        broker.purge_queue(q).unwrap();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_broker, bench_rpc, bench_notify
}
criterion_main!(benches);
