//! Micro-benchmarks of the content substrate and wire codecs.

use content::chunker::{Chunker, ContentDefinedChunker, FixedChunker};
use content::compress::{compress, decompress};
use content::delta::{apply, diff, Signature};
use content::sha1::sha1;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wire::{BinaryCodec, Codec, JsonCodec, Value};
use workload::content_gen;

fn bench_sha1(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha1");
    for size in [4 * 1024, 512 * 1024] {
        let data = content_gen::generate(size, 1, 0.0);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha1(data));
        });
    }
    group.finish();
}

fn bench_chunking(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunking");
    let data = content_gen::generate(4 * 1024 * 1024, 2, 0.5);
    group.throughput(Throughput::Bytes(data.len() as u64));
    let fixed = FixedChunker::new(512 * 1024);
    group.bench_function("fixed_512k", |b| b.iter(|| fixed.chunk(&data)));
    let cdc = ContentDefinedChunker::paper_scale();
    group.bench_function("cdc_paper_scale", |b| b.iter(|| cdc.chunk(&data)));
    group.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    for (label, compressibility) in [("text", 1.0), ("binary", 0.0)] {
        let data = content_gen::generate(512 * 1024, 3, compressibility);
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_function(format!("lzss_{label}"), |b| b.iter(|| compress(&data)));
        let packed = compress(&data);
        group.bench_function(format!("unlzss_{label}"), |b| {
            b.iter(|| decompress(&packed).unwrap())
        });
    }
    group.finish();
}

fn bench_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta");
    let base = content_gen::generate(1024 * 1024, 4, 0.0);
    let mut target = base.clone();
    target[512 * 1024] ^= 0xff;
    group.throughput(Throughput::Bytes(base.len() as u64));
    group.bench_function("signature_1m", |b| {
        b.iter(|| Signature::of(&base, 16 * 1024))
    });
    let sig = Signature::of(&base, 16 * 1024);
    group.bench_function("diff_small_edit", |b| b.iter(|| diff(&sig, &target)));
    let delta = diff(&sig, &target);
    group.bench_function("apply", |b| b.iter(|| apply(&base, &delta).unwrap()));
    group.finish();
}

fn sample_value() -> Value {
    Value::Map(vec![
        ("item".into(), Value::U64(42)),
        ("ws".into(), Value::from("ws-1")),
        ("path".into(), Value::from("docs/report.txt")),
        ("version".into(), Value::U64(3)),
        (
            "chunks".into(),
            Value::List((0..8).map(|i| Value::Bytes(vec![i as u8; 20])).collect()),
        ),
        ("deleted".into(), Value::Bool(false)),
    ])
}

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let value = sample_value();
    // Transport ablation: the Kryo-like binary codec vs JSON.
    group.bench_function("binary_encode", |b| b.iter(|| BinaryCodec.encode(&value)));
    group.bench_function("json_encode", |b| b.iter(|| JsonCodec.encode(&value)));
    let binary = BinaryCodec.encode(&value);
    let json = JsonCodec.encode(&value);
    group.bench_function("binary_decode", |b| {
        b.iter(|| BinaryCodec.decode(&binary).unwrap())
    });
    group.bench_function("json_decode", |b| {
        b.iter(|| JsonCodec.decode(&json).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sha1, bench_chunking, bench_compression, bench_delta, bench_codecs
}
criterion_main!(benches);
