//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. fixed vs content-defined chunking under prepend-modified files (the
//!    boundary-shifting problem);
//! 2. commit throughput through the real SyncService dispatch path;
//! 3. provisioning-policy decision cost (predictive vs reactive).

use content::chunker::{Chunker, ContentDefinedChunker, FixedChunker};
use content::ChunkId;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use metadata::{InMemoryStore, ItemMetadata, MetadataStore};
use objectmq::provision::{GgOneModel, PredictiveProvisioner, ReactiveProvisioner};
use objectmq::RemoteObject;
use stacksync::SyncService;
use std::sync::Arc;
use wire::Value;
use workload::content_gen;

/// Bytes re-uploaded after a 64-byte prepend, per chunker. The benchmark
/// reports time; the printed summary in EXPERIMENTS.md reports the ratio.
fn reupload_bytes(chunker: &dyn Chunker, old: &[u8], new: &[u8]) -> usize {
    let old_ids: std::collections::HashSet<ChunkId> = chunker
        .chunk(old)
        .iter()
        .map(|s| ChunkId::of(&old[s.range()]))
        .collect();
    chunker
        .chunk(new)
        .iter()
        .filter(|s| !old_ids.contains(&ChunkId::of(&new[s.range()])))
        .map(|s| s.len)
        .sum()
}

fn bench_chunking_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunking_prepend_ablation");
    let old = content_gen::generate(2 * 1024 * 1024, 1, 0.0);
    let mut new = vec![0xAB; 64];
    new.extend_from_slice(&old);
    group.throughput(Throughput::Bytes(new.len() as u64));

    let fixed = FixedChunker::new(512 * 1024);
    let cdc = ContentDefinedChunker::paper_scale();
    group.bench_function("fixed", |b| b.iter(|| reupload_bytes(&fixed, &old, &new)));
    group.bench_function("cdc", |b| b.iter(|| reupload_bytes(&cdc, &old, &new)));
    group.finish();
}

fn bench_commit_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("syncservice");
    group.throughput(Throughput::Elements(1));

    let broker = objectmq::Broker::in_process();
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    meta.create_user("bench").unwrap();
    let ws = meta.create_workspace("bench", "ws").unwrap();
    let service = SyncService::builder(&broker).store(meta).build();

    let mut version = 0u64;
    group.bench_function("commit_request_dispatch", |b| {
        b.iter(|| {
            version += 1;
            let item = ItemMetadata {
                version,
                ..ItemMetadata::new_file(1, &ws, "f.txt", vec![], 100, "dev")
            };
            let args = vec![
                Value::from(ws.0.as_str()),
                Value::from("dev"),
                Value::List(vec![stacksync::protocol::item_to_value(&item)]),
            ];
            service.dispatch("commit_request", &args).unwrap()
        })
    });
    group.finish();
}

fn bench_provisioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("provisioning");
    let model = GgOneModel::paper_defaults();
    let mut predictive =
        PredictiveProvisioner::new(model.clone(), std::time::Duration::from_secs(900), 0.95);
    // A month of history.
    for day in 0..30 {
        for slot in 0..96 {
            predictive.observe(slot, (day * slot) as f64 % 120.0);
        }
    }
    let reactive = ReactiveProvisioner::paper_defaults(model.clone());

    group.bench_function("predictive_slot_decision", |b| {
        b.iter(|| predictive.provision_for_slot(42))
    });
    group.bench_function("reactive_check", |b| {
        b.iter(|| reactive.check(130.0, Some(100.0)))
    });
    group.bench_function("ggone_eta", |b| b.iter(|| model.required_instances(142.0)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_chunking_ablation, bench_commit_dispatch, bench_provisioners
}
criterion_main!(benches);
