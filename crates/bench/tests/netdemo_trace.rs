//! Cross-process trace assembly, end to end: runs the real `netdemo`
//! binary (broker + service driver re-execing a writer and a watcher — 3
//! OS processes over TCP loopback), then assembles the three span dumps
//! and checks that commits trace across the wire and that the critical
//! path accounts for the commit's end-to-end latency.

use obs::traceview::{
    assemble, chrome_trace_json, commit_critical_path, parse_dump, Json, ProcessDump,
};
use std::process::Command;

#[test]
fn three_process_commit_assembles_into_one_trace() {
    let dir = std::env::temp_dir().join(format!("netdemo-trace-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let output = Command::new(env!("CARGO_BIN_EXE_netdemo"))
        .args(["--ops", "2", "--trace-dir", dir.to_str().unwrap()])
        .output()
        .expect("run netdemo");
    assert!(
        output.status.success(),
        "netdemo failed:\n{}\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    let mut dumps: Vec<ProcessDump> = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("trace dir") {
        let path = entry.expect("dir entry").path();
        let text = std::fs::read_to_string(&path).expect("read dump");
        dumps.push(parse_dump(&text).expect("parse dump"));
    }
    assert_eq!(dumps.len(), 3, "driver + writer + watcher dumps");

    let traces = assemble(&dumps);
    assert!(!traces.is_empty(), "no traces assembled");

    // The load-bearing claim: at least one trace must span processes, i.e.
    // a client-side root and the server-side handler chain were stitched
    // back together across the TCP hop.
    let cross = traces.iter().filter(|t| t.processes().len() >= 2).count();
    assert!(cross >= 1, "no trace spans more than one process");

    // Every one of the writer's 10 commits (2 op sets x 5 commits) should
    // decompose, and the six segments must account for the end-to-end
    // commit latency within 5%.
    let paths: Vec<_> = traces.iter().filter_map(commit_critical_path).collect();
    assert!(
        paths.len() >= 10,
        "expected >=10 commit critical paths, got {}",
        paths.len()
    );
    for path in &paths {
        let sum = path.segment_sum_secs();
        assert!(
            (sum - path.e2e_secs).abs() <= 0.05 * path.e2e_secs.max(1e-9),
            "segments sum {sum}s vs e2e {}s (trace {:016x})",
            path.e2e_secs,
            path.trace_id
        );
    }

    // The Chrome export of the whole run must be valid JSON with complete
    // ("X") events from at least two distinct processes.
    let chrome = chrome_trace_json(&traces);
    let parsed = Json::parse(&chrome).expect("chrome export parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    let mut pids = std::collections::BTreeSet::new();
    for event in events {
        if event.get("ph").and_then(Json::as_str) == Some("X") {
            pids.insert(event.get("pid").and_then(Json::as_u64).expect("pid"));
        }
    }
    assert!(
        pids.len() >= 2,
        "complete events from only {} process(es)",
        pids.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
