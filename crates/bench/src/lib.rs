//! Shared plumbing for the figure/table harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (run them with `cargo run --release -p bench --bin
//! fig7a` etc.); the Criterion benches under `benches/` cover micro
//! performance and the design-choice ablations called out in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use baselines::{run_trace, ProviderReport, SyncProvider};
use workload::Trace;

/// Formats a byte count as MB with two decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2} MB", bytes as f64 / 1_000_000.0)
}

/// Prints a crude console header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Runs one provider over the trace and returns its report (convenience
/// used by several binaries).
pub fn replay(provider: &mut dyn SyncProvider, trace: &Trace, batch: usize) -> ProviderReport {
    run_trace(provider, trace, batch)
}

/// Renders an ASCII bar scaled to `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Command-line flag helper: `--flag value`.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare flag is present.
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Honors the `--obs-dump <path>` flag shared by every harness binary:
/// writes the metrics snapshot (Prometheus text exposition) followed by the
/// trace ring buffer (JSON lines, prefixed `# spans`) to `path`, plus a
/// standalone span dump (with the process-meta header `traceview`
/// understands) to `<path>.spans.json`. Call once at the end of `main`. No
/// flag, no output; a write failure is reported on stderr but never fails
/// the run.
pub fn obs_dump() {
    let Some(path) = arg_value("--obs-dump") else {
        return;
    };
    let mut out = obs::render_text();
    out.push_str("# spans\n");
    out.push_str(&obs::spans_json());
    match std::fs::write(&path, out) {
        Ok(()) => eprintln!("observability dump written to {path}"),
        Err(e) => eprintln!("failed to write observability dump to {path}: {e}"),
    }
    let spans_path = format!("{path}.spans.json");
    match std::fs::write(
        &spans_path,
        obs::spans_json_with_meta(&obs::process_label()),
    ) {
        Ok(()) => eprintln!("span dump written to {spans_path}"),
        Err(e) => eprintln!("failed to write span dump to {spans_path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_formats() {
        assert_eq!(mb(535_410_000), "535.41 MB");
        assert_eq!(mb(0), "0.00 MB");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
