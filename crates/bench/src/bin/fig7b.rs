//! Fig. 7(b): total protocol overhead (storage + control traffic over the
//! benchmark size) for StackSync and the five commercial Personal Clouds,
//! replaying the generated trace one operation at a time.
//!
//! StackSync appears twice: the closed-form protocol model (fast) and, with
//! `--live`, the real in-process stack (ObjectMQ + SyncService + chunk
//! store) cross-validating the model.

use baselines::{DropboxModel, FullFileModel, StackSyncModel, SyncProvider};
use bench::{arg_value, bar, has_flag, header, mb, replay};
use workload::{GeneratorConfig, Trace};

fn main() {
    let scale: f64 = arg_value("--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let mut config = GeneratorConfig::default();
    config.adds_per_snapshot *= scale;
    let trace = Trace::generate(&config);
    let stats = trace.stats();

    header("Fig 7(b): protocol overhead per service (trace replay, batch = 1)");
    println!(
        "benchmark: {} ops, {} of ADD data",
        trace.ops.len(),
        mb(stats.add_volume)
    );

    let mut providers: Vec<Box<dyn SyncProvider>> = vec![
        Box::new(StackSyncModel::new()),
        Box::new(DropboxModel::new()),
        Box::new(FullFileModel::onedrive()),
        Box::new(FullFileModel::google_drive()),
        Box::new(FullFileModel::box_com()),
        Box::new(FullFileModel::cloud_drive()),
    ];

    println!(
        "\n{:<14} {:>12} {:>12} {:>12} {:>10}",
        "service", "control", "storage", "total", "overhead"
    );
    let mut rows = Vec::new();
    for provider in providers.iter_mut() {
        let report = replay(provider.as_mut(), &trace, 1);
        rows.push((
            report.provider.clone(),
            report.control_total(),
            report.storage_total(),
            report.total(),
            report.overhead_ratio(),
        ));
    }
    let max_total = rows.iter().map(|r| r.3).max().unwrap_or(1) as f64;
    for (name, control, storage, total, overhead) in &rows {
        println!(
            "{name:<14} {:>12} {:>12} {:>12} {:>9.1}%  {}",
            mb(*control),
            mb(*storage),
            mb(*total),
            overhead * 100.0,
            bar(*total as f64, max_total, 30)
        );
    }
    println!("\npaper shape: Dropbox highest overhead (~+150 MB of extra traffic);");
    println!("StackSync low and comparable to the other commercial services.");

    if has_flag("--live") {
        live_stack(&trace, stats.add_volume);
    } else {
        println!("\n(run with --live to cross-validate against the real in-process stack)");
    }
    bench::obs_dump();
}

/// Replays the trace through the real stack and reports measured traffic.
fn live_stack(trace: &Trace, benchmark_bytes: u64) {
    use baselines::FileSet;
    use metadata::{InMemoryStore, MetadataStore};
    use objectmq::Broker;
    use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService};
    use std::sync::Arc;
    use storage::{LatencyModel, SwiftStore};

    header("Fig 7(b) addendum: live StackSync stack (real middleware path)");
    let broker = Broker::in_process();
    let store = SwiftStore::new(LatencyModel::instant());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::builder(&broker).store(meta.clone()).build();
    let _server = service.bind(&broker).expect("bind service");
    let ws = provision_user(meta.as_ref(), "bench", "ws").expect("provision");
    let client =
        DesktopClient::connect(&broker, &store, ClientConfig::new("bench", "replayer"), &ws)
            .expect("connect");

    let mut files = FileSet::new();
    let mut executed = 0usize;
    for op in &trace.ops {
        let (_, new) = files.apply(op);
        match op {
            workload::TraceOp::Add { path, .. } | workload::TraceOp::Update { path, .. } => {
                client
                    .write_file(path, new.expect("content"))
                    .expect("write");
            }
            workload::TraceOp::Remove { path } => {
                client.delete_file(path).expect("delete");
            }
        }
        executed += 1;
    }
    // Wait for all commits to be processed.
    assert!(client.wait(std::time::Duration::from_secs(120), || {
        service.commits_processed() as usize >= executed
    }));
    let control = client.stats().control_bytes();
    let storage_up = store.traffic().uploaded_bytes();
    println!(
        "live stack: control {} | storage {} | total {} | overhead {:+.1}%",
        mb(control),
        mb(storage_up),
        mb(control + storage_up),
        ((control + storage_up) as f64 / benchmark_bytes as f64 - 1.0) * 100.0
    );
    println!(
        "chunks uploaded {} | deduplicated {} | conflicts {}",
        client.stats().chunks_uploaded(),
        client.stats().chunks_deduplicated(),
        client.stats().conflicts()
    );
}
