//! Minimal long-running host for the admin-endpoint CI smoke test.
//!
//! ```sh
//! cargo run -p bench --bin adminhost -- --admin 127.0.0.1:9633 [--duration 30]
//! ```
//!
//! Boots the real server stack — a *durable* `mqsim` broker behind a
//! [`BrokerServer`], a bound `SyncService` over the WAL-backed
//! [`metadata::ShardedStore`] — plus the obs admin endpoint, then commits
//! one small change per 100 ms so `/metrics`, `/spans` and `/healthz` have
//! live data to serve, including the `metadata.wal` and `mqsim.journal`
//! health checks and the `wal.*` metric family. Prints
//! `ADMIN http://<addr>` once the endpoint is up (the smoke script scrapes
//! that line), and exits cleanly after `--duration` seconds (default 30).

use bench::arg_value;
use metadata::{MetadataStore, ShardedStore};
use mqsim::MessageBroker;
use net::BrokerServer;
use objectmq::{Broker, BrokerConfig};
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService};
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::{LatencyModel, SwiftStore};

fn main() {
    let admin_addr = arg_value("--admin").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let duration = arg_value("--duration")
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(30);

    obs::flight::install_panic_hook();

    let wal_root = std::env::temp_dir().join(format!("adminhost-wal-{}", std::process::id()));
    std::fs::remove_dir_all(&wal_root).ok();

    let (mq, _broker_recovery) =
        MessageBroker::open_durable(wal_root.join("mq"), wal::LogConfig::named("adminhost-mq"))
            .expect("open durable broker");
    let server = BrokerServer::bind("127.0.0.1:0", mq.clone()).expect("bind broker server");
    let broker = Broker::new(mq, BrokerConfig::default());
    let (meta, _meta_recovery) = ShardedStore::open_durable(
        wal_root.join("meta"),
        4,
        Duration::ZERO,
        wal::LogConfig::named("adminhost-meta"),
    )
    .expect("open durable store");
    let meta: Arc<dyn MetadataStore> = Arc::new(meta);
    let service = SyncService::builder(&broker).store(meta.clone()).build();
    let _service_handle = service.bind(&broker).expect("bind service");
    let ws = provision_user(meta.as_ref(), "admin-smoke", "ws").expect("provision");

    let admin = obs::serve_admin(&admin_addr[..]).expect("bind admin endpoint");
    println!("broker server on {}", server.local_addr());
    println!("ADMIN http://{}", admin.local_addr());

    // A miniature live UB1 replay (own broker + TCP fleet + autoscaled
    // pool) runs alongside so the `elastic.live.*` metric family is
    // populated while the scraper probes /metrics.
    let live = std::thread::spawn(|| {
        let config = elastic::LiveConfig {
            clients: 16,
            probe_clients: 2,
            probe_interval: Duration::from_millis(20),
            ub1: workload::Ub1Config {
                peak_per_min: 8.0,
                ..workload::Ub1Config::default()
            },
            // One late-morning hour compressed into 15 wall seconds.
            start_minute: 11 * 60,
            duration_minutes: 60,
            compression: 240.0,
            service_delay: Duration::from_millis(5),
            model: objectmq::provision::GgOneModel {
                target_response: 0.100,
                mean_service: 0.005,
                var_interarrival: 0.01,
                var_service: 0.0001,
            },
            drivers: 2,
            drain_timeout: Duration::from_secs(20),
            ..elastic::LiveConfig::default()
        };
        match elastic::run_live(&config) {
            Ok(report) => println!(
                "live replay: {} commits, pool {}..{}, {} violations",
                report.offered,
                report.trough_live,
                report.peak_live,
                report.history_violations.len()
            ),
            Err(e) => eprintln!("live replay skipped: {e}"),
        }
    });

    let store = SwiftStore::new(LatencyModel::instant());
    let client = DesktopClient::connect(
        &broker,
        &store,
        ClientConfig::new("admin-smoke", "smoke-dev"),
        &ws,
    )
    .expect("connect client");

    // A steady trickle of real commits keeps every admin surface non-empty
    // while the scraper probes it. Every WAL-journaled commit feeds the
    // wal.fsync_seconds / wal.group_size metrics the smoke test greps.
    // The write path runs the chunk→hash→compress ingest pipeline and the
    // refcount dedup store, so `content.ingest.*` and `storage.dedup.*`
    // stay live too; periodic delete + GC sweeps exercise orphan
    // collection.
    let gc_token = store
        .authenticate("admin-smoke", "pw-admin-smoke")
        .expect("authenticate");
    let deadline = Instant::now() + Duration::from_secs(duration);
    let mut i = 0u64;
    while Instant::now() < deadline {
        let path = format!("smoke-{}.dat", i % 8);
        let mut payload = vec![0xA5; 1024];
        payload.extend_from_slice(&i.to_be_bytes());
        client.write_file(&path, payload).expect("commit");
        if i % 10 == 9 {
            client.delete_file(&path).expect("delete");
            store
                .gc_chunks(&gc_token, "admin-smoke", "admin-smoke-chunks")
                .expect("gc sweep");
        }
        i += 1;
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("adminhost done: {i} commits served for {duration}s");
    let _ = live.join();
    server.shutdown();
    drop(client);
    drop(service);
    drop(broker);
    drop(meta);
    std::fs::remove_dir_all(&wal_root).ok();
}
