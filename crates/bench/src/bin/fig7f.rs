//! Fig. 7(f): synchronization time as a function of file size (ADD on one
//! device, measured until all six devices are in sync), on the real stack
//! with the LAN latency profile. The paper's observation: growth becomes
//! linear past ~2.5 MB, where transfer time dominates the fixed
//! ObjectMQ+SyncService cost.

use bench::{arg_value, bar, header};
use metadata::{InMemoryStore, MetadataStore};
use objectmq::Broker;
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService};
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::{LatencyModel, SwiftStore};
use workload::content_gen;

const DEVICES: usize = 6;

fn main() {
    let repeats: usize = arg_value("--repeats")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    header("Fig 7(f): sync time vs file size (6 devices, real stack)");
    let broker = Broker::in_process();
    let store = SwiftStore::new(LatencyModel::lan_cluster());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::builder(&broker).store(meta.clone()).build();
    let _server = service.bind(&broker).expect("bind");
    let ws = provision_user(meta.as_ref(), "alice", "ws").expect("provision");

    let clients: Vec<DesktopClient> = (0..DEVICES)
        .map(|i| {
            DesktopClient::connect(
                &broker,
                &store,
                ClientConfig::new("alice", &format!("device-{i}")),
                &ws,
            )
            .expect("connect")
        })
        .collect();

    let sizes_kb: [usize; 9] = [64, 128, 256, 512, 1024, 2048, 4096, 6144, 8192];
    let mut results = Vec::new();
    let mut seed = 1000u64;
    for &kb in &sizes_kb {
        let mut times = Vec::new();
        for r in 0..repeats {
            seed += 1;
            let content = content_gen::generate_default(kb * 1024, seed);
            let path = format!("size-{kb}k-{r}.dat");
            let start = Instant::now();
            clients[0].write_file(&path, content.clone()).expect("add");
            for c in &clients[1..] {
                assert!(
                    c.wait_for_content(&path, &content, Duration::from_secs(60)),
                    "sync timed out at {kb} KB"
                );
            }
            times.push(start.elapsed().as_secs_f64());
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        results.push((kb, mean));
    }

    let max = results.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    println!("\n{:>9} {:>12}", "size", "sync time");
    for (kb, t) in &results {
        println!("{kb:>7}KB {:>10.1}ms  {}", t * 1e3, bar(*t, max, 40));
    }
    println!("\npaper shape: flat-ish for small files (fixed protocol cost");
    println!("dominates), then linear growth once transfer time dominates.");
    // Quantified check: the big end must scale roughly linearly.
    let t4 = results.iter().find(|(kb, _)| *kb == 4096).unwrap().1;
    let t8 = results.iter().find(|(kb, _)| *kb == 8192).unwrap().1;
    println!(
        "linearity check 8MB/4MB time ratio: {:.2} (≈2 expected)",
        t8 / t4
    );
    bench::obs_dump();
}
