//! Machine-readable performance suite: broker throughput, ObjectMQ RPC
//! round-trip latency (in-process vs TCP loopback), and sync commit
//! throughput. Writes `BENCH_2.json` at the repo root so runs can be
//! compared across commits.
//!
//! `--smoke` shrinks every workload to a few iterations for CI; `--out`
//! overrides the output path.

use bench::{arg_value, has_flag, header};
use metadata::{InMemoryStore, MetadataStore};
use mqsim::{Message, MessageBroker, QueueOptions};
use net::{BrokerServer, NetBroker};
use objectmq::{Broker, BrokerConfig};
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService};
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::{LatencyModel, SwiftStore};
use wire::Value;

struct Percentiles {
    p50: f64,
    p99: f64,
    mean: f64,
}

fn percentiles(samples: &mut [f64]) -> Percentiles {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let at = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
    Percentiles {
        p50: at(0.50),
        p99: at(0.99),
        mean: samples.iter().sum::<f64>() / samples.len() as f64,
    }
}

fn broker_throughput(messages: usize) -> f64 {
    let broker = MessageBroker::new();
    broker
        .declare_queue("perf", QueueOptions::default())
        .unwrap();
    let consumer = broker.subscribe("perf").unwrap();
    let payload = vec![0u8; 1024];
    let start = Instant::now();
    let producer_broker = broker.clone();
    let producer = std::thread::spawn(move || {
        for _ in 0..messages {
            producer_broker
                .publish_to_queue("perf", Message::from_bytes(payload.clone()))
                .unwrap();
        }
    });
    for _ in 0..messages {
        consumer
            .recv_timeout(Duration::from_secs(10))
            .expect("consume")
            .ack();
    }
    producer.join().unwrap();
    messages as f64 / start.elapsed().as_secs_f64()
}

fn rpc_latency(broker: &Broker, calls: usize) -> Percentiles {
    let _server = broker
        .bind("perf.echo", |_: &str, args: &[Value]| {
            Ok(args.first().cloned().unwrap_or(Value::Null))
        })
        .unwrap();
    let proxy = broker.lookup("perf.echo").unwrap();
    // Warm up the path (queue declarations, first-delivery laziness).
    for _ in 0..5.min(calls) {
        proxy
            .call_sync("echo", vec![Value::U64(0)], Duration::from_secs(5), 0)
            .unwrap();
    }
    let mut samples = Vec::with_capacity(calls);
    for i in 0..calls {
        let start = Instant::now();
        proxy
            .call_sync(
                "echo",
                vec![Value::U64(i as u64)],
                Duration::from_secs(5),
                0,
            )
            .unwrap();
        samples.push(start.elapsed().as_secs_f64());
    }
    percentiles(&mut samples)
}

fn commit_throughput(commits: usize) -> f64 {
    let broker = Broker::in_process();
    let store = SwiftStore::new(LatencyModel::instant());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::new(meta.clone(), broker.clone());
    let _server = service.bind(&broker).expect("bind service");
    let ws = provision_user(meta.as_ref(), "perf", "ws").expect("provision");
    let client = DesktopClient::connect(&broker, &store, ClientConfig::new("perf", "dev"), &ws)
        .expect("connect");
    let content = vec![7u8; 16 * 1024];
    let start = Instant::now();
    for i in 0..commits {
        client
            .write_file(&format!("f{i}.dat"), content.clone())
            .expect("commit");
    }
    commits as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let smoke = has_flag("--smoke");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_2.json".to_string());
    let (messages, calls, commits) = if smoke {
        (2_000, 200, 50)
    } else {
        (50_000, 2_000, 500)
    };

    header("perf_suite: broker / RPC / commit performance");

    println!("broker publish+consume throughput ({messages} msgs of 1 KiB)...");
    let broker_msgs_per_sec = broker_throughput(messages);
    println!("  {broker_msgs_per_sec:.0} msg/s");

    println!("ObjectMQ sync RPC, in-process ({calls} calls)...");
    let inproc = rpc_latency(&Broker::in_process(), calls);
    println!(
        "  p50 {:.3} ms | p99 {:.3} ms | mean {:.3} ms",
        inproc.p50 * 1e3,
        inproc.p99 * 1e3,
        inproc.mean * 1e3
    );

    println!("ObjectMQ sync RPC, TCP loopback ({calls} calls)...");
    let mq = MessageBroker::new();
    let server = BrokerServer::bind("127.0.0.1:0", mq).expect("bind server");
    let client_mq = NetBroker::connect(server.local_addr()).expect("connect");
    let tcp_broker = Broker::over(Arc::new(client_mq), BrokerConfig::default());
    let tcp = rpc_latency(&tcp_broker, calls);
    println!(
        "  p50 {:.3} ms | p99 {:.3} ms | mean {:.3} ms",
        tcp.p50 * 1e3,
        tcp.p99 * 1e3,
        tcp.mean * 1e3
    );

    println!("sync commit throughput ({commits} commits of 16 KiB)...");
    let commits_per_sec = commit_throughput(commits);
    println!("  {commits_per_sec:.0} commits/s");

    let json = format!(
        concat!(
            "{{\n",
            "  \"suite\": \"perf_suite\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"broker\": {{ \"messages\": {messages}, \"msgs_per_sec\": {broker:.1} }},\n",
            "  \"rpc_in_process\": {{ \"calls\": {calls}, \"p50_s\": {ip50:.9}, ",
            "\"p99_s\": {ip99:.9}, \"mean_s\": {imean:.9} }},\n",
            "  \"rpc_tcp_loopback\": {{ \"calls\": {calls}, \"p50_s\": {tp50:.9}, ",
            "\"p99_s\": {tp99:.9}, \"mean_s\": {tmean:.9} }},\n",
            "  \"commit\": {{ \"commits\": {commits}, \"commits_per_sec\": {cps:.1} }}\n",
            "}}\n"
        ),
        smoke = smoke,
        messages = messages,
        broker = broker_msgs_per_sec,
        calls = calls,
        ip50 = inproc.p50,
        ip99 = inproc.p99,
        imean = inproc.mean,
        tp50 = tcp.p50,
        tp99 = tcp.p99,
        tmean = tcp.mean,
        commits = commits,
        cps = commits_per_sec,
    );
    std::fs::write(&out_path, &json).expect("write results");
    println!("\nresults written to {out_path}");
    server.shutdown();
    bench::obs_dump();
}
