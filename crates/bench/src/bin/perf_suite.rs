//! Machine-readable performance suite: broker throughput and ObjectMQ RPC
//! latency in both the batched and unbatched protocol modes, plus sync
//! commit throughput, metadata-store contention, and the durable commit
//! plane. Writes `BENCH_4.json` (transport), `BENCH_5.json` (metadata
//! sharding), `BENCH_6.json` (connection scaling on the poll-based reactor)
//! and `BENCH_7.json` (WAL group commit + recovery) at the repo root so
//! runs can be compared across commits.
//!
//! The batched/unbatched pairs are measured in the same run so the ratio
//! is meaningful on any machine:
//!
//! * broker: one-at-a-time publish/consume/ack vs `publish_batch_to_queue`
//!   + `recv_batch` + `ack_all` in batches of [`BATCH`];
//! * TCP RPC: `depth` concurrent callers over a loopback [`BrokerServer`]
//!   with the coalescing send path and `AckMany` on vs off.
//!
//! The contention scenario runs 8 writer threads against 8 workspaces in
//! two variants — cpu-bound, and with a modeled ACID back-end transaction
//! latency held inside the commit critical section — against the
//! global-mutex [`InMemoryStore`] and the partitioned
//! [`metadata::ShardedStore`] in the same run.
//!
//! The durable scenario runs the same 8-writer contention workload against
//! [`metadata::ShardedStore::open_durable`] — every commit journaled to a
//! per-shard group-commit WAL and fsynced before acknowledgement — and
//! then measures recovery: reopen-with-replay over the full log, and
//! reopen after a snapshot checkpoint. The WAL lives in `/dev/shm` when
//! available (CI filesystems make fsync absurdly slow or silently async;
//! see DESIGN.md §11), falling back to the system temp dir.
//!
//! The connection-scaling scenario grows a fleet of mostly-idle
//! [`NetBroker`] clients against one [`BrokerServer`] — 256, 2 000, then
//! 10 000 live connections (the larger levels are skipped when the fd
//! limit cannot be raised far enough) — while a small active subset keeps
//! committing through the full sync stack. Per level it records sync
//! commit latency percentiles, resident memory per connection, and whether
//! the reactor actually sustained the fleet.
//!
//! `--smoke` shrinks every workload to a few iterations for CI (and caps
//! the connection scenario at 2 000 connections); `--out` /
//! `--out-contention` / `--out-conn` / `--out-durable` override the output
//! paths; `--gate` exits nonzero if the batched mode fails to beat the
//! unbatched mode, the sharded store falls below the global store, the
//! durable sharded store falls below 60% of the non-durable sharded store,
//! or the reactor fails to sustain an attempted connection level (or its
//! commit p99 collapses relative to the smallest level), measured in the
//! same run (relative gates, so they are robust to machine speed).

use bench::{arg_value, has_flag, header};
use metadata::{InMemoryStore, ItemMetadata, MetadataStore, ShardedStore};
use mqsim::{Delivery, Message, MessageBroker, QueueOptions};
use net::{BrokerServer, NetBroker, NetConfig, ServerConfig};
use objectmq::{Broker, BrokerConfig};
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService};
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::{LatencyModel, SwiftStore};
use wire::Value;

/// Messages per `publish_batch_to_queue` / `recv_batch` in batched mode.
const BATCH: usize = 64;
/// Concurrent in-flight RPC callers against the loopback server.
const PIPELINE_DEPTH: usize = 32;
/// Per-caller pacing of the pipelined RPC phase. A fully saturated closed
/// loop measures throughput and scheduler fairness, not latency (by
/// Little's law its mean is just `depth / throughput`, and its median
/// rewards whichever mode starves some callers to rush others). Pacing
/// each caller to one call per this interval keeps the offered load
/// below saturation so percentiles reflect actual response latency at
/// equal load in both modes.
const CALL_PACING: Duration = Duration::from_millis(4);

struct Percentiles {
    p50: f64,
    p99: f64,
    mean: f64,
}

fn percentiles(samples: &mut [f64]) -> Percentiles {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let at = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
    Percentiles {
        p50: at(0.50),
        p99: at(0.99),
        mean: samples.iter().sum::<f64>() / samples.len() as f64,
    }
}

/// Publish+consume+ack throughput over one in-process queue. `batch == 1`
/// is the one-lock-per-message protocol; larger batches amortize the queue
/// lock over `batch` messages on both sides.
fn broker_throughput(messages: usize, batch: usize) -> f64 {
    let broker = MessageBroker::new();
    broker
        .declare_queue("perf", QueueOptions::default())
        .unwrap();
    let consumer = broker.subscribe("perf").unwrap();
    let payload = vec![0u8; 1024];
    let start = Instant::now();
    let producer_broker = broker.clone();
    let producer = std::thread::spawn(move || {
        if batch <= 1 {
            for _ in 0..messages {
                producer_broker
                    .publish_to_queue("perf", Message::from_bytes(payload.clone()))
                    .unwrap();
            }
        } else {
            let mut left = messages;
            while left > 0 {
                let n = left.min(batch);
                let group: Vec<Message> = (0..n)
                    .map(|_| Message::from_bytes(payload.clone()))
                    .collect();
                producer_broker
                    .publish_batch_to_queue("perf", group)
                    .unwrap();
                left -= n;
            }
        }
    });
    let mut got = 0usize;
    while got < messages {
        if batch <= 1 {
            consumer
                .recv_timeout(Duration::from_secs(10))
                .expect("consume")
                .ack();
            got += 1;
        } else {
            let deliveries = consumer
                .recv_batch(Duration::from_secs(10), batch)
                .expect("consume batch");
            got += deliveries.len();
            Delivery::ack_all(deliveries);
        }
    }
    producer.join().unwrap();
    messages as f64 / start.elapsed().as_secs_f64()
}

/// Sequential round-trip latency through one proxy.
fn rpc_latency(broker: &Broker, calls: usize) -> Percentiles {
    let _server = broker
        .bind("perf.echo", |_: &str, args: &[Value]| {
            Ok(args.first().cloned().unwrap_or(Value::Null))
        })
        .unwrap();
    let proxy = broker.lookup("perf.echo").unwrap();
    // Warm up the path (queue declarations, first-delivery laziness).
    for _ in 0..5.min(calls) {
        proxy
            .call_sync("echo", vec![Value::U64(0)], Duration::from_secs(5), 0)
            .unwrap();
    }
    let mut samples = Vec::with_capacity(calls);
    for i in 0..calls {
        let start = Instant::now();
        proxy
            .call_sync(
                "echo",
                vec![Value::U64(i as u64)],
                Duration::from_secs(5),
                0,
            )
            .unwrap();
        samples.push(start.elapsed().as_secs_f64());
    }
    percentiles(&mut samples)
}

/// Round-trip latency with `depth` concurrent callers against a pool of
/// `depth` echo instances (competing consumers on one request queue), so
/// the transport — not a single serial handler — is the bottleneck. This
/// is the pipelined load where coalesced writes and batched acks pay off:
/// every frame from every caller and server instance multiplexes one TCP
/// connection. Each caller owns a proxy, paces its calls at
/// [`CALL_PACING`] so the percentiles measure latency rather than
/// saturation fairness, and per-call latencies are pooled.
fn pipelined_rpc_latency(broker: &Broker, calls: usize, depth: usize) -> Percentiles {
    let _servers: Vec<_> = (0..depth)
        .map(|_| {
            broker
                .bind("perf.echo", |_: &str, args: &[Value]| {
                    Ok(args.first().cloned().unwrap_or(Value::Null))
                })
                .unwrap()
        })
        .collect();
    let per_caller = (calls / depth).max(1);
    let mut handles = Vec::with_capacity(depth);
    for _ in 0..depth {
        let proxy = broker.lookup("perf.echo").unwrap();
        handles.push(std::thread::spawn(move || {
            proxy
                .call_sync("echo", vec![Value::U64(0)], Duration::from_secs(5), 0)
                .unwrap();
            let mut samples = Vec::with_capacity(per_caller);
            let base = Instant::now();
            for i in 0..per_caller {
                // Paced, not back-to-back: sleep until this call's slot.
                // No debt is carried — a slow call just shifts later
                // slots, it does not trigger a catch-up burst.
                let due = base + CALL_PACING * i as u32;
                let now = Instant::now();
                if now < due {
                    std::thread::sleep(due - now);
                }
                let start = Instant::now();
                proxy
                    .call_sync(
                        "echo",
                        vec![Value::U64(i as u64)],
                        Duration::from_secs(5),
                        0,
                    )
                    .unwrap();
                samples.push(start.elapsed().as_secs_f64());
            }
            samples
        }));
    }
    let mut samples = Vec::with_capacity(per_caller * depth);
    for handle in handles {
        samples.extend(handle.join().unwrap());
    }
    percentiles(&mut samples)
}

/// Loopback server + client in the given protocol mode, handed to `f`.
fn with_loopback<T>(batch: bool, f: impl FnOnce(&Broker) -> T) -> T {
    let server_config = ServerConfig {
        batch,
        ..ServerConfig::default()
    };
    let client_config = NetConfig {
        batch,
        ..NetConfig::default()
    };
    let server =
        BrokerServer::bind_with("127.0.0.1:0", MessageBroker::new(), server_config).unwrap();
    let client = NetBroker::connect_with(server.local_addr(), client_config).unwrap();
    let broker = Broker::over(Arc::new(client), BrokerConfig::default());
    let result = f(&broker);
    server.shutdown();
    result
}

fn commit_throughput(commits: usize) -> f64 {
    let broker = Broker::in_process();
    let store = SwiftStore::new(LatencyModel::instant());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::builder(&broker).store(meta.clone()).build();
    let _server = service.bind(&broker).expect("bind service");
    let ws = provision_user(meta.as_ref(), "perf", "ws").expect("provision");
    let client = DesktopClient::connect(&broker, &store, ClientConfig::new("perf", "dev"), &ws)
        .expect("connect");
    let content = vec![7u8; 16 * 1024];
    let start = Instant::now();
    for i in 0..commits {
        client
            .write_file(&format!("f{i}.dat"), content.clone())
            .expect("commit");
    }
    commits as f64 / start.elapsed().as_secs_f64()
}

/// Writers and workspaces of the metadata contention scenario (one writer
/// per workspace, so commits never conflict and the store's lock protocol
/// is the only serialization).
const CONTENTION_WRITERS: usize = 8;
/// Shards of the [`ShardedStore`] under test.
const CONTENTION_SHARDS: usize = 8;
/// Modeled ACID back-end in-transaction time for the `txn_latency`
/// contention variant: the row locks PostgreSQL would hold across the
/// round trip, spent inside the store's commit critical section. The
/// global mutex serializes this across all workspaces; shards only
/// serialize it within a workspace's partition.
const TXN_LATENCY: Duration = Duration::from_micros(200);

/// Multi-workspace commit throughput against one store: each writer thread
/// hammers its own workspace with sequential versions of its own item.
fn contention_throughput(
    meta: Arc<dyn MetadataStore>,
    writers: usize,
    commits_per_writer: usize,
) -> f64 {
    meta.create_user("perf").expect("fresh store");
    let workspaces: Vec<_> = (0..writers)
        .map(|w| {
            meta.create_workspace("perf", &format!("w{w}"))
                .expect("workspace")
        })
        .collect();
    let start = Instant::now();
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let meta = meta.clone();
            let ws = workspaces[w].clone();
            std::thread::spawn(move || {
                for version in 1..=commits_per_writer as u64 {
                    let item = ItemMetadata {
                        version,
                        ..ItemMetadata::new_file(
                            w as u64,
                            &ws,
                            &format!("f{w}.dat"),
                            vec![],
                            1,
                            &format!("dev-{w}"),
                        )
                    };
                    let out = meta.commit(&ws, vec![item]).expect("commit");
                    assert!(out[0].is_committed(), "uncontended chain must commit");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    (writers * commits_per_writer) as f64 / start.elapsed().as_secs_f64()
}

struct ContentionPair {
    global: f64,
    sharded: f64,
}

impl ContentionPair {
    fn speedup(&self) -> f64 {
        self.sharded / self.global
    }
}

fn contention_scenario(commits_per_writer: usize, latency: Duration) -> ContentionPair {
    let global: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::with_commit_latency(latency));
    let sharded: Arc<dyn MetadataStore> = Arc::new(ShardedStore::with_shards_and_latency(
        CONTENTION_SHARDS,
        latency,
    ));
    ContentionPair {
        global: contention_throughput(global, CONTENTION_WRITERS, commits_per_writer),
        sharded: contention_throughput(sharded, CONTENTION_WRITERS, commits_per_writer),
    }
}

/// What the durable scenario measured.
struct DurableNumbers {
    /// Non-durable sharded commits/s, same run (the gate's denominator).
    sharded: f64,
    /// WAL-backed sharded commits/s, every commit fsynced before ack.
    durable: f64,
    /// WAL records replayed by the post-run reopen.
    replayed: u64,
    /// Reopen time replaying the full log (no snapshot).
    replay_open: Duration,
    /// Reopen time after a snapshot checkpoint truncated the logs.
    checkpoint_open: Duration,
}

/// The contention workload against the durable store, plus recovery timing.
///
/// Both stores run with the [`TXN_LATENCY`] modeled back-end — the variant
/// the PR 5 sharding gate measures — so the ratio answers the question the
/// gate asks: how much of the sharded ACID-backed commit rate survives
/// journaling? (Against the cpu-bound in-memory store the comparison is
/// meaningless: any fsync at all loses to a pure memcpy.)
///
/// The WAL root prefers `/dev/shm`: this scenario compares lock/group-commit
/// protocols, and a CI filesystem's fsync pathology (or lack of real
/// durability) would swamp that signal.
fn durable_scenario(commits_per_writer: usize) -> DurableNumbers {
    let base = if std::path::Path::new("/dev/shm").is_dir() {
        std::path::PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    let root = base.join(format!("perf-suite-durable-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();

    let sharded: Arc<dyn MetadataStore> = Arc::new(ShardedStore::with_shards_and_latency(
        CONTENTION_SHARDS,
        TXN_LATENCY,
    ));
    let sharded_rate = contention_throughput(sharded, CONTENTION_WRITERS, commits_per_writer);

    let open = || {
        ShardedStore::open_durable(
            &root,
            CONTENTION_SHARDS,
            TXN_LATENCY,
            wal::LogConfig::named("perf"),
        )
        .expect("open durable store")
    };
    let (store, _) = open();
    let store = Arc::new(store);
    let durable_rate = contention_throughput(
        store.clone() as Arc<dyn MetadataStore>,
        CONTENTION_WRITERS,
        commits_per_writer,
    );

    drop(store);
    let start = Instant::now();
    let (store, recovery) = open();
    let replay_open = start.elapsed();
    store.checkpoint().expect("checkpoint");
    drop(store);
    let start = Instant::now();
    let (store, _) = open();
    let checkpoint_open = start.elapsed();
    drop(store);
    std::fs::remove_dir_all(&root).ok();

    DurableNumbers {
        sharded: sharded_rate,
        durable: durable_rate,
        replayed: recovery.replayed,
        replay_open,
        checkpoint_open,
    }
}

/// Connection levels of the scaling scenario (total live connections:
/// idle fleet + active committers).
const CONN_LEVELS: [usize; 3] = [256, 2_000, 10_000];
/// Levels attempted under `--smoke` (CI hardware and CI fd limits).
const CONN_LEVELS_SMOKE: [usize; 2] = [256, 2_000];
/// Clients of the fleet that actively commit while the rest idle.
const ACTIVE_CLIENTS: usize = 32;
/// Threads used to build the idle fleet.
const FLEET_BUILDERS: usize = 8;
/// Fds one live connection costs in this single-process benchmark: client
/// stream + writer clone, plus server stream + reader and writer clones.
const FDS_PER_CONN: u64 = 5;

/// Resident set size in KiB, from `/proc/self/status` (0 if unreadable).
fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .unwrap_or_default()
        .lines()
        .find_map(|line| {
            line.strip_prefix("VmRSS:")
                .and_then(|rest| rest.trim().strip_suffix("kB"))
                .and_then(|n| n.trim().parse().ok())
        })
        .unwrap_or(0)
}

struct ConnLevel {
    conns: usize,
    /// `false` when the fd limit could not be raised far enough to try.
    attempted: bool,
    /// Wall time to grow the idle fleet to this level.
    grow_s: f64,
    /// The server held `conns` live connections through the commit phase.
    sustained: bool,
    /// RSS growth per added connection while growing the fleet.
    rss_kb_per_conn: f64,
    /// Sync commit latency through the loaded reactor.
    commit: Percentiles,
}

/// Grows an idle [`NetBroker`] fleet level by level against one reactor
/// server while [`ACTIVE_CLIENTS`] desktop clients keep committing through
/// the full sync stack; measures commit latency and memory per connection
/// at every level.
fn connection_scaling(levels: &[usize], commits_per_client: usize) -> Vec<ConnLevel> {
    let mq = MessageBroker::new();
    let server = BrokerServer::bind("127.0.0.1:0", mq.clone()).expect("bind server");
    let addr = server.local_addr();
    let service_broker = Broker::new(mq, BrokerConfig::default());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::builder(&service_broker)
        .store(meta.clone())
        .build();
    let _service_handle = service.bind(&service_broker).expect("bind service");
    let store = SwiftStore::new(LatencyModel::instant());

    // One ping per idle connection per second: a realistic keepalive load
    // at 10k connections without drowning the loop in heartbeat traffic.
    let fleet_config = NetConfig {
        heartbeat: Duration::from_secs(1),
        ..NetConfig::default()
    };

    let active: Vec<Arc<DesktopClient>> = (0..ACTIVE_CLIENTS)
        .map(|i| {
            let user = format!("u{i}");
            let ws = provision_user(meta.as_ref(), &user, "ws").expect("provision");
            let net = NetBroker::connect_with(addr, fleet_config.clone()).expect("dial active");
            let broker = Broker::over(Arc::new(net), BrokerConfig::default());
            Arc::new(
                DesktopClient::connect(&broker, &store, ClientConfig::new(&user, "dev"), &ws)
                    .expect("connect active client"),
            )
        })
        .collect();

    let mut idle: Vec<NetBroker> = Vec::new();
    let mut results = Vec::new();
    for &level in levels {
        // Each level needs its fds up front; raise the soft limit toward
        // the hard limit and skip the level honestly if that is not enough
        // (CI containers often cap the hard limit).
        let needed = level as u64 * FDS_PER_CONN + 1_024;
        let available = libc::raise_nofile_limit(needed)
            .or_else(|_| libc::nofile_limit().map(|(soft, _)| soft))
            .unwrap_or(0);
        if available < needed {
            println!("  {level} conns: SKIPPED (fd limit {available} < {needed} needed)");
            results.push(ConnLevel {
                conns: level,
                attempted: false,
                grow_s: 0.0,
                sustained: false,
                rss_kb_per_conn: 0.0,
                commit: Percentiles {
                    p50: 0.0,
                    p99: 0.0,
                    mean: 0.0,
                },
            });
            continue;
        }

        let target_idle = level.saturating_sub(ACTIVE_CLIENTS).max(idle.len());
        let adding = target_idle - idle.len();
        let rss_before = rss_kb();
        let grow_started = Instant::now();
        if adding > 0 {
            let mut builders = Vec::new();
            for b in 0..FLEET_BUILDERS {
                let count = adding / FLEET_BUILDERS + usize::from(b < adding % FLEET_BUILDERS);
                let config = fleet_config.clone();
                builders.push(std::thread::spawn(move || {
                    (0..count)
                        .map(|_| NetBroker::connect_with(addr, config.clone()).expect("dial idle"))
                        .collect::<Vec<_>>()
                }));
            }
            for builder in builders {
                idle.extend(builder.join().expect("fleet builder"));
            }
        }
        let grow_s = grow_started.elapsed().as_secs_f64();
        let rss_kb_per_conn = if adding > 0 {
            (rss_kb().saturating_sub(rss_before)) as f64 / adding as f64
        } else {
            0.0
        };

        let expected = target_idle + ACTIVE_CLIENTS;
        let sustained_before = wait_for(Duration::from_secs(30), || {
            server.live_connections() >= expected
        });

        // Active subset commits through the loaded loop, paced like the
        // RPC scenario so percentiles measure latency, not saturation.
        let mut handles = Vec::new();
        for (c, client) in active.iter().enumerate() {
            let client = client.clone();
            handles.push(std::thread::spawn(move || {
                let mut samples = Vec::with_capacity(commits_per_client);
                let content = vec![0x5Au8; 4 * 1024];
                let base = Instant::now();
                for i in 0..commits_per_client {
                    let due = base + CALL_PACING * i as u32;
                    let now = Instant::now();
                    if now < due {
                        std::thread::sleep(due - now);
                    }
                    let start = Instant::now();
                    client
                        .write_file(&format!("l{level}-c{c}-{i}.dat"), content.clone())
                        .expect("commit under load");
                    samples.push(start.elapsed().as_secs_f64());
                }
                samples
            }));
        }
        let mut samples = Vec::with_capacity(ACTIVE_CLIENTS * commits_per_client);
        for handle in handles {
            samples.extend(handle.join().expect("committer"));
        }
        let commit = percentiles(&mut samples);

        // Still holding the whole fleet after the commit phase (brief
        // grace for reconnect blips under CI contention).
        let sustained = sustained_before
            && wait_for(Duration::from_secs(10), || {
                server.live_connections() >= expected
            });

        println!(
            "  {level} conns: grew in {grow_s:.1}s | sustained: {sustained} | \
             {rss_kb_per_conn:.0} KiB/conn | commit p50 {:.3} ms p99 {:.3} ms",
            commit.p50 * 1e3,
            commit.p99 * 1e3,
        );
        results.push(ConnLevel {
            conns: level,
            attempted: true,
            grow_s,
            sustained,
            rss_kb_per_conn,
            commit,
        });
    }
    drop(active);
    drop(idle);
    server.shutdown();
    // Let the shared client reactor finish unwinding the fleet's sources
    // before the next scenario starts timing anything: thousands of
    // connections tearing down in the background would skew its numbers.
    wait_for(Duration::from_secs(10), || {
        net::client_reactor_registrations() == 0
    });
    results
}

/// One measured point of the ingest scenario.
struct IngestPoint {
    size: usize,
    workers: usize,
    mbps: f64,
}

/// Results of the content-plane ingest scenario (BENCH_9).
struct IngestResults {
    /// Single-thread chunk + SHA-1 loop — the seed ingest path.
    scalar: Vec<IngestPoint>,
    /// FastHash staged pipeline at several worker counts.
    pipeline: Vec<IngestPoint>,
    /// One-shot SHA-1 over a 4 MB buffer, MB/s.
    sha1_hash_mbps: f64,
    /// One-shot FastHash over the same buffer, MB/s.
    fasthash_mbps: f64,
    /// Workload-trace dedup replay.
    dedup: workload::DedupReport,
}

/// Worker counts measured for the pipeline.
const INGEST_WORKERS: &[usize] = &[1, 2, 4];
/// Buffer for the one-shot hash-algorithm comparison (a typical large
/// chunk span).
const HASH_PROBE_BYTES: usize = 4 * 1024 * 1024;

/// Deterministic pseudo-random fill — content does not affect hash or
/// chunk speed, but incompressible bytes keep any compression stage
/// honest.
fn ingest_payload(size: usize) -> bytes::Bytes {
    let mut data = vec![0u8; size];
    let mut x = 0x243f_6a88_85a3_08d3u64;
    for b in data.iter_mut() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *b = x as u8;
    }
    bytes::Bytes::from(data)
}

fn best_mbps(size: usize, reps: usize, mut run: impl FnMut() -> Duration) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        best = best.min(run().as_secs_f64());
    }
    size as f64 / best / 1e6
}

/// Measures ingest throughput: the scalar chunk+SHA-1 loop (the paper's
/// client, single thread) against the staged FastHash pipeline at
/// [`INGEST_WORKERS`], over files of `sizes`; plus a one-shot hash
/// algorithm comparison and a workload dedup replay.
fn ingest_scenario(sizes: &[usize], reps: usize, smoke: bool) -> IngestResults {
    use content::chunker::{Chunker, FixedChunker};
    use content::pipeline::{IngestPipeline, PipelineConfig};
    use content::{ChunkId, Fingerprint};

    let chunk_size = content::DEFAULT_CHUNK_SIZE;
    let mut scalar = Vec::new();
    let mut pipeline = Vec::new();

    for &size in sizes {
        let data = ingest_payload(size);
        let chunker = FixedChunker::new(chunk_size);
        let mbps = best_mbps(size, reps, || {
            let start = Instant::now();
            let spans = chunker.chunk(&data);
            let ids: Vec<ChunkId> = spans
                .iter()
                .map(|s| ChunkId::of(&data[s.range()]))
                .collect();
            assert!(!ids.is_empty());
            start.elapsed()
        });
        println!("  scalar sha1      {:>9} B: {mbps:>8.1} MB/s", size);
        scalar.push(IngestPoint {
            size,
            workers: 1,
            mbps,
        });

        for &workers in INGEST_WORKERS {
            let pipe = IngestPipeline::new(
                std::sync::Arc::new(FixedChunker::new(chunk_size)),
                PipelineConfig {
                    workers,
                    fingerprint: Fingerprint::FastHash,
                    compression: None,
                },
            );
            let mbps = best_mbps(size, reps, || {
                let report = pipe.ingest(data.clone());
                assert_eq!(report.logical_bytes, size as u64);
                report.elapsed
            });
            println!("  pipeline w={workers}     {:>9} B: {mbps:>8.1} MB/s", size);
            pipeline.push(IngestPoint {
                size,
                workers,
                mbps,
            });
        }
    }

    let probe = ingest_payload(HASH_PROBE_BYTES);
    let sha1_hash_mbps = best_mbps(HASH_PROBE_BYTES, reps.max(3), || {
        let start = Instant::now();
        std::hint::black_box(content::sha1::sha1(&probe));
        start.elapsed()
    });
    let fasthash_mbps = best_mbps(HASH_PROBE_BYTES, reps.max(3), || {
        let start = Instant::now();
        std::hint::black_box(content::fasthash::hash(&probe));
        start.elapsed()
    });
    println!(
        "  hash 4MB one-shot: sha1 {sha1_hash_mbps:.1} MB/s | fasthash {fasthash_mbps:.1} MB/s \
         ({:.2}x)",
        fasthash_mbps / sha1_hash_mbps
    );

    // Dedup replay: the generated trace through chunk/hash/compress and
    // the refcount tracker.
    let (gen_config, replay_config) = if smoke {
        (
            workload::GeneratorConfig::test_scale(),
            workload::ReplayConfig {
                chunk_size: 1024,
                ..workload::ReplayConfig::default()
            },
        )
    } else {
        (
            workload::GeneratorConfig::default(),
            workload::ReplayConfig::default(),
        )
    };
    let trace = workload::Trace::generate(&gen_config);
    let dedup = workload::dedup::replay(&trace, &replay_config);
    println!("  {}", dedup.render());

    IngestResults {
        scalar,
        pipeline,
        sha1_hash_mbps,
        fasthash_mbps,
        dedup,
    }
}

/// Runs the ingest scenario, writes `BENCH_9.json`, and enforces the
/// relative gates: FastHash ≥ 3x SHA-1 one-shot, the pipeline at the
/// highest worker count ≥ 2x the scalar loop on the largest file, and a
/// dedup ratio above 1.0.
fn run_ingest(smoke: bool, gate: bool, out_path: &str) {
    let sizes: &[usize] = if smoke {
        &[64 * 1024, 1024 * 1024, 4 * 1024 * 1024]
    } else {
        &[64 * 1024, 1024 * 1024, 16 * 1024 * 1024, 64 * 1024 * 1024]
    };
    let reps = if smoke { 2 } else { 3 };
    println!(
        "content-plane ingest ({} file sizes up to {} MB, pipeline workers {INGEST_WORKERS:?})...",
        sizes.len(),
        sizes.last().unwrap() / (1024 * 1024)
    );
    let r = ingest_scenario(sizes, reps, smoke);

    let fmt_points = |points: &[IngestPoint]| {
        points
            .iter()
            .map(|p| {
                format!(
                    "    {{ \"size\": {}, \"workers\": {}, \"mbps\": {:.1} }}",
                    p.size, p.workers, p.mbps
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"suite\": \"perf_suite.ingest\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"chunk_size\": {chunk},\n",
            "  \"hash_one_shot\": {{ \"bytes\": {probe}, \"sha1_mbps\": {sm:.1}, ",
            "\"fasthash_mbps\": {fm:.1}, \"speedup\": {sp:.3} }},\n",
            "  \"scalar_sha1\": [\n{scalar}\n  ],\n",
            "  \"pipeline_fasthash\": [\n{pipeline}\n  ],\n",
            "  \"dedup\": {{ \"ops\": {ops}, \"logical_bytes\": {lb}, \"stored_bytes\": {sb}, ",
            "\"ratio\": {ratio:.3}, \"chunk_writes\": {cw}, \"dedup_hits\": {dh}, ",
            "\"gc_reclaimed_bytes\": {gc} }}\n",
            "}}\n"
        ),
        smoke = smoke,
        chunk = content::DEFAULT_CHUNK_SIZE,
        probe = HASH_PROBE_BYTES,
        sm = r.sha1_hash_mbps,
        fm = r.fasthash_mbps,
        sp = r.fasthash_mbps / r.sha1_hash_mbps,
        scalar = fmt_points(&r.scalar),
        pipeline = fmt_points(&r.pipeline),
        ops = r.dedup.ops,
        lb = r.dedup.logical_bytes_written,
        sb = r.dedup.bytes_stored,
        ratio = r.dedup.ratio(),
        cw = r.dedup.chunk_writes,
        dh = r.dedup.dedup_hits,
        gc = r.dedup.gc_reclaimed_bytes,
    );
    std::fs::write(out_path, &json).expect("write ingest results");
    println!("ingest results written to {out_path}");

    if !gate {
        return;
    }
    let hash_speedup = r.fasthash_mbps / r.sha1_hash_mbps;
    if hash_speedup < 3.0 {
        eprintln!(
            "GATE FAILED: fasthash one-shot {:.0} MB/s is only {hash_speedup:.2}x SHA-1's \
             {:.0} MB/s (need 3x) in the same run",
            r.fasthash_mbps, r.sha1_hash_mbps
        );
        std::process::exit(1);
    }
    let largest = *sizes.last().unwrap();
    let scalar_large = r
        .scalar
        .iter()
        .find(|p| p.size == largest)
        .map(|p| p.mbps)
        .unwrap_or(f64::MAX);
    let pipeline_large = r
        .pipeline
        .iter()
        .filter(|p| p.size == largest)
        .map(|p| p.mbps)
        .fold(0.0f64, f64::max);
    if pipeline_large < 2.0 * scalar_large {
        eprintln!(
            "GATE FAILED: pipeline ingest {pipeline_large:.0} MB/s is under 2x the scalar \
             SHA-1 loop's {scalar_large:.0} MB/s on {largest} B files in the same run"
        );
        std::process::exit(1);
    }
    if r.dedup.ratio() <= 1.0 {
        eprintln!(
            "GATE FAILED: workload dedup ratio {:.3} did not beat 1.0",
            r.dedup.ratio()
        );
        std::process::exit(1);
    }
    println!(
        "ingest gate passed: fasthash {hash_speedup:.2}x sha1, pipeline {:.2}x scalar on \
         {} MB files, dedup ratio {:.2}x",
        pipeline_large / scalar_large,
        largest / (1024 * 1024),
        r.dedup.ratio()
    );
}

/// Polls `cond` until it holds or `timeout` elapses; returns whether it held.
fn wait_for(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn main() {
    let smoke = has_flag("--smoke");
    let gate = has_flag("--gate");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_4.json".to_string());
    let contention_path =
        arg_value("--out-contention").unwrap_or_else(|| "BENCH_5.json".to_string());
    let conn_path = arg_value("--out-conn").unwrap_or_else(|| "BENCH_6.json".to_string());
    let durable_path = arg_value("--out-durable").unwrap_or_else(|| "BENCH_7.json".to_string());
    let ingest_path = arg_value("--out-ingest").unwrap_or_else(|| "BENCH_9.json".to_string());
    let (messages, calls, commits, contention_commits, conn_commits) = if smoke {
        (2_000, 320, 50, 100, 40)
    } else {
        (50_000, 3_200, 500, 800, 100)
    };
    let conn_levels: &[usize] = if smoke {
        &CONN_LEVELS_SMOKE
    } else {
        &CONN_LEVELS
    };

    header("perf_suite: broker / RPC / commit performance");

    // `--admin <addr>` exposes /metrics, /healthz, /spans and /snapshot
    // live while the suite runs (the fleet-observability smoke test scrapes
    // them under load).
    let _admin = arg_value("--admin").map(|a| {
        let admin = obs::serve_admin(&a[..]).expect("bind admin endpoint");
        println!("admin endpoint on http://{}", admin.local_addr());
        admin
    });

    // `--ingest-only` runs just the content-plane scenario (the CI
    // ingest-bench job); the full suite also runs it, after the
    // transport/commit scenarios.
    if has_flag("--ingest-only") {
        run_ingest(smoke, gate, &ingest_path);
        bench::obs_dump();
        return;
    }

    println!("broker throughput, unbatched ({messages} msgs of 1 KiB)...");
    let broker_unbatched = broker_throughput(messages, 1);
    println!("  {broker_unbatched:.0} msg/s");
    println!("broker throughput, batched x{BATCH} ({messages} msgs of 1 KiB)...");
    let broker_batched = broker_throughput(messages, BATCH);
    println!(
        "  {broker_batched:.0} msg/s ({:.2}x)",
        broker_batched / broker_unbatched
    );

    println!("ObjectMQ sync RPC, in-process ({calls} calls)...");
    let inproc = rpc_latency(&Broker::in_process(), calls);
    println!(
        "  p50 {:.3} ms | p99 {:.3} ms | mean {:.3} ms",
        inproc.p50 * 1e3,
        inproc.p99 * 1e3,
        inproc.mean * 1e3
    );

    println!(
        "ObjectMQ RPC, TCP loopback, depth {PIPELINE_DEPTH}, unbatched protocol ({calls} calls)..."
    );
    let tcp_unbatched = with_loopback(false, |b| pipelined_rpc_latency(b, calls, PIPELINE_DEPTH));
    println!(
        "  p50 {:.3} ms | p99 {:.3} ms | mean {:.3} ms",
        tcp_unbatched.p50 * 1e3,
        tcp_unbatched.p99 * 1e3,
        tcp_unbatched.mean * 1e3
    );
    println!(
        "ObjectMQ RPC, TCP loopback, depth {PIPELINE_DEPTH}, batched protocol ({calls} calls)..."
    );
    let tcp_batched = with_loopback(true, |b| pipelined_rpc_latency(b, calls, PIPELINE_DEPTH));
    println!(
        "  p50 {:.3} ms | p99 {:.3} ms | mean {:.3} ms ({:.0}% lower p50)",
        tcp_batched.p50 * 1e3,
        tcp_batched.p99 * 1e3,
        tcp_batched.mean * 1e3,
        (1.0 - tcp_batched.p50 / tcp_unbatched.p50) * 100.0
    );

    println!("sync commit throughput ({commits} commits of 16 KiB)...");
    let commits_per_sec = commit_throughput(commits);
    println!("  {commits_per_sec:.0} commits/s");

    println!(
        "metadata contention, cpu-bound ({CONTENTION_WRITERS} writers x {contention_commits} \
         commits, {CONTENTION_SHARDS} shards vs global mutex)..."
    );
    let cpu_bound = contention_scenario(contention_commits, Duration::ZERO);
    println!(
        "  global {:.0} commits/s | sharded {:.0} commits/s ({:.2}x)",
        cpu_bound.global,
        cpu_bound.sharded,
        cpu_bound.speedup()
    );
    println!(
        "metadata contention, {}us modeled txn latency...",
        TXN_LATENCY.as_micros()
    );
    let txn_latency = contention_scenario(contention_commits, TXN_LATENCY);
    println!(
        "  global {:.0} commits/s | sharded {:.0} commits/s ({:.2}x)",
        txn_latency.global,
        txn_latency.sharded,
        txn_latency.speedup()
    );

    println!(
        "connection scaling ({} levels up to {} conns, {ACTIVE_CLIENTS} active committers \
         x {conn_commits} commits)...",
        conn_levels.len(),
        conn_levels.last().copied().unwrap_or(0),
    );
    let conn = connection_scaling(conn_levels, conn_commits);

    println!(
        "durable commit plane ({CONTENTION_WRITERS} writers x {contention_commits} commits, \
         per-shard WAL group commit vs in-memory)..."
    );
    let durable = durable_scenario(contention_commits);
    println!(
        "  sharded {:.0} commits/s | durable {:.0} commits/s ({:.0}% retained)",
        durable.sharded,
        durable.durable,
        durable.durable / durable.sharded * 100.0
    );
    println!(
        "  recovery: {} records replayed in {:.1} ms; post-checkpoint open {:.1} ms",
        durable.replayed,
        durable.replay_open.as_secs_f64() * 1e3,
        durable.checkpoint_open.as_secs_f64() * 1e3
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"suite\": \"perf_suite\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"broker\": {{ \"messages\": {messages}, \"batch\": {batch}, ",
            "\"unbatched_msgs_per_sec\": {bu:.1}, \"batched_msgs_per_sec\": {bb:.1}, ",
            "\"speedup\": {bs:.3} }},\n",
            "  \"rpc_in_process\": {{ \"calls\": {calls}, \"p50_s\": {ip50:.9}, ",
            "\"p99_s\": {ip99:.9}, \"mean_s\": {imean:.9} }},\n",
            "  \"rpc_tcp_loopback\": {{ \"calls\": {calls}, \"depth\": {depth}, ",
            "\"pacing_ms\": {pacing_ms:.1}, ",
            "\"unbatched\": {{ \"p50_s\": {up50:.9}, \"p99_s\": {up99:.9}, \"mean_s\": {umean:.9} }}, ",
            "\"batched\": {{ \"p50_s\": {tp50:.9}, \"p99_s\": {tp99:.9}, \"mean_s\": {tmean:.9} }}, ",
            "\"p50_reduction\": {red:.3} }},\n",
            "  \"commit\": {{ \"commits\": {commits}, \"commits_per_sec\": {cps:.1} }}\n",
            "}}\n"
        ),
        smoke = smoke,
        messages = messages,
        batch = BATCH,
        bu = broker_unbatched,
        bb = broker_batched,
        bs = broker_batched / broker_unbatched,
        calls = calls,
        ip50 = inproc.p50,
        ip99 = inproc.p99,
        imean = inproc.mean,
        depth = PIPELINE_DEPTH,
        pacing_ms = CALL_PACING.as_secs_f64() * 1e3,
        up50 = tcp_unbatched.p50,
        up99 = tcp_unbatched.p99,
        umean = tcp_unbatched.mean,
        tp50 = tcp_batched.p50,
        tp99 = tcp_batched.p99,
        tmean = tcp_batched.mean,
        red = 1.0 - tcp_batched.p50 / tcp_unbatched.p50,
        commits = commits,
        cps = commits_per_sec,
    );
    std::fs::write(&out_path, &json).expect("write results");
    println!("\nresults written to {out_path}");

    let contention_json = format!(
        concat!(
            "{{\n",
            "  \"suite\": \"perf_suite.contention\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"writers\": {writers}, \"workspaces\": {writers}, ",
            "\"commits_per_writer\": {cpw}, \"shards\": {shards},\n",
            "  \"cpu_bound\": {{ \"global_commits_per_sec\": {cg:.1}, ",
            "\"sharded_commits_per_sec\": {cs:.1}, \"speedup\": {csp:.3} }},\n",
            "  \"txn_latency\": {{ \"latency_us\": {lat_us}, ",
            "\"global_commits_per_sec\": {tg:.1}, ",
            "\"sharded_commits_per_sec\": {ts:.1}, \"speedup\": {tsp:.3} }}\n",
            "}}\n"
        ),
        smoke = smoke,
        writers = CONTENTION_WRITERS,
        cpw = contention_commits,
        shards = CONTENTION_SHARDS,
        cg = cpu_bound.global,
        cs = cpu_bound.sharded,
        csp = cpu_bound.speedup(),
        lat_us = TXN_LATENCY.as_micros(),
        tg = txn_latency.global,
        ts = txn_latency.sharded,
        tsp = txn_latency.speedup(),
    );
    std::fs::write(&contention_path, &contention_json).expect("write contention results");
    println!("contention results written to {contention_path}");

    let mut conn_levels_json = String::new();
    for (i, level) in conn.iter().enumerate() {
        if i > 0 {
            conn_levels_json.push_str(",\n");
        }
        conn_levels_json.push_str(&format!(
            concat!(
                "    {{ \"conns\": {conns}, \"attempted\": {attempted}, ",
                "\"sustained\": {sustained}, \"grow_s\": {grow:.3}, ",
                "\"rss_kb_per_conn\": {rss:.1}, \"commit_p50_s\": {p50:.9}, ",
                "\"commit_p99_s\": {p99:.9}, \"commit_mean_s\": {mean:.9} }}"
            ),
            conns = level.conns,
            attempted = level.attempted,
            sustained = level.sustained,
            grow = level.grow_s,
            rss = level.rss_kb_per_conn,
            p50 = level.commit.p50,
            p99 = level.commit.p99,
            mean = level.commit.mean,
        ));
    }
    let conn_json = format!(
        concat!(
            "{{\n",
            "  \"suite\": \"perf_suite.connections\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"active_clients\": {active}, \"commits_per_client\": {cpc},\n",
            "  \"levels\": [\n{levels}\n  ]\n",
            "}}\n"
        ),
        smoke = smoke,
        active = ACTIVE_CLIENTS,
        cpc = conn_commits,
        levels = conn_levels_json,
    );
    std::fs::write(&conn_path, &conn_json).expect("write connection results");
    println!("connection results written to {conn_path}");

    let durable_json = format!(
        concat!(
            "{{\n",
            "  \"suite\": \"perf_suite.durable\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"writers\": {writers}, \"commits_per_writer\": {cpw}, \"shards\": {shards},\n",
            "  \"sharded_commits_per_sec\": {ds:.1},\n",
            "  \"durable_commits_per_sec\": {dd:.1},\n",
            "  \"durable_relative\": {rel:.3},\n",
            "  \"recovery\": {{ \"replayed_records\": {replayed}, ",
            "\"replay_open_s\": {ropen:.6}, \"post_checkpoint_open_s\": {copen:.6} }}\n",
            "}}\n"
        ),
        smoke = smoke,
        writers = CONTENTION_WRITERS,
        cpw = contention_commits,
        shards = CONTENTION_SHARDS,
        ds = durable.sharded,
        dd = durable.durable,
        rel = durable.durable / durable.sharded,
        replayed = durable.replayed,
        ropen = durable.replay_open.as_secs_f64(),
        copen = durable.checkpoint_open.as_secs_f64(),
    );
    std::fs::write(&durable_path, &durable_json).expect("write durable results");
    println!("durable results written to {durable_path}");

    run_ingest(smoke, gate, &ingest_path);
    bench::obs_dump();

    if gate && txn_latency.sharded < txn_latency.global {
        eprintln!(
            "GATE FAILED: sharded contention throughput {:.0} commits/s fell below the \
             global mutex's {:.0} commits/s in the same run",
            txn_latency.sharded, txn_latency.global
        );
        std::process::exit(1);
    }
    if gate && broker_batched < broker_unbatched {
        eprintln!(
            "GATE FAILED: batched broker throughput {broker_batched:.0} msg/s \
             fell below unbatched {broker_unbatched:.0} msg/s in the same run"
        );
        std::process::exit(1);
    }
    if gate {
        let attempted: Vec<&ConnLevel> = conn.iter().filter(|l| l.attempted).collect();
        for level in &attempted {
            if !level.sustained {
                eprintln!(
                    "GATE FAILED: the reactor did not sustain {} live connections",
                    level.conns
                );
                std::process::exit(1);
            }
        }
        // Relative latency gate: commit p99 at the largest sustained level
        // must stay within 10x of the smallest level's (floored at 2 ms so
        // scheduler noise on a fast baseline cannot fail the run). Catches
        // an event loop that collapses under fd count, robustly to machine
        // speed.
        if let (Some(first), Some(last)) = (attempted.first(), attempted.last()) {
            let allowance = 10.0 * first.commit.p99.max(0.002);
            if last.conns > first.conns && last.commit.p99 > allowance {
                eprintln!(
                    "GATE FAILED: commit p99 {:.1} ms at {} conns exceeds {:.1} ms \
                     (10x the {:.1} ms p99 at {} conns)",
                    last.commit.p99 * 1e3,
                    last.conns,
                    allowance * 1e3,
                    first.commit.p99 * 1e3,
                    first.conns
                );
                std::process::exit(1);
            }
        }
    }
    if gate && durable.durable < 0.6 * durable.sharded {
        eprintln!(
            "GATE FAILED: durable sharded throughput {:.0} commits/s fell below 60% of \
             the non-durable sharded store's {:.0} commits/s in the same run",
            durable.durable, durable.sharded
        );
        std::process::exit(1);
    }
    if gate {
        println!(
            "gate passed: batched {:.2}x unbatched broker throughput, sharded {:.2}x \
             global contention throughput, durable {:.0}% of non-durable sharded",
            broker_batched / broker_unbatched,
            txn_latency.speedup(),
            durable.durable / durable.sharded * 100.0
        );
    }
}
