//! Offline trace assembly CLI.
//!
//! ```sh
//! cargo run -p bench --bin traceview -- <dump-file-or-dir>... [--out trace.json]
//! ```
//!
//! Reads span dumps written by `--obs-dump` (the `.spans.json` sidecar) or
//! `netdemo --trace-dir`, merges them into cross-process traces (aligning
//! each process's clock by its recorded epoch + handshake skew), prints the
//! commit critical-path table, and — with `--out` — writes Chrome
//! trace-event JSON loadable in `chrome://tracing` or <https://ui.perfetto.dev>.

use obs::traceview::{
    assemble, chrome_trace_json, commit_critical_path, mean_critical_path, parse_dump,
    render_critical_path,
};

fn main() {
    let mut out: Option<String> = None;
    let mut inputs: Vec<std::path::PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out = Some(args.next().unwrap_or_else(|| usage("--out needs a path")));
        } else if arg == "--help" || arg == "-h" {
            usage("");
        } else {
            inputs.push(arg.into());
        }
    }
    if inputs.is_empty() {
        usage("no dump files given");
    }

    // Directories expand to every regular file inside (what `netdemo
    // --trace-dir` produces); unparsable files are reported and skipped.
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for input in inputs {
        if input.is_dir() {
            let mut entries: Vec<_> = match std::fs::read_dir(&input) {
                Ok(rd) => rd
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| p.is_file())
                    .collect(),
                Err(e) => fail(&format!("cannot read {}: {e}", input.display())),
            };
            entries.sort();
            files.extend(entries);
        } else {
            files.push(input);
        }
    }

    let mut dumps = Vec::new();
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => fail(&format!("cannot read {}: {e}", path.display())),
        };
        match parse_dump(&text) {
            Ok(dump) => {
                eprintln!(
                    "{}: {} span(s) from process `{}`",
                    path.display(),
                    dump.spans.len(),
                    dump.process
                );
                dumps.push(dump);
            }
            Err(e) => eprintln!("{}: skipped ({e})", path.display()),
        }
    }
    if dumps.is_empty() {
        fail("no parsable dumps");
    }

    let traces = assemble(&dumps);
    println!(
        "assembled {} trace(s) from {} process dump(s)",
        traces.len(),
        dumps.len()
    );

    let paths: Vec<_> = traces.iter().filter_map(commit_critical_path).collect();
    match mean_critical_path(&paths) {
        Some(mean) => {
            println!(
                "\ncommit critical path (mean over {} commit trace(s)):\n",
                paths.len()
            );
            println!("{}", render_critical_path(&mean));
        }
        None => println!("no commit traces found (nothing rooted at omq.call_sync/commit_request)"),
    }

    if let Some(out) = out {
        let json = chrome_trace_json(&traces);
        match std::fs::write(&out, json) {
            Ok(()) => println!("Chrome trace written to {out} (load in chrome://tracing)"),
            Err(e) => fail(&format!("cannot write {out}: {e}")),
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: traceview <dump-file-or-dir>... [--out trace.json]");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}
