//! Fig. 8(c)/(d)/(e): misprediction of the predictive provisioner — the
//! predictor is fooled into provisioning for a different hour's pattern
//! (the paper: hour 30's pattern when reality is hour 20's); the reactive
//! provisioner corrects it within its 5-minute cadence.

use bench::{arg_value, bar, header};
use elastic::{run_day8, Day8Config};
use objectmq::provision::ScalingPolicy;
use workload::Ub1Config;

fn main() {
    let minutes: usize = arg_value("--minutes")
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    // Reality: hour 20 of the day-8 trace; the predictor is fooled with a
    // different hour's pattern (the paper uses hour 30). Our synthesized
    // diurnal profile is symmetric around 13:00, which makes hour 30
    // coincide with hour 20 in expectation — so we fool the predictor with
    // hour 27 (the deep night trough) to reproduce the paper's
    // under-provisioning effect.
    let base = Day8Config {
        start_minute: 20 * 60,
        duration_minutes: minutes,
        mispredict_shift_hours: Some(7.0),
        // A deeper night trough (the paper's trace is quieter at night
        // than our default synthesizer) so the fooled predictor allocates
        // a pool far below the offered load, as in the paper's run.
        ub1: Ub1Config {
            trough_ratio: 0.04,
            ..Ub1Config::default()
        },
        ..Day8Config::default()
    };

    header("Fig 8(c): expected (mispredicted) vs observed arrivals");
    let fooled = run_day8(&base);
    println!(
        "{:>6} {:>12} {:>12} {:>6}",
        "minute", "observed/min", "expected/min", "inst"
    );
    for p in fooled.points.iter().step_by(5) {
        println!(
            "{:>6} {:>12} {:>12.0} {:>6}",
            p.minute, p.arrivals, p.predicted, p.instances
        );
    }

    header("Fig 8(d): instances — reactive corrects the misprediction");
    let max_inst = fooled.points.iter().map(|p| p.instances).max().unwrap_or(1) as f64;
    for p in fooled.points.iter().step_by(5) {
        println!(
            "{:>6} {:>4} {}",
            p.minute,
            p.instances,
            bar(p.instances as f64, max_inst, 30)
        );
    }

    header("Fig 8(e): response times under misprediction");
    println!("{:>6} {:>10} {:>10}", "minute", "mean ms", "p95 ms");
    for p in fooled.points.iter().step_by(5) {
        println!(
            "{:>6} {:>10.1} {:>10.1}",
            p.minute,
            p.mean_rt * 1e3,
            p.p95_rt * 1e3
        );
    }
    println!(
        "\nSLA violations with misprediction + reactive: {:.2}%",
        fooled.sla_violation_fraction * 100.0
    );

    // Ablation: what if only the (fooled) predictive policy ran?
    let pred_only = run_day8(&Day8Config {
        policy: ScalingPolicy::Predictive,
        ..base.clone()
    });
    let accurate = run_day8(&Day8Config {
        mispredict_shift_hours: None,
        ..base
    });
    header("comparison");
    println!(
        "accurate prediction:            {:>6.2}% SLA violations",
        accurate.sla_violation_fraction * 100.0
    );
    println!(
        "fooled + reactive correction:   {:>6.2}% SLA violations",
        fooled.sla_violation_fraction * 100.0
    );
    println!(
        "fooled, predictive only:        {:>6.2}% SLA violations",
        pred_only.sla_violation_fraction * 100.0
    );
    println!("\npaper shape: high response times for the first minutes until the");
    println!("ReactiveProvisioner adds the right number of instances, then a");
    println!("sharp reduction (Fig. 8(e)).");
    bench::obs_dump();
}
