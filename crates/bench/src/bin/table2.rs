//! Table 2: effect of file bundling — control/storage/total traffic for
//! Dropbox and StackSync at batch sizes 5, 10, 20, 40.

use baselines::{DropboxModel, StackSyncModel};
use bench::{header, mb, replay};
use workload::{GeneratorConfig, Trace};

fn main() {
    let trace = Trace::generate(&GeneratorConfig::default());
    header("Table 2: effect of file bundling");
    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>12}",
        "service", "batch", "control", "storage", "total"
    );

    for batch in [5usize, 10, 20, 40] {
        let mut dropbox = DropboxModel::new();
        let report = replay(&mut dropbox, &trace, batch);
        println!(
            "{:<10} {:>6} {:>12} {:>12} {:>12}",
            "Dropbox",
            batch,
            mb(report.control_total()),
            mb(report.storage_total()),
            mb(report.total())
        );
    }
    println!();
    for batch in [5usize, 10, 20, 40] {
        let mut stacksync = StackSyncModel::new();
        let report = replay(&mut stacksync, &trace, batch);
        println!(
            "{:<10} {:>6} {:>12} {:>12} {:>12}",
            "StackSync",
            batch,
            mb(report.control_total()),
            mb(report.storage_total()),
            mb(report.total())
        );
    }

    println!("\npaper values for reference:");
    println!("  Dropbox   batch 5/10/20/40: control 8.30/5.13/3.28/2.23 MB, storage ≈633-638 MB");
    println!("  StackSync batch 5/10/20/40: control 2.14/1.58/1.37/1.25 MB, storage ≈568-570 MB");
    println!("shape: control shrinks with batch size for both; Dropbox stays the");
    println!("heavier of the two at every batch size; storage is batch-invariant.");
    bench::obs_dump();
}
