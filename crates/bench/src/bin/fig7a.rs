//! Fig. 7(a): CDF of file sizes in the generated benchmark trace, plus the
//! trace statistics reported in §5.2.1 (940 ADDs / 72 UPDATEs / 228
//! REMOVEs, 535.41 MB added, 583 KB average file size).

use bench::{bar, header};
use workload::{GeneratorConfig, Trace};

fn main() {
    let config = GeneratorConfig::default();
    let trace = Trace::generate(&config);
    let stats = trace.stats();

    header("Fig 7(a): CDF of file size in the generated trace");
    println!(
        "trace: {} ADDs, {} UPDATEs, {} REMOVEs  (paper: 940 / 72 / 228)",
        stats.adds, stats.updates, stats.removes
    );
    println!(
        "ADD volume: {:.2} MB (paper: 535.41 MB), avg file size {:.0} KB (paper: 583 KB)",
        stats.add_volume as f64 / 1e6,
        stats.avg_file_size as f64 / 1e3
    );

    let sizes = trace.add_sizes();
    println!("\n{:>12} {:>8}  cdf", "size ≤", "CDF");
    let thresholds: [(u64, &str); 10] = [
        (1 << 10, "1 KB"),
        (8 << 10, "8 KB"),
        (32 << 10, "32 KB"),
        (128 << 10, "128 KB"),
        (512 << 10, "512 KB"),
        (1 << 20, "1 MB"),
        (4 << 20, "4 MB"),
        (16 << 20, "16 MB"),
        (64 << 20, "64 MB"),
        (100 << 20, "100 MB"),
    ];
    for (threshold, label) in thresholds {
        let frac = workload::FileSizeDist::cdf_at(&sizes, threshold);
        println!("{label:>12} {frac:>8.3}  {}", bar(frac, 1.0, 50));
    }
    let at_4mb = workload::FileSizeDist::cdf_at(&sizes, 4 << 20);
    println!(
        "\npaper check: {:.1}% of files < 4 MB (paper: ≥90%)",
        at_4mb * 100.0
    );
    bench::obs_dump();
}
