//! Fig. 7(e): time to synchronize 6 devices per operation type (ADD /
//! UPDATE / REMOVE), measured on the *real* in-process stack — ObjectMQ
//! over the broker, SyncService over the metadata store, chunk store with
//! a LAN-profile latency model. Sync time = from the committing device's
//! write until all five other devices hold the change.

use bench::{arg_value, header};
use elastic::BoxplotStats;
use metadata::{InMemoryStore, MetadataStore};
use objectmq::Broker;
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService};
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::{LatencyModel, SwiftStore};
use workload::content_gen;
use workload::{ChangePattern, FileSizeDist};

const DEVICES: usize = 6;
const WAIT: Duration = Duration::from_secs(30);

fn main() {
    let ops: usize = arg_value("--ops")
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    header("Fig 7(e): synchronization time for 6 devices (real stack)");
    let broker = Broker::in_process();
    let store = SwiftStore::new(LatencyModel::lan_cluster());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::builder(&broker).store(meta.clone()).build();
    let _server = service.bind(&broker).expect("bind");
    let ws = provision_user(meta.as_ref(), "alice", "ws").expect("provision");

    let clients: Vec<DesktopClient> = (0..DEVICES)
        .map(|i| {
            DesktopClient::connect(
                &broker,
                &store,
                ClientConfig::new("alice", &format!("device-{i}")),
                &ws,
            )
            .expect("connect")
        })
        .collect();

    let mut rng_seed = 99u64;
    let sizes = FileSizeDist::paper();
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(7)
    };

    let mut add_times = Vec::new();
    let mut update_times = Vec::new();
    let mut remove_times = Vec::new();

    for i in 0..ops {
        let path = format!("f{i}.dat");
        // Keep file sizes within the paper's common band so one run stays
        // quick; Fig. 7(f) covers the size sweep explicitly.
        let size = (sizes.sample(&mut rng) as usize).min(4 << 20);
        rng_seed += 1;
        let content = content_gen::generate_default(size, rng_seed);

        // ADD on device 0, wait for devices 1..6.
        let committer = &clients[0];
        let start = Instant::now();
        committer.write_file(&path, content.clone()).expect("add");
        wait_all(&clients[1..], |c| c.wait_for_content(&path, &content, WAIT));
        add_times.push(start.elapsed().as_secs_f64());

        // UPDATE with a paper-distributed pattern.
        let pattern = ChangePattern::sample(&mut rng);
        let updated = pattern.apply(&content, 200, &mut rng);
        let start = Instant::now();
        committer
            .write_file(&path, updated.clone())
            .expect("update");
        wait_all(&clients[1..], |c| c.wait_for_content(&path, &updated, WAIT));
        update_times.push(start.elapsed().as_secs_f64());

        // REMOVE.
        let start = Instant::now();
        committer.delete_file(&path).expect("remove");
        wait_all(&clients[1..], |c| c.wait_for_absent(&path, WAIT));
        remove_times.push(start.elapsed().as_secs_f64());
    }

    println!("\n{} operations of each type, {} devices\n", ops, DEVICES);
    print_box("ADD", &add_times);
    print_box("UPDATE", &update_times);
    print_box("REMOVE", &remove_times);
    println!("\npaper shape: all within seconds; REMOVE cheapest (no data flow);");
    println!("UPDATE right-skewed (fixed-size chunking boundary shifting);");
    println!("ADD slowest (full upload + 5 downloads).");
    bench::obs_dump();
}

fn wait_all(clients: &[DesktopClient], f: impl Fn(&DesktopClient) -> bool) {
    for c in clients {
        assert!(f(c), "device {:?} failed to sync in time", c.device());
    }
}

fn print_box(label: &str, samples: &[f64]) {
    let b = BoxplotStats::of(samples);
    println!(
        "{label:<8} min {:7.1} ms | q1 {:7.1} | median {:7.1} | q3 {:7.1} | max {:7.1} | mean {:7.1}",
        b.min * 1e3,
        b.q1 * 1e3,
        b.median * 1e3,
        b.q3 * 1e3,
        b.max * 1e3,
        b.mean * 1e3
    );
}
