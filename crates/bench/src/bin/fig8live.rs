//! Fig. 8, live (BENCH_8): replays day 8 of the Ubuntu One trace against
//! real `SyncService` instances over TCP — thousands of `NetBroker`
//! clients multiplexed on the poll reactor, paced by the compressed
//! [`workload::ArrivalSchedule`], with the predictive+reactive
//! `AutoScaler` resizing the pool through the real Supervisor. A second
//! panel reruns the peak hours under a crash loop (the live Fig. 8(f)).
//!
//! Flags: `--smoke` shrinks the fleet/day for CI; `--gate` fails the run
//! when the pool does not follow the load or tail latency is unbounded;
//! `--clients N` overrides the fleet size; `--out` overrides the output
//! path (default `BENCH_8.json`); `--obs-dump <path>` dumps metrics.

use bench::{arg_value, bar, has_flag, header};
use elastic::live::{run_live, LiveConfig, LiveReport};
use std::fmt::Write as _;
use std::time::Duration;
use workload::Ub1Config;

fn day_config(smoke: bool, clients: usize) -> LiveConfig {
    if smoke {
        LiveConfig {
            clients,
            ub1: Ub1Config {
                peak_per_min: 5.0,
                ..Ub1Config::default()
            },
            // A full day in 30 wall seconds: wall peak ≈ 240 req/s.
            compression: 2880.0,
            drivers: 8,
            seed: 0xF18,
            ..LiveConfig::default()
        }
    } else {
        LiveConfig {
            clients,
            probe_clients: 8,
            ub1: Ub1Config {
                peak_per_min: 25.0,
                ..Ub1Config::default()
            },
            // A full day in 60 wall seconds: wall peak ≈ 600 req/s.
            compression: 1440.0,
            drivers: 8,
            seed: 0xF18,
            drain_timeout: Duration::from_secs(120),
            ..LiveConfig::default()
        }
    }
}

fn crash_config(smoke: bool) -> LiveConfig {
    let base = day_config(smoke, if smoke { 96 } else { 400 });
    LiveConfig {
        // Peak hours only (10:00–16:00), slowed to give the crash loop
        // time to bite: one instance killed every 3 s of wall time.
        start_minute: 10 * 60,
        duration_minutes: 6 * 60,
        compression: if smoke { 1440.0 } else { 720.0 },
        crash_period: Some(Duration::from_secs(3)),
        probe_clients: if smoke { 4 } else { 8 },
        ..base
    }
}

fn print_report(report: &LiveReport) {
    println!(
        "\n{} clients | offered {} | accepted {} | processed {} | wall {:.1}s",
        report.clients, report.offered, report.accepted, report.committed, report.wall_secs
    );
    println!(
        "pool: trough {} .. peak {} over {} slots | {} scaling decisions | drained: {}",
        report.trough_live,
        report.peak_live,
        report.slots.len(),
        report.decisions,
        report.drained
    );
    println!("\n slot  t(min)  offered  target  live  pool               p50ms   p99ms");
    for s in &report.slots {
        println!(
            "{:5} {:7} {:8} {:7} {:5}  {:<18} {:7.1} {:7.1}",
            s.slot,
            s.trace_minute,
            s.offered,
            s.target,
            s.live,
            bar(s.live as f64, report.peak_live.max(1) as f64, 18),
            s.p50_ms,
            s.p99_ms
        );
    }
    if !report.history_violations.is_empty() {
        println!(
            "\nHISTORY VIOLATIONS ({}):",
            report.history_violations.len()
        );
        for v in report.history_violations.iter().take(10) {
            println!("  {v}");
        }
    }
}

fn slots_json(report: &LiveReport) -> String {
    let mut out = String::from("[\n");
    for (i, s) in report.slots.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"slot\": {}, \"trace_minute\": {}, \"offered\": {}, \"committed\": {}, \
             \"target\": {}, \"live\": {}, \"probes\": {}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2} }}{}",
            s.slot,
            s.trace_minute,
            s.offered,
            s.committed,
            s.target,
            s.live,
            s.probes,
            s.p50_ms,
            s.p99_ms,
            if i + 1 < report.slots.len() { ",\n" } else { "\n" }
        );
    }
    out.push_str("  ]");
    out
}

fn panel_json(report: &LiveReport) -> String {
    format!(
        "{{ \"clients\": {}, \"offered\": {}, \"accepted\": {}, \"committed\": {}, \
         \"crashes\": {}, \"peak_live\": {}, \"trough_live\": {}, \"decisions\": {}, \
         \"drained\": {}, \"history_events\": {}, \"history_violations\": {}, \
         \"median_p50_ms\": {:.2}, \"max_p99_ms\": {:.2}, \"wall_secs\": {:.2} }}",
        report.clients,
        report.offered,
        report.accepted,
        report.committed,
        report.crashes,
        report.peak_live,
        report.trough_live,
        report.decisions,
        report.drained,
        report.history_events,
        report.history_violations.len(),
        report.median_p50_ms(),
        report.max_p99_ms(),
        report.wall_secs
    )
}

/// Relative latency gate: the worst slot p99 must stay within a multiple
/// of the run's median p50, with an absolute floor so sub-millisecond
/// medians on fast machines cannot flake it.
fn p99_bounded(report: &LiveReport) -> bool {
    let ceiling = (10.0 * report.median_p50_ms()).max(250.0);
    report.max_p99_ms() <= ceiling
}

fn gate(day: &LiveReport, crashy: &LiveReport) -> Vec<String> {
    let mut failures = Vec::new();
    if day.peak_live <= day.trough_live {
        failures.push(format!(
            "pool did not follow the diurnal load (peak {} <= trough {})",
            day.peak_live, day.trough_live
        ));
    }
    if !p99_bounded(day) {
        failures.push(format!(
            "slot p99 unbounded: max {:.1} ms vs median p50 {:.1} ms",
            day.max_p99_ms(),
            day.median_p50_ms()
        ));
    }
    for (label, report) in [("day", day), ("crash", crashy)] {
        if !report.drained {
            failures.push(format!("{label}: queue failed to drain"));
        }
        if !report.history_violations.is_empty() {
            failures.push(format!(
                "{label}: {} history violations, e.g. {}",
                report.history_violations.len(),
                report.history_violations[0]
            ));
        }
        if report.decisions == 0 {
            failures.push(format!("{label}: controller never made a decision"));
        }
    }
    if crashy.crashes == 0 {
        failures.push("crash panel injected no crashes".to_string());
    }
    failures
}

fn main() {
    let smoke = has_flag("--smoke");
    let gated = has_flag("--gate");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_8.json".to_string());
    let clients = arg_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 320 } else { 2400 });

    header("Fig 8 live: UB1 day-8 replay over TCP with autoscaling");
    let config = day_config(smoke, clients);
    println!(
        "{} clients over {} driver threads | day compressed {:.0}x ({:.0}s) | peak ≈ {:.0} req/s wall",
        config.clients,
        config.drivers,
        config.compression,
        config.duration_minutes as f64 * 60.0 / config.compression,
        config.ub1.peak_per_min * config.compression / 60.0
    );
    let day = match run_live(&config) {
        Ok(report) => report,
        Err(e) if e.contains("fd limit") => {
            println!("SKIPPED: {e}");
            bench::obs_dump();
            return;
        }
        Err(e) => {
            eprintln!("fig8live failed: {e}");
            std::process::exit(1);
        }
    };
    print_report(&day);

    header("Fig 8(f) live: peak hours under a 3-second crash loop");
    let crashy = match run_live(&crash_config(smoke)) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("crash panel failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{} crashes | offered {} | processed {} | p50 {:.1} ms, worst p99 {:.1} ms | violations {}",
        crashy.crashes,
        crashy.offered,
        crashy.committed,
        crashy.median_p50_ms(),
        crashy.max_p99_ms(),
        crashy.history_violations.len()
    );

    let json = format!(
        "{{\n  \"suite\": \"fig8live\",\n  \"smoke\": {},\n  \"clients\": {},\n  \
         \"compression\": {:.1},\n  \"wall_secs\": {:.2},\n  \"offered\": {},\n  \
         \"accepted\": {},\n  \"committed\": {},\n  \"decisions\": {},\n  \
         \"peak_live\": {},\n  \"trough_live\": {},\n  \"drained\": {},\n  \
         \"history_events\": {},\n  \"history_violations\": {},\n  \
         \"median_p50_ms\": {:.2},\n  \"max_p99_ms\": {:.2},\n  \"slots\": {},\n  \
         \"crash_panel\": {}\n}}\n",
        smoke,
        day.clients,
        config.compression,
        day.wall_secs,
        day.offered,
        day.accepted,
        day.committed,
        day.decisions,
        day.peak_live,
        day.trough_live,
        day.drained,
        day.history_events,
        day.history_violations.len(),
        day.median_p50_ms(),
        day.max_p99_ms(),
        slots_json(&day),
        panel_json(&crashy)
    );
    match std::fs::write(&out_path, json) {
        Ok(()) => println!("\nresults written to {out_path}"),
        Err(e) => eprintln!("failed to write {out_path}: {e}"),
    }

    if gated {
        let failures = gate(&day, &crashy);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("GATE FAILED: {f}");
            }
            bench::obs_dump();
            std::process::exit(1);
        }
        println!("gates passed: pool follows load, p99 bounded, histories clean");
    }
    bench::obs_dump();
}
