//! Ablation: the prediction percentile. The paper estimates each slot's
//! peak workload "as a high percentile of the arrival distribution"
//! without fixing the value; this sweep quantifies the trade-off between
//! SLA violations (percentile too low → under-provisioning) and capacity
//! cost (too high → over-provisioning).

use bench::header;
use elastic::{run_day8, Day8Config};
use objectmq::provision::ScalingPolicy;

fn main() {
    header("Ablation: predictive percentile vs SLA violations and capacity");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>10}",
        "percentile", "violations", "instance-min", "static-peak", "savings"
    );
    for percentile in [0.05, 0.25, 0.50, 0.80, 0.95] {
        // Predictive-only: otherwise the 5-minute reactive corrector
        // masks the percentile choice entirely (which is itself a finding
        // — see fig8cde).
        let summary = run_day8(&Day8Config {
            percentile,
            policy: ScalingPolicy::Predictive,
            duration_minutes: 12 * 60, // trough→peak half day
            start_minute: 4 * 60,
            ..Day8Config::default()
        });
        println!(
            "{:>10.2} {:>11.2}% {:>14} {:>14} {:>9.1}%",
            percentile,
            summary.sla_violation_fraction * 100.0,
            summary.instance_minutes,
            summary.static_peak_instance_minutes(),
            summary.elasticity_savings() * 100.0
        );
    }
    println!("\nreading: very low percentiles track the *weekend* floor of the");
    println!("history and under-provision weekdays; from the median upward the");
    println!("eta ceiling absorbs the remaining spread, so a \"high percentile\"");
    println!("(paper's choice; we default to 0.95) costs only a few percent of");
    println!("capacity over the median while never under-providing — and the");
    println!("residual violations come from flash bursts, which are exactly what");
    println!("the reactive corrector exists for.");
    bench::obs_dump();
}
