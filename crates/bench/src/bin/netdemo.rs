//! Distributed sync demo: the broker, the SyncService and two desktop
//! clients run in *three separate OS processes*, talking over TCP loopback
//! through `crates/net`.
//!
//! The driver process hosts the `mqsim` broker behind a [`BrokerServer`]
//! plus the SyncService (bound through the in-process path — it plays the
//! server machine). It then re-executes itself twice: a *watcher* client
//! process and a *writer* client process, each of which dials the broker
//! with [`NetBroker`] and runs the unmodified `DesktopClient` on top. The
//! writer performs the Fig. 7(e) operation mix (ADD / UPDATE / REMOVE); the
//! watcher asserts every commit arrives, with the same at-least-once commit
//! semantics as the in-process stack.
//!
//! Chunk bytes cross processes through a shared on-disk object store
//! ([`storage::DiskBackend`]); everything else — commits, notifications,
//! workspace metadata — rides the TCP frame protocol.

use bench::{arg_value, header};
use metadata::{InMemoryStore, MetadataStore, WorkspaceId};
use mqsim::MessageBroker;
use net::{BrokerServer, NetBroker};
use objectmq::{Broker, BrokerConfig};
use stacksync::{provision_user, ClientConfig, DesktopClient, SyncService};
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::{DiskBackend, LatencyModel, SwiftStore};
use workload::content_gen;

const WAIT: Duration = Duration::from_secs(30);

/// Deterministic content both processes can compute without IPC.
fn content_for(tag: &str, i: usize, size: usize) -> Vec<u8> {
    let seed = 0x5eed ^ (i as u64) << 8 ^ tag.bytes().map(u64::from).sum::<u64>();
    content_gen::generate_default(size, seed)
}

fn main() {
    match arg_value("--role").as_deref() {
        None => driver(),
        Some("writer") => client_process(Role::Writer),
        Some("watcher") => client_process(Role::Watcher),
        Some(other) => panic!("unknown role {other}"),
    }
}

fn ops() -> usize {
    arg_value("--ops").and_then(|s| s.parse().ok()).unwrap_or(3)
}

/// Honors `--trace-dir <dir>`: writes this process's span dump (with the
/// meta header `traceview` aligns on) to `<dir>/spans-<role>-<pid>.json`.
fn trace_dump(role: &str) {
    let Some(dir) = arg_value("--trace-dir") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("spans-{role}-{}.json", std::process::id()));
    let dump = obs::spans_json_with_meta(&format!("netdemo-{role}"));
    if let Err(e) = std::fs::write(&path, dump) {
        eprintln!("failed to write span dump to {}: {e}", path.display());
    }
}

// ---------------------------------------------------------------------------
// Driver: broker server + sync service, spawns the two client processes
// ---------------------------------------------------------------------------

fn driver() {
    header("netdemo: sync across 3 OS processes over TCP loopback");

    let mq = MessageBroker::new();
    let server = BrokerServer::bind("127.0.0.1:0", mq.clone()).expect("bind server");
    let addr = server.local_addr().to_string();
    println!("broker server on {addr}");

    // `--admin <addr>` exposes /metrics, /healthz, /spans, /snapshot and
    // /flightrecorder for the driver process while the demo runs.
    let _admin = arg_value("--admin").map(|a| {
        let admin = obs::serve_admin(&a[..]).expect("bind admin endpoint");
        println!("admin endpoint on http://{}", admin.local_addr());
        admin
    });

    let broker = Broker::new(mq, BrokerConfig::default());
    let meta: Arc<dyn MetadataStore> = Arc::new(InMemoryStore::new());
    let service = SyncService::builder(&broker).store(meta.clone()).build();
    let _service_handle = service.bind(&broker).expect("bind service");
    let ws = provision_user(meta.as_ref(), "alice", "ws").expect("provision");

    let store_dir = std::env::temp_dir().join(format!("netdemo-{}", std::process::id()));
    let exe = std::env::current_exe().expect("current_exe");
    let n = ops();

    let trace_dir = arg_value("--trace-dir");
    let spawn = |role: &str| -> Child {
        let mut args = vec![
            "--role".to_string(),
            role.to_string(),
            "--addr".to_string(),
            addr.clone(),
            "--store".to_string(),
            store_dir.to_str().unwrap().to_string(),
            "--ws".to_string(),
            ws.0.clone(),
            "--ops".to_string(),
            n.to_string(),
        ];
        if let Some(dir) = &trace_dir {
            args.push("--trace-dir".to_string());
            args.push(dir.clone());
        }
        Command::new(&exe)
            .args(args)
            .stdout(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {role}: {e}"))
    };

    let started = Instant::now();
    let mut watcher = spawn("watcher");
    wait_for_line(&mut watcher, "READY");
    println!("watcher process up, starting writer");
    let mut writer = spawn("writer");

    let writer_status = drain(&mut writer, "writer");
    let watcher_status = drain(&mut watcher, "watcher");
    let elapsed = started.elapsed();

    let _ = std::fs::remove_dir_all(&store_dir);
    assert!(writer_status.success(), "writer process failed");
    assert!(watcher_status.success(), "watcher process failed");
    println!(
        "\nOK: {n} ADD + {n} UPDATE + {n} REMOVE synced across processes in {:.2}s",
        elapsed.as_secs_f64()
    );
    bench::obs_dump();
    trace_dump("driver");
    server.shutdown();
}

/// Blocks until the child prints `marker` on a line of its own.
fn wait_for_line(child: &mut Child, marker: &str) {
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line.expect("child stdout");
        println!("  [child] {line}");
        if line.trim() == marker {
            // Keep forwarding the rest in the background.
            let rest = lines;
            std::thread::spawn(move || {
                for line in rest.map_while(Result::ok) {
                    println!("  [child] {line}");
                }
            });
            return;
        }
    }
    panic!("child exited before printing {marker}");
}

fn drain(child: &mut Child, name: &str) -> std::process::ExitStatus {
    if let Some(stdout) = child.stdout.take() {
        for line in std::io::BufReader::new(stdout)
            .lines()
            .map_while(Result::ok)
        {
            println!("  [{name}] {line}");
        }
    }
    child.wait().expect("wait child")
}

// ---------------------------------------------------------------------------
// Client processes
// ---------------------------------------------------------------------------

enum Role {
    Writer,
    Watcher,
}

fn client_process(role: Role) {
    let addr = arg_value("--addr").expect("--addr");
    let store_dir = arg_value("--store").expect("--store");
    let ws = WorkspaceId(arg_value("--ws").expect("--ws"));
    let n = ops();

    let mq = NetBroker::connect(&addr[..]).expect("dial broker server");
    let broker = Broker::over(Arc::new(mq), BrokerConfig::default());
    let backend = Arc::new(DiskBackend::open(&store_dir).expect("open shared store"));
    let store = SwiftStore::with_backend(LatencyModel::instant(), backend);
    let device = match role {
        Role::Writer => "writer-dev",
        Role::Watcher => "watcher-dev",
    };
    let client = DesktopClient::connect(&broker, &store, ClientConfig::new("alice", device), &ws)
        .expect("connect client");

    match role {
        Role::Writer => {
            writer(&client, n);
            trace_dump("writer");
        }
        Role::Watcher => {
            watcher(&client, n);
            trace_dump("watcher");
        }
    }
}

fn writer(client: &DesktopClient, n: usize) {
    for i in 0..n {
        client
            .write_file(&format!("a{i}.dat"), content_for("add", i, 64 * 1024))
            .expect("ADD");
        client
            .write_file(&format!("u{i}.dat"), content_for("u1", i, 64 * 1024))
            .expect("UPDATE base");
        client
            .write_file(&format!("u{i}.dat"), content_for("u2", i, 64 * 1024))
            .expect("UPDATE");
        client
            .write_file(&format!("r{i}.dat"), content_for("rm", i, 16 * 1024))
            .expect("REMOVE base");
        client.delete_file(&format!("r{i}.dat")).expect("REMOVE");
        println!("committed op set {i}");
    }
    println!("writer done: {} commits acked", n * 5);
}

fn watcher(client: &DesktopClient, n: usize) {
    println!("READY");
    let per_set = 5; // a, u(base), u(update), r(base), r(delete)
    let expected = (n * per_set) as u64;
    assert!(
        client.wait(WAIT, || client.stats().notifications() >= expected),
        "got {}/{} commit notifications",
        client.stats().notifications(),
        expected
    );
    for i in 0..n {
        assert!(
            client.wait_for_content(
                &format!("a{i}.dat"),
                &content_for("add", i, 64 * 1024),
                WAIT
            ),
            "ADD a{i} did not sync"
        );
        assert!(
            client.wait_for_content(&format!("u{i}.dat"), &content_for("u2", i, 64 * 1024), WAIT),
            "UPDATE u{i} did not sync"
        );
        assert!(
            client.wait_for_absent(&format!("r{i}.dat"), WAIT),
            "REMOVE r{i} did not sync"
        );
    }
    println!(
        "watcher verified {n} op sets ({} notifications)",
        client.stats().notifications()
    );
}
