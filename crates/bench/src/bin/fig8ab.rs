//! Fig. 8(a)/(b): ObjectMQ auto-scaling over the day-8 UB1 workload with
//! both predictive and reactive provisioning — workload + instance count
//! (a) and response times against the 450 ms SLA (b). Table 3 parameters.
//!
//! `--policy predictive|reactive|both` runs the ablation variants.

use bench::{arg_value, bar, header};
use elastic::{run_day8, Day8Config};
use objectmq::provision::ScalingPolicy;

fn main() {
    let policy: ScalingPolicy = arg_value("--policy")
        .map(|s| s.parse().expect("bad --policy"))
        .unwrap_or(ScalingPolicy::Both);
    let duration: usize = arg_value("--minutes")
        .and_then(|s| s.parse().ok())
        .unwrap_or(24 * 60);

    header("Table 3 parameters");
    println!("d (SLA)        450 ms");
    println!("s (service)     50 ms");
    println!("sigma_b        200 ms");
    println!("tau_1 / tau_2    20%");
    println!("predictive every 15 min, reactive every 5 min");

    header(&format!(
        "Fig 8(a)/(b): day-8 auto-scaling, policy = {policy:?}"
    ));
    let config = Day8Config {
        policy,
        duration_minutes: duration,
        ..Day8Config::default()
    };
    let summary = run_day8(&config);

    // Optional per-minute CSV for plotting (--csv <path>).
    if let Some(path) = arg_value("--csv") {
        let mut csv =
            String::from("minute,arrivals,instances,predicted,mean_rt_ms,p95_rt_ms,max_rt_ms\n");
        for p in &summary.points {
            csv.push_str(&format!(
                "{},{},{},{:.1},{:.2},{:.2},{:.2}\n",
                p.minute,
                p.arrivals,
                p.instances,
                p.predicted,
                p.mean_rt * 1e3,
                p.p95_rt * 1e3,
                p.max_rt * 1e3
            ));
        }
        std::fs::write(&path, csv).expect("write csv");
        println!("(per-minute series written to {path})");
    }

    println!(
        "\n{:>6} {:>10} {:>6} {:>10} {:>10}  workload/instances",
        "minute", "req/min", "inst", "mean ms", "p95 ms"
    );
    let max_arrivals = summary.points.iter().map(|p| p.arrivals).max().unwrap_or(1) as f64;
    for p in summary.points.iter().step_by(30) {
        println!(
            "{:>6} {:>10} {:>6} {:>10.1} {:>10.1}  |{}|",
            p.minute,
            p.arrivals,
            p.instances,
            p.mean_rt * 1e3,
            p.p95_rt * 1e3,
            bar(p.arrivals as f64, max_arrivals, 34)
        );
    }
    println!(
        "\ncompleted {} requests | peak instances {} | peak workload {:.0} req/min",
        summary.completed, summary.peak_instances, max_arrivals
    );
    println!(
        "SLA (450 ms) violations: {:.2}% of requests (paper: none visible)",
        summary.sla_violation_fraction * 100.0
    );
    println!(
        "response time overall: median {:.0} ms | mean {:.0} ms | max {:.0} ms",
        summary.overall.median * 1e3,
        summary.overall.mean * 1e3,
        summary.overall.max * 1e3
    );
    println!(
        "capacity: {} instance-min elastic vs {} static-peak  (savings {:.1}%)",
        summary.instance_minutes,
        summary.static_peak_instance_minutes(),
        summary.elasticity_savings() * 100.0
    );
    println!("\npaper shape: instance count mimics the diurnal workload curve;");
    println!("no sustained SLA violations; spikes only around scale events.");
    bench::obs_dump();
}
