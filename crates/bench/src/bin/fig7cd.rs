//! Fig. 7(c) and 7(d): control and storage traffic per action type,
//! StackSync vs Dropbox, using three single-action traces derived from the
//! benchmark trace ("we grouped all the actions of the same type").

use baselines::{DropboxModel, StackSyncModel};
use bench::{header, mb, replay};
use workload::{GeneratorConfig, Trace};

fn main() {
    let trace = Trace::generate(&GeneratorConfig::default());
    // The grouped traces must stay executable: replay ADD-only first, then
    // ADD+UPDATE (charging only updates), etc. We reproduce the paper's
    // grouping by replaying the full trace and attributing per-kind
    // traffic, which run_trace already does.
    header("Fig 7(c): control traffic per action type");
    let mut stacksync = StackSyncModel::new();
    let mut dropbox = DropboxModel::new();
    let s = replay(&mut stacksync, &trace, 1);
    let d = replay(&mut dropbox, &trace, 1);

    println!("{:<10} {:>14} {:>14}", "action", "StackSync", "Dropbox");
    println!(
        "{:<10} {:>14} {:>14}   (paper: ≈3.2 MB vs ≈25 MB)",
        "ADD",
        mb(s.adds.control),
        mb(d.adds.control + d.batch_control * d.adds.count as u64 / trace.ops.len() as u64)
    );
    println!(
        "{:<10} {:>14} {:>14}",
        "UPDATE",
        mb(s.updates.control),
        mb(d.updates.control + d.batch_control * d.updates.count as u64 / trace.ops.len() as u64)
    );
    println!(
        "{:<10} {:>14} {:>14}",
        "REMOVE",
        mb(s.removes.control),
        mb(d.removes.control + d.batch_control * d.removes.count as u64 / trace.ops.len() as u64)
    );

    header("Fig 7(d): storage traffic per action type");
    println!("{:<10} {:>14} {:>14}", "action", "StackSync", "Dropbox");
    println!(
        "{:<10} {:>14} {:>14}   (paper: 565.63 MB vs 660.32 MB)",
        "ADD",
        mb(s.adds.storage),
        mb(d.adds.storage)
    );
    println!(
        "{:<10} {:>14} {:>14}   (paper: ≈5 MB vs ≈2 MB — Dropbox wins via deltas)",
        "UPDATE",
        mb(s.updates.storage),
        mb(d.updates.storage)
    );
    println!(
        "{:<10} {:>14} {:>14}",
        "REMOVE",
        mb(s.removes.storage),
        mb(d.removes.storage)
    );

    println!("\nshape checks:");
    println!(
        "  StackSync ADD control ≪ Dropbox ADD control: {}",
        s.adds.control * 3 < d.adds.control + d.batch_control
    );
    println!(
        "  Dropbox UPDATE storage ≤ StackSync UPDATE storage: {}",
        d.updates.storage <= s.updates.storage
    );
    println!(
        "  StackSync ADD storage < Dropbox ADD storage: {}",
        s.adds.storage < d.adds.storage
    );
    bench::obs_dump();
}
