//! Fig. 8(f): fault tolerance of ObjectMQ auto-scaling — a single
//! SyncService instance is crashed every 30 seconds for the first 10
//! minutes of day 8; queued redelivery plus the Supervisor's 1-second
//! liveness check keep every request alive. Boxplots of response times for
//! requests arriving while the instance was up vs down.

use bench::header;
use elastic::experiment::{run_fault_tolerance, FaultConfig};
use elastic::BoxplotStats;

fn main() {
    header("Fig 8(f): response times under a 30-second crash loop");
    let config = FaultConfig::default();
    println!(
        "window: first {} min of day 8 | crash every {:.0} s | outage {:.1} s",
        config.duration_minutes, config.crash_period, config.downtime
    );
    let summary = run_fault_tolerance(&config);

    println!(
        "\noffered {} requests, completed {} (loss = {})",
        summary.offered,
        summary.completed,
        summary.offered - summary.completed
    );
    print_box("instance up", &summary.while_up);
    print_box("instance down", &summary.while_down);
    println!("\npaper shape: response time increases notably during failures but");
    println!("stays bounded (paper: no delays beyond ≈1 s) — queued messages are");
    println!("redelivered, nothing is lost.");
    bench::obs_dump();
}

fn print_box(label: &str, b: &BoxplotStats) {
    println!(
        "{label:<14} n={:<6} min {:7.1} ms | q1 {:7.1} | median {:7.1} | q3 {:7.1} | max {:8.1} | mean {:7.1}",
        b.count,
        b.min * 1e3,
        b.q1 * 1e3,
        b.median * 1e3,
        b.q3 * 1e3,
        b.max * 1e3,
        b.mean * 1e3
    );
}
