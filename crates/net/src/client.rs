//! The client: a [`Messaging`] implementation that forwards every operation
//! to a remote [`crate::BrokerServer`] over TCP.
//!
//! ## Connection supervision
//!
//! All clients in a process share one event-driven runtime: a reactor loop
//! (see [`crate::reactor`]) that multiplexes every client connection over
//! nonblocking sockets, plus a small dialer pool that performs blocking
//! connect + clock-handshake attempts off the loop. Each connection is a
//! per-fd state machine registered with the reactor; its `tick()` is the
//! heartbeat — a ping per quiet [`NetConfig::heartbeat`] interval, and a
//! connection silent through four intervals is declared dead. When the
//! socket dies (read error, ping timeout, reset) the client is handed back
//! to the dialers, which reconnect with capped exponential backoff plus
//! jitter, then replay every live subscription under its original
//! subscription id. The server side requeued whatever was unacked when the
//! old connection died, so redelivery after reconnect is automatic.
//!
//! Requests are retried transparently across reconnects until the operation
//! timeout elapses, so a blocking publish simply rides through a short
//! partition. Deliveries buffered client-side are tagged with the
//! connection *generation*; a stale-generation delivery is dropped instead
//! of acked, because its server-side tag died with the old connection.

use crate::frame::{encode_frame_into, read_frame, write_frame, FrameBuffer, Request, ServerFrame};
use crate::reactor::{EventSource, Reactor, Ready, INTEREST_READ, INTEREST_WRITE};
use crate::stats_from_value;
use crate::tx::{write_some, OutBuf, TxObs, WriteState, MAX_SPARE};
use mqsim::{
    AnyDelivery, Clock, ExchangeKind, Message, MessageConsumer, Messaging, MqError, MqResult,
    QueueOptions, QueueStats, SystemClock,
};
use parking_lot::{Condvar, Mutex};
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};
use wire::Value;

/// Acks accumulated past this count are flushed as one `AckMany` frame even
/// while deliveries are still buffered locally.
const ACK_BATCH: usize = 32;

/// Tick cadence of the shared client reactor: heartbeat resolution and the
/// polling period of reconnect-backoff deadlines.
const CLIENT_TICK: Duration = Duration::from_millis(10);

/// Threads in the shared dialer pool (blocking connect + handshake).
const DIALERS: usize = 4;

/// Max complete `read_step` bursts one connection consumes per readiness
/// event before yielding the loop (level-triggered poll re-fires).
const CLIENT_READ_BURSTS: usize = 64;

/// Tuning knobs of a [`NetBroker`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-operation timeout: how long a broker call may retry across
    /// reconnects before failing with [`MqError::Transport`].
    pub op_timeout: Duration,
    /// Delivery credit granted per subscription (max unacked in flight).
    pub credit: u64,
    /// Ping period while the connection is healthy.
    pub heartbeat: Duration,
    /// First reconnect delay; doubles per attempt up to `backoff_cap`.
    pub backoff_initial: Duration,
    /// Upper bound of the reconnect backoff.
    pub backoff_cap: Duration,
    /// TCP connection-establishment timeout per reconnect attempt.
    pub connect_timeout: Duration,
    /// Whether to batch acknowledgements (cumulative `AckMany` frames) and
    /// batch publishes on [`Messaging::publish_batch_to_queue`]. When
    /// `false` every ack and publish is its own frame — the pre-batching
    /// protocol, kept for A/B benchmarking.
    pub batch: bool,
    /// Time source for the reconnect backoff. Fault-injection tests swap in
    /// a [`mqsim::VirtualClock`] so backoff is stepped instead of slept.
    pub clock: Arc<dyn Clock>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            op_timeout: Duration::from_secs(10),
            credit: 64,
            heartbeat: Duration::from_millis(500),
            backoff_initial: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
            batch: true,
            clock: Arc::new(SystemClock::new()),
        }
    }
}

/// A remote [`Messaging`] provider speaking the frame protocol over TCP.
///
/// Cheap to clone; clones share one connection and reconnect machinery.
/// Dropping the last clone closes the connection as if [`NetBroker::close`]
/// were called: heartbeats stop, the reactor registration is dropped, and
/// consumers created from this broker wake with [`MqError::Closed`].
#[derive(Clone)]
pub struct NetBroker {
    inner: Arc<ClientInner>,
    _close: Arc<CloseOnDrop>,
}

/// Shuts the client down when the last [`NetBroker`] clone is dropped. The
/// shared runtime (reactor source, dialer queue, backoff list) holds its own
/// `Arc<ClientInner>`s, so the inner refcount alone can never reach zero
/// while the connection is alive — this guard, held only by broker handles,
/// is what makes `drop` reach `shutdown`.
struct CloseOnDrop {
    inner: Arc<ClientInner>,
    /// Deregistered when the last broker clone drops, together with the
    /// shutdown — a closed client must not linger in `/healthz`.
    _health: obs::HealthGuard,
}

impl Drop for CloseOnDrop {
    fn drop(&mut self) {
        self.inner.shutdown();
    }
}

struct ClientInner {
    addr: SocketAddr,
    config: NetConfig,
    /// Current writer half, `None` while disconnected.
    writer: Mutex<Option<WriteState>>,
    /// Mirrors `writer.is_some()` without taking the writer lock. `send`
    /// gates on this — NOT on `connected`, which is only signalled *after*
    /// the dialer has replayed resubscribes (which themselves go through
    /// `send`).
    link_up: AtomicBool,
    /// The socket refused part of a drain (`WouldBlock`): the reactor adds
    /// `POLLOUT` interest and retries on writability.
    want_write: AtomicBool,
    /// Consecutive failed dial attempts, reset on success; drives the
    /// exponential backoff.
    attempt: AtomicU32,
    /// Encoded frames waiting for the next coalesced write.
    out: Mutex<OutBuf>,
    /// Recycled drain buffer for `flush_out`.
    spare: Mutex<Vec<u8>>,
    /// Bumped on every successful reconnect; deliveries carry the
    /// generation they arrived under.
    generation: AtomicU64,
    connected: Mutex<bool>,
    connected_cv: Condvar,
    pending: Mutex<HashMap<u64, Arc<ReqSlot>>>,
    subs: Mutex<HashMap<u64, Arc<SubInner>>>,
    next_corr: AtomicU64,
    next_sub: AtomicU64,
    stop: AtomicBool,
    reconnects: Arc<obs::Counter>,
    bytes_out: Arc<obs::Counter>,
    tx: TxObs,
}

struct ReqSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

enum SlotState {
    Waiting,
    Done(MqResult<Value>),
    /// The connection died before a reply arrived; retry on the next one.
    ConnectionLost,
}

struct SubInner {
    id: u64,
    queue: String,
    buffer: Mutex<VecDeque<BufferedDelivery>>,
    buffer_cv: Condvar,
    closed: AtomicBool,
    /// Acks not yet sent to the server, as `(generation, tag)`. Flushed as
    /// one cumulative `AckMany` when the local buffer runs dry, when
    /// [`ACK_BATCH`] accumulate, on every receive call, and on drop — so
    /// credit is never withheld from the server while the consumer is idle.
    pending_acks: Mutex<Vec<(u64, u64)>>,
}

struct BufferedDelivery {
    generation: u64,
    tag: u64,
    redelivered: bool,
    message: Message,
}

impl NetBroker {
    /// Connects to a [`crate::BrokerServer`] with default configuration.
    ///
    /// # Errors
    ///
    /// [`MqError::Transport`] if the first connection cannot be established
    /// within the operation timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> MqResult<NetBroker> {
        NetBroker::connect_with(addr, NetConfig::default())
    }

    /// Connects with explicit configuration.
    ///
    /// # Errors
    ///
    /// [`MqError::Transport`] on address resolution failure or if no
    /// connection is established within `config.op_timeout`.
    pub fn connect_with(addr: impl ToSocketAddrs, config: NetConfig) -> MqResult<NetBroker> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| MqError::Transport(format!("address resolution failed: {e}")))?
            .next()
            .ok_or_else(|| MqError::Transport("address resolved to nothing".into()))?;
        let op_timeout = config.op_timeout;
        let inner = Arc::new(ClientInner {
            addr,
            config,
            writer: Mutex::new(None),
            link_up: AtomicBool::new(false),
            want_write: AtomicBool::new(false),
            attempt: AtomicU32::new(0),
            out: Mutex::new(OutBuf::default()),
            spare: Mutex::new(Vec::new()),
            generation: AtomicU64::new(0),
            connected: Mutex::new(false),
            connected_cv: Condvar::new(),
            pending: Mutex::new(HashMap::new()),
            subs: Mutex::new(HashMap::new()),
            next_corr: AtomicU64::new(1),
            next_sub: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            reconnects: obs::counter("net.client.reconnects"),
            bytes_out: obs::counter("net.client.bytes_out"),
            tx: TxObs::new(),
        });
        // Hand the first dial to the shared runtime; every later reconnect
        // is scheduled by the reactor when the registered source dies.
        runtime()?.enqueue_dial(inner.clone());
        // Weak capture: the registry's reference to the closure must not
        // keep the client state alive past the last broker handle.
        let health_inner = Arc::downgrade(&inner);
        let health =
            obs::register_health(&format!("net.client.{addr}"), move || {
                match health_inner.upgrade() {
                    Some(i) if i.stop.load(Ordering::Acquire) => Err("client closed".into()),
                    Some(i) if !i.link_up.load(Ordering::Acquire) => {
                        Err(format!("link to {} down (reconnecting)", i.addr))
                    }
                    Some(_) => Ok(()),
                    None => Err("client dropped".into()),
                }
            });
        let broker = NetBroker {
            _close: Arc::new(CloseOnDrop {
                inner: inner.clone(),
                _health: health,
            }),
            inner,
        };
        // Surface an unreachable server at construction time.
        broker.inner.wait_connected(Instant::now() + op_timeout)?;
        Ok(broker)
    }

    /// Closes the connection and stops the supervisor. Outstanding calls
    /// fail with [`MqError::Transport`]; consumers wake with
    /// [`MqError::Closed`].
    pub fn close(&self) {
        self.inner.shutdown();
    }
}

impl std::fmt::Debug for NetBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetBroker")
            .field("addr", &self.inner.addr)
            .field("generation", &self.inner.generation.load(Ordering::Relaxed))
            .finish()
    }
}

impl ClientInner {
    fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.drop_connection();
        for sub in self.subs.lock().values() {
            sub.closed.store(true, Ordering::Release);
            sub.buffer_cv.notify_all();
        }
    }

    /// Tears the current connection down and fails outstanding requests
    /// with `ConnectionLost` so their callers retry.
    fn drop_connection(&self) {
        self.link_up.store(false, Ordering::Release);
        self.want_write.store(false, Ordering::Release);
        let writer = self.writer.lock().take();
        if let Some(st) = writer {
            // Shutting the socket down surfaces as EOF/`POLLHUP` on the
            // reactor side, which removes the registered source — the one
            // place reconnects are scheduled from.
            let _ = st.stream.shutdown(std::net::Shutdown::Both);
        }
        // Discard frames queued for the dead connection — acks and pings
        // addressed to the old generation must not ride the next one.
        {
            let mut out = self.out.lock();
            out.buf.clear();
            out.frames = 0;
        }
        *self.connected.lock() = false;
        let pending: Vec<Arc<ReqSlot>> = self.pending.lock().drain().map(|(_, s)| s).collect();
        for slot in pending {
            let mut state = slot.state.lock();
            if matches!(*state, SlotState::Waiting) {
                *state = SlotState::ConnectionLost;
                slot.cv.notify_all();
            }
        }
    }

    /// Blocks until the dialer reports a live connection.
    fn wait_connected(&self, deadline: Instant) -> MqResult<()> {
        let mut connected = self.connected.lock();
        while !*connected {
            if self.stop.load(Ordering::Acquire) {
                return Err(MqError::Transport("client closed".into()));
            }
            if self
                .connected_cv
                .wait_until(&mut connected, deadline)
                .timed_out()
                && !*connected
            {
                return Err(MqError::Transport(format!(
                    "no connection to {} within the operation timeout",
                    self.addr
                )));
            }
        }
        Ok(())
    }

    /// Sends one request and waits for its reply, retrying across
    /// reconnects until the operation deadline.
    fn request(&self, req: &Request) -> MqResult<Value> {
        let rpc_seconds = obs::histogram("net.client.rpc_seconds");
        let started = Instant::now();
        let deadline = started + self.config.op_timeout;
        loop {
            self.wait_connected(deadline)?;
            let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
            let slot = Arc::new(ReqSlot {
                state: Mutex::new(SlotState::Waiting),
                cv: Condvar::new(),
            });
            self.pending.lock().insert(corr, slot.clone());
            if !self.send(&req.to_frame(corr)) {
                self.pending.lock().remove(&corr);
                continue; // connection died while sending; retry
            }
            let outcome = {
                let mut state = slot.state.lock();
                loop {
                    match std::mem::replace(&mut *state, SlotState::Waiting) {
                        SlotState::Done(result) => break Some(result),
                        SlotState::ConnectionLost => break None,
                        SlotState::Waiting => {}
                    }
                    if slot.cv.wait_until(&mut state, deadline).timed_out()
                        && matches!(*state, SlotState::Waiting)
                    {
                        break Some(Err(MqError::Transport(format!(
                            "request timed out after {:?}",
                            self.config.op_timeout
                        ))));
                    }
                }
            };
            self.pending.lock().remove(&corr);
            match outcome {
                Some(result) => {
                    rpc_seconds.record(started.elapsed());
                    return result;
                }
                None => continue, // reconnect happened mid-request: retry
            }
        }
    }

    /// Serializes a frame on the current connection. `false` if there is no
    /// connection or the write failed (the connection is torn down).
    ///
    /// Frames from concurrent callers coalesce: each is appended to a
    /// shared out-buffer, and whoever holds the writer drains everything
    /// accumulated in one `write_all` + `flush`.
    fn send(&self, frame: &Value) -> bool {
        if !self.link_up.load(Ordering::Acquire) {
            return false;
        }
        {
            let mut out = self.out.lock();
            match encode_frame_into(frame, &mut out.buf) {
                Ok(_) => out.frames += 1,
                Err(_) => {
                    drop(out);
                    self.drop_connection();
                    return false;
                }
            }
        }
        self.flush_out()
    }

    /// Drains the out-buffer through the nonblocking socket. Flat-combining:
    /// a caller that finds the writer busy returns immediately — the holder
    /// re-checks the buffer after releasing, so no enqueued frame is
    /// stranded. A partial write parks the remainder as writer residue and
    /// arms `POLLOUT`; the reactor finishes it when the socket drains.
    fn flush_out(&self) -> bool {
        loop {
            let mut writer_guard = match self.writer.try_lock() {
                Some(g) => g,
                None => return true,
            };
            let outcome = loop {
                let Some(st) = writer_guard.as_mut() else {
                    // Disconnected under our feet: the frames die with the
                    // old connection (callers observe `false` and retry).
                    break ClientFlush::NoConn;
                };
                if st.pos < st.residue.len() {
                    match write_some(&mut st.stream, &st.residue[st.pos..]) {
                        Ok(n) => {
                            st.pos += n;
                            if st.pos < st.residue.len() {
                                // Set while still holding the writer: the
                                // concurrent flush that completes this drain
                                // is the one that clears the bit.
                                self.want_write.store(true, Ordering::Release);
                                break ClientFlush::Blocked;
                            }
                            let done = std::mem::take(&mut st.residue);
                            st.pos = 0;
                            recycle(&self.spare, done);
                        }
                        Err(_) => break ClientFlush::Failed,
                    }
                    continue;
                }
                let (drain, frames) = {
                    let mut out = self.out.lock();
                    if out.buf.is_empty() {
                        break ClientFlush::Drained;
                    }
                    let mut drain = std::mem::take(&mut *self.spare.lock());
                    std::mem::swap(&mut drain, &mut out.buf);
                    (drain, std::mem::take(&mut out.frames))
                };
                self.bytes_out.add(drain.len() as u64);
                self.tx.record_drain(drain.len(), frames);
                st.residue = drain;
                st.pos = 0;
            };
            drop(writer_guard);
            match outcome {
                ClientFlush::Failed => {
                    self.drop_connection();
                    return false;
                }
                ClientFlush::NoConn => return false,
                ClientFlush::Blocked => {
                    // Interest is recomputed per poll pass; wake the loop so
                    // it picks up `POLLOUT` now rather than next tick.
                    if let Some(rt) = runtime_if_started() {
                        rt.reactor.wake();
                    }
                    return true;
                }
                ClientFlush::Drained => {
                    self.want_write.store(false, Ordering::Release);
                    // Lost-wakeup guard: a frame enqueued while we were
                    // releasing the writer saw `try_lock` fail and went
                    // home — re-check.
                    if self.out.lock().buf.is_empty() {
                        return true;
                    }
                }
            }
        }
    }
}

/// Outcome of one `flush_out` drain attempt under the writer lock.
enum ClientFlush {
    Drained,
    Blocked,
    NoConn,
    Failed,
}

/// Returns a cleared drain buffer to the spare slot unless it grew too big.
fn recycle(spare: &Mutex<Vec<u8>>, mut drain: Vec<u8>) {
    drain.clear();
    if drain.capacity() <= MAX_SPARE {
        *spare.lock() = drain;
    }
}

/// Sends every pending current-generation ack for `sub` as one cumulative
/// frame. Acks from dead generations are discarded — their server-side tags
/// died with the old connection, which requeued the deliveries already.
fn flush_acks(client: &ClientInner, sub: &SubInner) {
    let current = client.generation.load(Ordering::Acquire);
    let tags: Vec<u64> = {
        let mut pending = sub.pending_acks.lock();
        if pending.is_empty() {
            return;
        }
        pending
            .drain(..)
            .filter(|(generation, _)| *generation == current)
            .map(|(_, tag)| tag)
            .collect()
    };
    let req = match tags.as_slice() {
        [] => return,
        [tag] => Request::Ack(sub.id, *tag),
        _ => Request::AckMany(sub.id, tags),
    };
    // Fire-and-forget, like single acks.
    let corr = client.next_corr.fetch_add(1, Ordering::Relaxed);
    let _ = client.send(&req.to_frame(corr));
}

// ---------------------------------------------------------------------------
// Shared client runtime: one reactor + a dialer pool for every client in
// the process
// ---------------------------------------------------------------------------

/// A client parked in exponential backoff, re-dialed once its own clock
/// reaches `deadline` (checked by the reactor's per-pass callback, so
/// virtual-clock tests can step through the wait).
struct WaitingDial {
    client: Arc<ClientInner>,
    deadline: Duration,
}

/// Process-wide client machinery, started lazily on the first
/// [`NetBroker::connect`]: the reactor that multiplexes every client
/// connection, the channel feeding the dialer pool, and the backoff parking
/// lot.
struct ClientRuntime {
    reactor: Arc<Reactor>,
    dial_tx: Mutex<mpsc::Sender<Arc<ClientInner>>>,
    waiting: Arc<Mutex<Vec<WaitingDial>>>,
}

impl ClientRuntime {
    fn enqueue_dial(&self, client: Arc<ClientInner>) {
        // The receiver lives in the dialer threads for the process lifetime,
        // so this cannot fail outside teardown.
        let _ = self.dial_tx.lock().send(client);
    }
}

static RUNTIME: OnceLock<Result<ClientRuntime, String>> = OnceLock::new();

fn runtime() -> MqResult<&'static ClientRuntime> {
    RUNTIME
        .get_or_init(|| init_runtime().map_err(|e| e.to_string()))
        .as_ref()
        .map_err(|e| MqError::Transport(format!("client runtime unavailable: {e}")))
}

/// The runtime if it already started; `None` before the first connect (or if
/// it failed to start). Used on paths that must not force initialization.
fn runtime_if_started() -> Option<&'static ClientRuntime> {
    RUNTIME.get().and_then(|r| r.as_ref().ok())
}

fn init_runtime() -> std::io::Result<ClientRuntime> {
    let reactor = Reactor::start("net.client", CLIENT_TICK)?;
    let (tx, rx) = mpsc::channel::<Arc<ClientInner>>();
    let rx = Arc::new(Mutex::new(rx));
    for i in 0..DIALERS {
        let rx = rx.clone();
        std::thread::Builder::new()
            .name(format!("net.dialer{i}"))
            .spawn(move || dialer_loop(&rx))?;
    }
    let waiting: Arc<Mutex<Vec<WaitingDial>>> = Arc::new(Mutex::new(Vec::new()));
    // Per-pass callback: promote parked clients whose backoff expired back
    // into the dial queue. Runs at least once per reactor tick.
    let pass_waiting = waiting.clone();
    let pass_tx = Mutex::new(tx.clone());
    reactor.set_pass(Arc::new(move || {
        let due: Vec<Arc<ClientInner>> = {
            let mut waiting = pass_waiting.lock();
            if waiting.is_empty() {
                return;
            }
            let mut due = Vec::new();
            waiting.retain(|entry| {
                if entry.client.stop.load(Ordering::Acquire) {
                    return false;
                }
                if entry.client.config.clock.now() >= entry.deadline {
                    due.push(entry.client.clone());
                    return false;
                }
                true
            });
            due
        };
        let tx = pass_tx.lock();
        for client in due {
            let _ = tx.send(client);
        }
    }));
    Ok(ClientRuntime {
        reactor,
        dial_tx: Mutex::new(tx),
        waiting,
    })
}

/// Number of fds currently registered with the shared client reactor (zero
/// before any client connected). Test/diagnostic surface for asserting that
/// dead connections do not leak registrations.
pub fn client_reactor_registrations() -> usize {
    runtime_if_started().map_or(0, |rt| rt.reactor.registered())
}

fn dialer_loop(rx: &Mutex<mpsc::Receiver<Arc<ClientInner>>>) {
    let mut rng = rand::rngs::StdRng::from_entropy();
    loop {
        // Hold the lock only while waiting for a job; dial outside it so the
        // other dialers can pick up queued work concurrently.
        let job = {
            let guard = rx.lock();
            guard.recv()
        };
        match job {
            Ok(client) => dial_one(&client, &mut rng),
            Err(_) => return,
        }
    }
}

/// One dial attempt: connect + handshake + install, or park the client in
/// the backoff list with capped exponential backoff plus full jitter.
fn dial_one(client: &Arc<ClientInner>, rng: &mut rand::rngs::StdRng) {
    if client.stop.load(Ordering::Acquire) {
        return;
    }
    if try_connect(client) {
        return;
    }
    if client.stop.load(Ordering::Acquire) {
        return;
    }
    let attempt = client.attempt.fetch_add(1, Ordering::Relaxed);
    let base = client
        .config
        .backoff_initial
        .saturating_mul(1u32 << attempt.min(16))
        .min(client.config.backoff_cap);
    // Full jitter: retry uniformly in [base/2, base] on the client's own
    // clock, so virtual-clock tests can step through the backoff.
    let jittered = base.mul_f64(0.5 + 0.5 * rng.gen::<f64>());
    let deadline = client.config.clock.now() + jittered;
    if let Ok(rt) = runtime() {
        rt.waiting.lock().push(WaitingDial {
            client: client.clone(),
            deadline,
        });
    }
}

/// Connects, handshakes, installs the writer, replays subscriptions, and
/// registers the connection with the reactor. `false` on any failure (the
/// caller schedules the backoff).
fn try_connect(client: &Arc<ClientInner>) -> bool {
    let Ok(stream) = TcpStream::connect_timeout(&client.addr, client.config.connect_timeout) else {
        return false;
    };
    let _ = stream.set_nodelay(true);
    // Clock handshake on the still-blocking stream, before the writer is
    // installed or the source registered — the reply is the only traffic,
    // so reading it inline here cannot race frame dispatch.
    if !clock_handshake(client, &stream) {
        return false;
    }
    let Ok(rt) = runtime() else {
        return false;
    };
    let ever_connected = client.generation.load(Ordering::Acquire) > 0;
    if ever_connected {
        client.reconnects.inc();
        obs::flight_event!("net", "reconnected to {}", client.addr);
    } else {
        obs::flight_event!("net", "connected to {}", client.addr);
    }
    client.attempt.store(0, Ordering::Relaxed);
    let generation = client.generation.fetch_add(1, Ordering::AcqRel) + 1;
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let Ok(writer) = stream.try_clone() else {
        return false;
    };
    *client.writer.lock() = Some(WriteState::new(writer));
    client.link_up.store(true, Ordering::Release);

    // Replay live subscriptions under their original ids *before*
    // signalling connected, so no caller observes a half-restored session.
    // Replies to these resubscribes are matched by the reactor like any
    // other.
    let subs: Vec<Arc<SubInner>> = client.subs.lock().values().cloned().collect();
    for sub in subs {
        let req = Request::Subscribe {
            queue: sub.queue.clone(),
            sub: sub.id,
            credit: client.config.credit,
        };
        let corr = client.next_corr.fetch_add(1, Ordering::Relaxed);
        if !client.send(&req.to_frame(corr)) {
            client.drop_connection();
            return false;
        }
    }

    let fd = stream.as_raw_fd();
    let source = Arc::new(ClientSource {
        client: client.clone(),
        generation,
        fd,
        reader: Mutex::new(ClientReader {
            stream,
            frames: if client.config.batch {
                FrameBuffer::with_readahead()
            } else {
                FrameBuffer::new()
            },
        }),
        last_rx: Mutex::new(Instant::now()),
        last_ping: Mutex::new(Instant::now()),
        bytes_in: obs::counter("net.client.bytes_in"),
    });
    rt.reactor.register(source);
    {
        let mut connected = client.connected.lock();
        *connected = true;
        client.connected_cv.notify_all();
    }
    true
}

/// Tears the connection down and hands the client straight back to the
/// dialers. Called only from source-removal paths on the reactor, so each
/// dead connection schedules exactly one reconnect.
fn disconnect_and_reschedule(client: &Arc<ClientInner>) {
    client.drop_connection();
    if client.stop.load(Ordering::Acquire) {
        return;
    }
    obs::flight_event!("net", "connection to {} lost", client.addr);
    if let Ok(rt) = runtime() {
        rt.enqueue_dial(client.clone());
    }
}

/// Read half of one client connection as a reactor state machine.
struct ClientReader {
    stream: TcpStream,
    /// Keeps partial frames across `WouldBlock`, so a readiness event that
    /// ends mid-frame never desynchronizes the stream. In batched mode it
    /// also reads ahead of frame boundaries, so one syscall drains a whole
    /// burst of coalesced replies and deliveries.
    frames: FrameBuffer,
}

/// One live client connection registered with the shared reactor. Stamped
/// with the generation it was created under; a source that outlives its
/// generation (a newer connection took over) removes itself.
struct ClientSource {
    client: Arc<ClientInner>,
    generation: u64,
    /// Cached at registration so `fd()` never takes the reader lock.
    fd: RawFd,
    reader: Mutex<ClientReader>,
    /// Last time any frame arrived; drives the dead-peer timeout.
    last_rx: Mutex<Instant>,
    /// Last time a ping was sent; rate-limits pings to one per heartbeat.
    last_ping: Mutex<Instant>,
    bytes_in: Arc<obs::Counter>,
}

impl ClientSource {
    fn stale(&self) -> bool {
        self.generation != self.client.generation.load(Ordering::Acquire)
    }

    /// Drains readable frames. `Err(())` means the connection died
    /// (EOF, I/O error, or protocol violation) and must be torn down.
    fn read_frames(&self) -> Result<(), ()> {
        let mut guard = self.reader.lock();
        let ClientReader { stream, frames } = &mut *guard;
        let mut any = false;
        'bursts: for _ in 0..CLIENT_READ_BURSTS {
            let mut next = match frames.read_step(stream) {
                Ok(Some(first)) => Some(first),
                Ok(None) => break 'bursts, // caught up with the socket
                Err(_) => return Err(()),
            };
            while let Some((frame, n)) = next.take() {
                any = true;
                self.bytes_in.add(n as u64);
                self.dispatch(&frame)?;
                next = match frames.take_buffered() {
                    Ok(buffered) => buffered,
                    Err(_) => return Err(()),
                };
            }
        }
        if any {
            *self.last_rx.lock() = Instant::now();
        }
        Ok(())
    }

    fn dispatch(&self, frame: &Value) -> Result<(), ()> {
        match ServerFrame::from_value(frame) {
            Ok(ServerFrame::Reply { corr, result }) => {
                let slot = self.client.pending.lock().get(&corr).cloned();
                if let Some(slot) = slot {
                    *slot.state.lock() = SlotState::Done(result);
                    slot.cv.notify_all();
                }
                // No slot: a fire-and-forget reply (resubscribe, ack, ping).
                Ok(())
            }
            Ok(ServerFrame::Deliver {
                sub,
                tag,
                redelivered,
                message,
            }) => {
                let sub_inner = self.client.subs.lock().get(&sub).cloned();
                if let Some(s) = sub_inner {
                    s.buffer.lock().push_back(BufferedDelivery {
                        generation: self.generation,
                        tag,
                        redelivered,
                        message,
                    });
                    s.buffer_cv.notify_one();
                }
                Ok(())
            }
            Err(_) => Err(()), // protocol violation: reconnect
        }
    }
}

impl EventSource for ClientSource {
    fn fd(&self) -> RawFd {
        self.fd
    }

    fn interest(&self) -> u8 {
        let mut interest = INTEREST_READ;
        if self.client.want_write.load(Ordering::Acquire) {
            interest |= INTEREST_WRITE;
        }
        interest
    }

    fn ready(&self, readable: bool, writable: bool) -> Ready {
        if self.client.stop.load(Ordering::Acquire) {
            self.client.drop_connection();
            return Ready::Remove;
        }
        if self.stale() {
            return Ready::Remove; // a newer connection took over
        }
        if writable {
            self.client.flush_out();
        }
        if readable && self.read_frames().is_err() {
            disconnect_and_reschedule(&self.client);
            return Ready::Remove;
        }
        Ready::Continue
    }

    fn tick(&self) -> Ready {
        if self.client.stop.load(Ordering::Acquire) {
            self.client.drop_connection();
            return Ready::Remove;
        }
        if self.stale() {
            return Ready::Remove;
        }
        let heartbeat = self.client.config.heartbeat;
        let since = self.last_rx.lock().elapsed();
        if since >= heartbeat * 4 {
            // Peer silent through the whole grace window: dead. Matches the
            // old reader's three-missed-heartbeats rule.
            disconnect_and_reschedule(&self.client);
            return Ready::Remove;
        }
        if since >= heartbeat && self.last_ping.lock().elapsed() >= heartbeat {
            *self.last_ping.lock() = Instant::now();
            let corr = self.client.next_corr.fetch_add(1, Ordering::Relaxed);
            if !self.client.send(&Request::Ping.to_frame(corr)) {
                disconnect_and_reschedule(&self.client);
                return Ready::Remove;
            }
        }
        Ready::Continue
    }
}

/// Exchanges `hello` frames with the freshly connected server and records
/// the estimated clock offset toward it: the server timestamps its reply,
/// and placing that reading at the midpoint of the request round trip gives
/// `skew = server_unix - (t0 + t1) / 2`. The estimate (error bounded by half
/// the RTT) is published via [`obs::set_clock_skew_ns`], where span dumps
/// pick it up so [`obs::traceview`] can align this process's spans onto the
/// broker's timeline. `false` if the exchange failed (treated like any other
/// connect failure).
fn clock_handshake(inner: &ClientInner, stream: &TcpStream) -> bool {
    let t0 = obs::unix_now_ns();
    let hello = Request::Hello {
        pid: u64::from(std::process::id()),
        unix_ns: t0,
    };
    if write_frame(&mut (&*stream), &hello.to_frame(0)).is_err() {
        return false;
    }
    let _ = stream.set_read_timeout(Some(inner.config.connect_timeout));
    let reply = read_frame(&mut (&*stream));
    let _ = stream.set_read_timeout(None);
    let t1 = obs::unix_now_ns();
    let Ok((frame, _)) = reply else {
        return false;
    };
    let Ok(ServerFrame::Reply {
        result: Ok(value), ..
    }) = ServerFrame::from_value(&frame)
    else {
        return false;
    };
    let Some(server_unix) = value.get("unix_ns").and_then(|v| v.as_u64().ok()) else {
        return false;
    };
    // Halve before adding: unix-ns readings are ~2^60, t0 + t1 would wrap.
    let midpoint = t0 / 2 + t1 / 2;
    let skew = server_unix as i64 - midpoint as i64;
    obs::set_clock_skew_ns(skew);
    obs::gauge("net.client.clock_skew_ns").set(skew as f64);
    true
}

// ---------------------------------------------------------------------------
// Messaging impl
// ---------------------------------------------------------------------------

/// Collapses a fallible existence probe into the infallible `Messaging`
/// signature, counting transport-degraded answers (see
/// [`Messaging::queue_exists`] on [`NetBroker`] for the semantics).
fn exists_or_degraded(result: MqResult<bool>) -> bool {
    match result {
        Ok(exists) => exists,
        Err(_) => {
            obs::counter("net.client.exists_degraded").inc();
            false
        }
    }
}

impl Messaging for NetBroker {
    fn declare_queue(&self, name: &str, options: QueueOptions) -> MqResult<()> {
        self.inner
            .request(&Request::DeclareQueue(name.into(), options))
            .map(|_| ())
    }

    fn delete_queue(&self, name: &str) -> MqResult<()> {
        self.inner
            .request(&Request::DeleteQueue(name.into()))
            .map(|_| ())
    }

    fn purge_queue(&self, name: &str) -> MqResult<usize> {
        let v = self.inner.request(&Request::PurgeQueue(name.into()))?;
        Ok(v.as_u64().unwrap_or(0) as usize)
    }

    fn declare_exchange(&self, name: &str, kind: ExchangeKind) -> MqResult<()> {
        self.inner
            .request(&Request::DeclareExchange(name.into(), kind))
            .map(|_| ())
    }

    fn bind_queue(&self, exchange: &str, routing_key: &str, queue: &str) -> MqResult<()> {
        self.inner
            .request(&Request::BindQueue(
                exchange.into(),
                routing_key.into(),
                queue.into(),
            ))
            .map(|_| ())
    }

    fn unbind_queue(&self, exchange: &str, routing_key: &str, queue: &str) -> MqResult<bool> {
        let v = self.inner.request(&Request::UnbindQueue(
            exchange.into(),
            routing_key.into(),
            queue.into(),
        ))?;
        v.as_bool()
            .map_err(|e| MqError::Transport(format!("bad unbind reply: {e}")))
    }

    /// Whether the queue exists on the server.
    ///
    /// The `Messaging` signature is infallible, so a transport failure that
    /// outlasts the whole operation timeout (the request already retries
    /// across reconnects until then) degrades to `false` — over TCP a long
    /// partition is indistinguishable from "queue deleted". Callers that
    /// must tell the two apart should probe with a fallible call such as
    /// [`Messaging::queue_depth`], which surfaces [`MqError::Transport`].
    /// Each degraded answer bumps the `net.client.exists_degraded` counter.
    fn queue_exists(&self, name: &str) -> bool {
        exists_or_degraded(
            self.inner
                .request(&Request::QueueExists(name.into()))
                .and_then(|v| v.as_bool().map_err(|e| MqError::Transport(e.to_string()))),
        )
    }

    /// Whether the exchange exists on the server. Same degraded semantics
    /// under partition as [`Self::queue_exists`].
    fn exchange_exists(&self, name: &str) -> bool {
        exists_or_degraded(
            self.inner
                .request(&Request::ExchangeExists(name.into()))
                .and_then(|v| v.as_bool().map_err(|e| MqError::Transport(e.to_string()))),
        )
    }

    fn publish_to_queue(&self, queue: &str, message: Message) -> MqResult<()> {
        self.inner
            .request(&Request::PublishToQueue(queue.into(), message))
            .map(|_| ())
    }

    fn publish_batch_to_queue(&self, queue: &str, messages: Vec<Message>) -> MqResult<()> {
        if messages.is_empty() {
            return Ok(());
        }
        if !self.inner.config.batch {
            // Pre-batching protocol: one frame (and one round trip) each.
            for message in messages {
                self.publish_to_queue(queue, message)?;
            }
            return Ok(());
        }
        self.inner
            .request(&Request::PublishBatch(queue.into(), messages))
            .map(|_| ())
    }

    fn publish(&self, exchange: &str, routing_key: &str, message: Message) -> MqResult<usize> {
        let v = self.inner.request(&Request::Publish(
            exchange.into(),
            routing_key.into(),
            message,
        ))?;
        Ok(v.as_u64().unwrap_or(0) as usize)
    }

    fn subscribe(&self, queue: &str) -> MqResult<Box<dyn MessageConsumer>> {
        let sub_id = self.inner.next_sub.fetch_add(1, Ordering::Relaxed);
        let sub = Arc::new(SubInner {
            id: sub_id,
            queue: queue.to_string(),
            buffer: Mutex::new(VecDeque::new()),
            buffer_cv: Condvar::new(),
            closed: AtomicBool::new(false),
            pending_acks: Mutex::new(Vec::new()),
        });
        // Register before the request: a delivery may race the reply.
        self.inner.subs.lock().insert(sub_id, sub.clone());
        let result = self.inner.request(&Request::Subscribe {
            queue: queue.to_string(),
            sub: sub_id,
            credit: self.inner.config.credit,
        });
        if let Err(e) = result {
            self.inner.subs.lock().remove(&sub_id);
            return Err(e);
        }
        Ok(Box::new(NetConsumer {
            client: self.inner.clone(),
            sub,
        }))
    }

    fn queue_stats(&self, name: &str) -> MqResult<QueueStats> {
        let v = self.inner.request(&Request::QueueStats(name.into()))?;
        stats_from_value(&v).map_err(MqError::from)
    }

    fn queue_depth(&self, name: &str) -> MqResult<usize> {
        let v = self.inner.request(&Request::QueueDepth(name.into()))?;
        Ok(v.as_u64().unwrap_or(0) as usize)
    }

    fn queue_arrival_rate(&self, name: &str) -> MqResult<f64> {
        let v = self
            .inner
            .request(&Request::QueueArrivalRate(name.into()))?;
        v.as_f64()
            .map_err(|e| MqError::Transport(format!("bad rate reply: {e}")))
    }

    fn queue_names(&self) -> Vec<String> {
        self.inner
            .request(&Request::QueueNames)
            .ok()
            .and_then(|v| {
                v.as_list().ok().map(|items| {
                    items
                        .iter()
                        .filter_map(|i| i.as_str().ok().map(str::to_string))
                        .collect()
                })
            })
            .unwrap_or_default()
    }
}

// ---------------------------------------------------------------------------
// NetConsumer
// ---------------------------------------------------------------------------

/// Client-side consumer handle for one remote subscription.
struct NetConsumer {
    client: Arc<ClientInner>,
    sub: Arc<SubInner>,
}

impl NetConsumer {
    fn to_any(&self, d: BufferedDelivery) -> AnyDelivery {
        let client = self.client.clone();
        let sub = self.sub.clone();
        let generation = d.generation;
        let tag = d.tag;
        AnyDelivery::new(d.message, d.redelivered, move |ok| {
            // A delivery from a previous connection generation has no live
            // server-side tag: the server already requeued it when the old
            // connection died, so resolving it now would mis-ack a tag that
            // may have been reassigned.
            if client.generation.load(Ordering::Acquire) != generation {
                return;
            }
            if !ok {
                // Requeues go out immediately: the message should rejoin
                // the queue now, not when the next ack batch flushes.
                // Fire-and-forget — on a dead connection the server-side
                // drop path requeues for us anyway.
                let corr = client.next_corr.fetch_add(1, Ordering::Relaxed);
                let _ = client.send(&Request::Requeue(sub.id, tag).to_frame(corr));
                return;
            }
            if !client.config.batch {
                let corr = client.next_corr.fetch_add(1, Ordering::Relaxed);
                let _ = client.send(&Request::Ack(sub.id, tag).to_frame(corr));
                return;
            }
            // Batched path: stash the ack. Flush when the local buffer has
            // run dry (the server is waiting on credit with nothing more
            // in flight to us) or when enough have accumulated.
            let buffer_empty = sub.buffer.lock().is_empty();
            let should_flush = {
                let mut pending = sub.pending_acks.lock();
                pending.push((generation, tag));
                buffer_empty || pending.len() >= ACK_BATCH
            };
            if should_flush {
                flush_acks(&client, &sub);
            }
        })
    }

    /// Pops the next current-generation delivery, discarding stale ones.
    fn pop_fresh(&self, buffer: &mut VecDeque<BufferedDelivery>) -> Option<BufferedDelivery> {
        let current = self.client.generation.load(Ordering::Acquire);
        while let Some(d) = buffer.pop_front() {
            if d.generation == current {
                return Some(d);
            }
        }
        None
    }
}

impl std::fmt::Debug for NetConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetConsumer")
            .field("queue", &self.sub.queue)
            .field("sub", &self.sub.id)
            .finish()
    }
}

impl MessageConsumer for NetConsumer {
    fn queue_name(&self) -> &str {
        &self.sub.queue
    }

    fn recv_timeout(&self, timeout: Duration) -> MqResult<AnyDelivery> {
        // Every receive is a flush point for batched acks: the consumer is
        // demonstrably alive, so don't sit on credit the server could use.
        flush_acks(&self.client, &self.sub);
        // Deadline-based: spurious wakeups re-arm with the *remaining* time.
        let deadline = Instant::now() + timeout;
        let mut buffer = self.sub.buffer.lock();
        loop {
            if let Some(d) = self.pop_fresh(&mut buffer) {
                drop(buffer);
                return Ok(self.to_any(d));
            }
            if self.sub.closed.load(Ordering::Acquire) {
                return Err(MqError::Closed);
            }
            let timed_out = self
                .sub
                .buffer_cv
                .wait_until(&mut buffer, deadline)
                .timed_out();
            if timed_out {
                // A delivery can land at the same instant the wait times
                // out. The check must be non-destructive: popping here and
                // discarding would lose the message without an ack or
                // requeue, stranding one credit unit on the server. If
                // anything fresh is buffered, loop back so the top-of-loop
                // pop hands it out.
                let current = self.client.generation.load(Ordering::Acquire);
                if buffer.iter().all(|d| d.generation != current) {
                    return Err(MqError::RecvTimeout);
                }
            }
        }
    }

    fn try_recv(&self) -> Option<AnyDelivery> {
        flush_acks(&self.client, &self.sub);
        let mut buffer = self.sub.buffer.lock();
        self.pop_fresh(&mut buffer).map(|d| {
            drop(buffer);
            self.to_any(d)
        })
    }

    fn recv_batch(&self, timeout: Duration, max_n: usize) -> MqResult<Vec<AnyDelivery>> {
        let first = self.recv_timeout(timeout)?;
        let max_n = max_n.max(1);
        // Drain whatever else is already buffered under one lock instead of
        // re-locking per message like the default implementation.
        let mut rest = Vec::new();
        {
            let mut buffer = self.sub.buffer.lock();
            while rest.len() + 1 < max_n {
                match self.pop_fresh(&mut buffer) {
                    Some(d) => rest.push(d),
                    None => break,
                }
            }
        }
        let mut deliveries = Vec::with_capacity(rest.len() + 1);
        deliveries.push(first);
        deliveries.extend(rest.into_iter().map(|d| self.to_any(d)));
        Ok(deliveries)
    }
}

impl Drop for NetConsumer {
    fn drop(&mut self) {
        flush_acks(&self.client, &self.sub);
        self.sub.closed.store(true, Ordering::Release);
        self.sub.buffer_cv.notify_all();
        self.client.subs.lock().remove(&self.sub.id);
        if !self.client.stop.load(Ordering::Acquire) {
            let corr = self.client.next_corr.fetch_add(1, Ordering::Relaxed);
            let _ = self
                .client
                .send(&Request::Unsubscribe(self.sub.id).to_frame(corr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BrokerServer;
    use mqsim::MessageBroker;

    fn pair() -> (BrokerServer, NetBroker) {
        let server = BrokerServer::bind("127.0.0.1:0", MessageBroker::new()).unwrap();
        let client = NetBroker::connect(server.local_addr()).unwrap();
        (server, client)
    }

    #[test]
    fn full_surface_over_loopback() {
        let (server, client) = pair();
        client.declare_queue("q", QueueOptions::default()).unwrap();
        assert!(client.queue_exists("q"));
        assert!(!client.queue_exists("other"));
        client.declare_exchange("x", ExchangeKind::Fanout).unwrap();
        assert!(client.exchange_exists("x"));
        client.bind_queue("x", "", "q").unwrap();
        let n = client
            .publish("x", "", Message::from_static(b"fan"))
            .unwrap();
        assert_eq!(n, 1);
        client
            .publish_to_queue("q", Message::from_static(b"direct"))
            .unwrap();
        assert_eq!(client.queue_depth("q").unwrap(), 2);
        assert_eq!(client.queue_names(), vec!["q".to_string()]);
        assert!(client.queue_arrival_rate("q").unwrap() > 0.0);

        let consumer = client.subscribe("q").unwrap();
        let d1 = consumer.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(d1.message.payload(), b"fan");
        d1.ack();
        let d2 = consumer.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(d2.message.payload(), b"direct");
        d2.ack();

        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let stats = client.queue_stats("q").unwrap();
            if stats.acked == 2 && stats.unacked == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "acks not applied: {stats:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(client.purge_queue("q").unwrap(), 0);
        assert!(client.unbind_queue("x", "", "q").unwrap());
        client.delete_queue("q").unwrap();
        assert!(!client.queue_exists("q"));
        client.close();
        server.shutdown();
    }

    #[test]
    fn remote_errors_surface_typed() {
        let (server, client) = pair();
        assert_eq!(
            client.queue_depth("missing").unwrap_err(),
            MqError::QueueNotFound("missing".into())
        );
        client.close();
        server.shutdown();
    }

    #[test]
    fn dropped_delivery_requeues_on_server() {
        let (server, client) = pair();
        client.declare_queue("q", QueueOptions::default()).unwrap();
        client
            .publish_to_queue("q", Message::from_static(b"m"))
            .unwrap();
        let consumer = client.subscribe("q").unwrap();
        let d = consumer.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(!d.redelivered);
        drop(d); // implicit requeue
        let d2 = consumer.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(d2.redelivered);
        assert_eq!(d2.message.payload(), b"m");
        d2.ack();
        client.close();
        server.shutdown();
    }

    #[test]
    fn connect_to_nothing_fails_fast() {
        let config = NetConfig {
            op_timeout: Duration::from_millis(200),
            ..NetConfig::default()
        };
        // Port 1 is essentially never listening.
        let err = NetBroker::connect_with("127.0.0.1:1", config).unwrap_err();
        assert!(matches!(err, MqError::Transport(_)));
    }

    #[test]
    fn client_reconnects_and_resubscribes() {
        let (server, client) = pair();
        client.declare_queue("q", QueueOptions::default()).unwrap();
        let consumer = client.subscribe("q").unwrap();

        server.disconnect_all();

        // Publishing rides through the partition via retry.
        client
            .publish_to_queue("q", Message::from_static(b"after"))
            .unwrap();
        let d = consumer.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(d.message.payload(), b"after");
        d.ack();
        client.close();
        server.shutdown();
    }

    #[test]
    fn timeout_race_loses_no_delivery_or_credit() {
        let config = NetConfig {
            credit: 2,
            ..NetConfig::default()
        };
        let server = BrokerServer::bind("127.0.0.1:0", MessageBroker::new()).unwrap();
        let client = NetBroker::connect_with(server.local_addr(), config).unwrap();
        client.declare_queue("q", QueueOptions::default()).unwrap();
        let consumer = client.subscribe("q").unwrap();

        let publisher = client.clone();
        const N: usize = 100;
        let feeder = std::thread::spawn(move || {
            for i in 0..N {
                publisher
                    .publish_to_queue("q", Message::from_bytes(vec![i as u8]))
                    .unwrap();
                std::thread::sleep(Duration::from_micros(300));
            }
        });

        // Poll with tiny timeouts so condvar waits constantly race message
        // arrival. A delivery discarded on the timeout path would strand a
        // credit unit with no ack/requeue; at credit=2 two such losses
        // stall the consumer permanently and the deadline below trips.
        let mut got = 0usize;
        let deadline = Instant::now() + Duration::from_secs(30);
        while got < N {
            assert!(
                Instant::now() < deadline,
                "consumer stalled after {got}/{N} deliveries: credit leaked"
            );
            match consumer.recv_timeout(Duration::from_millis(1)) {
                Ok(d) => {
                    d.ack();
                    got += 1;
                }
                Err(MqError::RecvTimeout) => {}
                Err(e) => panic!("unexpected recv error: {e:?}"),
            }
        }
        feeder.join().unwrap();
        client.close();
        server.shutdown();
    }

    #[test]
    fn dropping_last_clone_shuts_down_client() {
        let (server, client) = pair();
        let inner = client.inner.clone();
        let second_handle = client.clone();
        drop(client);
        assert!(
            !inner.stop.load(Ordering::Acquire),
            "shutdown fired while a clone was still alive"
        );
        drop(second_handle);
        assert!(
            inner.stop.load(Ordering::Acquire),
            "dropping the last clone must stop the supervisor"
        );
        // The supervisor exits and the connection closes; the server sees
        // the disconnect and tears the connection state down on its side.
        server.shutdown();
    }

    #[test]
    fn batched_publish_and_ack_round_trip() {
        let (server, client) = pair();
        client.declare_queue("q", QueueOptions::default()).unwrap();
        let batch: Vec<Message> = (0..20u8).map(|i| Message::from_bytes(vec![i])).collect();
        client.publish_batch_to_queue("q", batch).unwrap();
        assert_eq!(client.queue_depth("q").unwrap(), 20);

        let consumer = client.subscribe("q").unwrap();
        let mut got = 0usize;
        while got < 20 {
            let deliveries = consumer
                .recv_batch(Duration::from_secs(2), 8)
                .expect("batch within timeout");
            assert!(!deliveries.is_empty());
            for d in deliveries {
                assert_eq!(d.message.payload(), &[got as u8], "FIFO order");
                d.ack();
                got += 1;
            }
        }
        // Batched acks are flushed lazily; poll until the server applied
        // them all (the empty-buffer flush fires on the last ack).
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let stats = client.queue_stats("q").unwrap();
            if stats.acked == 20 && stats.unacked == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "acks never applied: {stats:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
        client.close();
        server.shutdown();
    }

    #[test]
    fn unbatched_client_still_round_trips() {
        let server = BrokerServer::bind("127.0.0.1:0", MessageBroker::new()).unwrap();
        let config = NetConfig {
            batch: false,
            ..NetConfig::default()
        };
        let client = NetBroker::connect_with(server.local_addr(), config).unwrap();
        client.declare_queue("q", QueueOptions::default()).unwrap();
        let batch: Vec<Message> = (0..5u8).map(|i| Message::from_bytes(vec![i])).collect();
        client.publish_batch_to_queue("q", batch).unwrap();
        let consumer = client.subscribe("q").unwrap();
        for i in 0..5u8 {
            let d = consumer.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(d.message.payload(), &[i]);
            d.ack();
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let stats = client.queue_stats("q").unwrap();
            if stats.acked == 5 {
                break;
            }
            assert!(Instant::now() < deadline, "acks never applied: {stats:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
        client.close();
        server.shutdown();
    }

    #[test]
    fn pending_acks_flush_on_consumer_drop() {
        let (server, client) = pair();
        client.declare_queue("q", QueueOptions::default()).unwrap();
        for i in 0..3u8 {
            client
                .publish_to_queue("q", Message::from_bytes(vec![i]))
                .unwrap();
        }
        let consumer = client.subscribe("q").unwrap();
        // Ack while more deliveries are still buffered locally, so the
        // empty-buffer flush never fires for the early acks.
        let deliveries = consumer.recv_batch(Duration::from_secs(2), 8).unwrap();
        let n = deliveries.len();
        for d in deliveries {
            d.ack();
        }
        drop(consumer); // drop must flush whatever is still pending
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let stats = client.queue_stats("q").unwrap();
            if stats.acked as usize >= n {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "drop did not flush pending acks: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        client.close();
        server.shutdown();
    }

    #[test]
    fn recv_timeout_does_not_drift_past_deadline() {
        let (server, client) = pair();
        client.declare_queue("q", QueueOptions::default()).unwrap();
        let consumer = client.subscribe("q").unwrap();
        let started = Instant::now();
        let err = consumer
            .recv_timeout(Duration::from_millis(200))
            .unwrap_err();
        assert_eq!(err, MqError::RecvTimeout);
        let elapsed = started.elapsed();
        assert!(
            elapsed >= Duration::from_millis(200) && elapsed < Duration::from_millis(600),
            "recv_timeout took {elapsed:?}"
        );
        client.close();
        server.shutdown();
    }
}
