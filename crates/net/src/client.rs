//! The client: a [`Messaging`] implementation that forwards every operation
//! to a remote [`crate::BrokerServer`] over TCP.
//!
//! ## Connection supervision
//!
//! A supervisor thread owns the connection. While healthy it sends a ping
//! every [`NetConfig::heartbeat`]; when the socket dies (read error, ping
//! timeout, reset) it reconnects with capped exponential backoff plus
//! jitter, then replays every live subscription under its original
//! subscription id. The server side requeued whatever was unacked when the
//! old connection died, so redelivery after reconnect is automatic.
//!
//! Requests are retried transparently across reconnects until the operation
//! timeout elapses, so a blocking publish simply rides through a short
//! partition. Deliveries buffered client-side are tagged with the
//! connection *generation*; a stale-generation delivery is dropped instead
//! of acked, because its server-side tag died with the old connection.

use crate::frame::{write_frame, FrameBuffer, Request, ServerFrame};
use crate::stats_from_value;
use mqsim::{
    AnyDelivery, Clock, ExchangeKind, Message, MessageConsumer, Messaging, MqError, MqResult,
    QueueOptions, QueueStats, SystemClock,
};
use parking_lot::{Condvar, Mutex};
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wire::Value;

/// Tuning knobs of a [`NetBroker`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-operation timeout: how long a broker call may retry across
    /// reconnects before failing with [`MqError::Transport`].
    pub op_timeout: Duration,
    /// Delivery credit granted per subscription (max unacked in flight).
    pub credit: u64,
    /// Ping period while the connection is healthy.
    pub heartbeat: Duration,
    /// First reconnect delay; doubles per attempt up to `backoff_cap`.
    pub backoff_initial: Duration,
    /// Upper bound of the reconnect backoff.
    pub backoff_cap: Duration,
    /// TCP connection-establishment timeout per reconnect attempt.
    pub connect_timeout: Duration,
    /// Time source for the reconnect backoff. Fault-injection tests swap in
    /// a [`mqsim::VirtualClock`] so backoff is stepped instead of slept.
    pub clock: Arc<dyn Clock>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            op_timeout: Duration::from_secs(10),
            credit: 64,
            heartbeat: Duration::from_millis(500),
            backoff_initial: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
            clock: Arc::new(SystemClock::new()),
        }
    }
}

/// A remote [`Messaging`] provider speaking the frame protocol over TCP.
///
/// Cheap to clone; clones share one connection and supervisor. Dropping the
/// last clone closes the connection as if [`NetBroker::close`] were called:
/// the supervisor and heartbeats stop, and consumers created from this
/// broker wake with [`MqError::Closed`].
#[derive(Clone)]
pub struct NetBroker {
    inner: Arc<ClientInner>,
    _close: Arc<CloseOnDrop>,
}

/// Shuts the client down when the last [`NetBroker`] clone is dropped. The
/// supervisor thread holds its own `Arc<ClientInner>`, so the inner
/// refcount alone can never reach zero while the connection is alive — this
/// guard, held only by broker handles, is what makes `drop` reach
/// `shutdown`.
struct CloseOnDrop(Arc<ClientInner>);

impl Drop for CloseOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

struct ClientInner {
    addr: SocketAddr,
    config: NetConfig,
    /// Current writer half, `None` while disconnected.
    writer: Mutex<Option<TcpStream>>,
    /// Bumped on every successful reconnect; deliveries carry the
    /// generation they arrived under.
    generation: AtomicU64,
    connected: Mutex<bool>,
    connected_cv: Condvar,
    pending: Mutex<HashMap<u64, Arc<ReqSlot>>>,
    subs: Mutex<HashMap<u64, Arc<SubInner>>>,
    next_corr: AtomicU64,
    next_sub: AtomicU64,
    stop: AtomicBool,
    reconnects: Arc<obs::Counter>,
}

struct ReqSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

enum SlotState {
    Waiting,
    Done(MqResult<Value>),
    /// The connection died before a reply arrived; retry on the next one.
    ConnectionLost,
}

struct SubInner {
    id: u64,
    queue: String,
    buffer: Mutex<VecDeque<BufferedDelivery>>,
    buffer_cv: Condvar,
    closed: AtomicBool,
}

struct BufferedDelivery {
    generation: u64,
    tag: u64,
    redelivered: bool,
    message: Message,
}

impl NetBroker {
    /// Connects to a [`crate::BrokerServer`] with default configuration.
    ///
    /// # Errors
    ///
    /// [`MqError::Transport`] if the first connection cannot be established
    /// within the operation timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> MqResult<NetBroker> {
        NetBroker::connect_with(addr, NetConfig::default())
    }

    /// Connects with explicit configuration.
    ///
    /// # Errors
    ///
    /// [`MqError::Transport`] on address resolution failure or if no
    /// connection is established within `config.op_timeout`.
    pub fn connect_with(addr: impl ToSocketAddrs, config: NetConfig) -> MqResult<NetBroker> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| MqError::Transport(format!("address resolution failed: {e}")))?
            .next()
            .ok_or_else(|| MqError::Transport("address resolved to nothing".into()))?;
        let op_timeout = config.op_timeout;
        let inner = Arc::new(ClientInner {
            addr,
            config,
            writer: Mutex::new(None),
            generation: AtomicU64::new(0),
            connected: Mutex::new(false),
            connected_cv: Condvar::new(),
            pending: Mutex::new(HashMap::new()),
            subs: Mutex::new(HashMap::new()),
            next_corr: AtomicU64::new(1),
            next_sub: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            reconnects: obs::counter("net.client.reconnects"),
        });
        let supervisor_inner = inner.clone();
        std::thread::spawn(move || supervisor_loop(&supervisor_inner));
        let broker = NetBroker {
            _close: Arc::new(CloseOnDrop(inner.clone())),
            inner,
        };
        // Surface an unreachable server at construction time.
        broker.inner.wait_connected(Instant::now() + op_timeout)?;
        Ok(broker)
    }

    /// Closes the connection and stops the supervisor. Outstanding calls
    /// fail with [`MqError::Transport`]; consumers wake with
    /// [`MqError::Closed`].
    pub fn close(&self) {
        self.inner.shutdown();
    }
}

impl std::fmt::Debug for NetBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetBroker")
            .field("addr", &self.inner.addr)
            .field("generation", &self.inner.generation.load(Ordering::Relaxed))
            .finish()
    }
}

impl ClientInner {
    fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.drop_connection();
        for sub in self.subs.lock().values() {
            sub.closed.store(true, Ordering::Release);
            sub.buffer_cv.notify_all();
        }
    }

    /// Tears the current connection down and fails outstanding requests
    /// with `ConnectionLost` so their callers retry.
    fn drop_connection(&self) {
        let stream = self.writer.lock().take();
        if let Some(s) = stream {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        *self.connected.lock() = false;
        let pending: Vec<Arc<ReqSlot>> = self.pending.lock().drain().map(|(_, s)| s).collect();
        for slot in pending {
            let mut state = slot.state.lock();
            if matches!(*state, SlotState::Waiting) {
                *state = SlotState::ConnectionLost;
                slot.cv.notify_all();
            }
        }
    }

    /// Blocks until the supervisor reports a live connection.
    fn wait_connected(&self, deadline: Instant) -> MqResult<()> {
        let mut connected = self.connected.lock();
        while !*connected {
            if self.stop.load(Ordering::Acquire) {
                return Err(MqError::Transport("client closed".into()));
            }
            if self
                .connected_cv
                .wait_until(&mut connected, deadline)
                .timed_out()
                && !*connected
            {
                return Err(MqError::Transport(format!(
                    "no connection to {} within the operation timeout",
                    self.addr
                )));
            }
        }
        Ok(())
    }

    /// Sends one request and waits for its reply, retrying across
    /// reconnects until the operation deadline.
    fn request(&self, req: &Request) -> MqResult<Value> {
        let rpc_seconds = obs::histogram("net.client.rpc_seconds");
        let started = Instant::now();
        let deadline = started + self.config.op_timeout;
        loop {
            self.wait_connected(deadline)?;
            let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
            let slot = Arc::new(ReqSlot {
                state: Mutex::new(SlotState::Waiting),
                cv: Condvar::new(),
            });
            self.pending.lock().insert(corr, slot.clone());
            if !self.send(&req.to_frame(corr)) {
                self.pending.lock().remove(&corr);
                continue; // connection died while sending; retry
            }
            let outcome = {
                let mut state = slot.state.lock();
                loop {
                    match std::mem::replace(&mut *state, SlotState::Waiting) {
                        SlotState::Done(result) => break Some(result),
                        SlotState::ConnectionLost => break None,
                        SlotState::Waiting => {}
                    }
                    if slot.cv.wait_until(&mut state, deadline).timed_out()
                        && matches!(*state, SlotState::Waiting)
                    {
                        break Some(Err(MqError::Transport(format!(
                            "request timed out after {:?}",
                            self.config.op_timeout
                        ))));
                    }
                }
            };
            self.pending.lock().remove(&corr);
            match outcome {
                Some(result) => {
                    rpc_seconds.record(started.elapsed());
                    return result;
                }
                None => continue, // reconnect happened mid-request: retry
            }
        }
    }

    /// Serializes a frame on the current connection. `false` if there is no
    /// connection or the write failed (the connection is torn down).
    fn send(&self, frame: &Value) -> bool {
        let mut writer_guard = self.writer.lock();
        let Some(writer) = writer_guard.as_mut() else {
            return false;
        };
        match write_frame(writer, frame) {
            Ok(n) => {
                obs::counter("net.client.bytes_out").add(n as u64);
                true
            }
            Err(_) => {
                drop(writer_guard);
                self.drop_connection();
                false
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Supervisor: connect, read, heartbeat, reconnect
// ---------------------------------------------------------------------------

fn supervisor_loop(inner: &Arc<ClientInner>) {
    let mut rng = rand::rngs::StdRng::from_entropy();
    let mut attempt = 0u32;
    let mut ever_connected = false;
    while !inner.stop.load(Ordering::Acquire) {
        let stream = match TcpStream::connect_timeout(&inner.addr, inner.config.connect_timeout) {
            Ok(s) => s,
            Err(_) => {
                backoff(inner, &mut rng, &mut attempt);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let Ok(reader) = stream.try_clone() else {
            backoff(inner, &mut rng, &mut attempt);
            continue;
        };
        attempt = 0;
        if ever_connected {
            inner.reconnects.inc();
        }
        ever_connected = true;
        inner.generation.fetch_add(1, Ordering::AcqRel);
        *inner.writer.lock() = Some(stream);

        // Replay live subscriptions under their original ids *before*
        // signalling connected, so no caller observes a half-restored
        // session. Replies to these resubscribes are matched by the reader
        // below like any other.
        let subs: Vec<Arc<SubInner>> = inner.subs.lock().values().cloned().collect();
        let mut replay_ok = true;
        for sub in subs {
            let req = Request::Subscribe {
                queue: sub.queue.clone(),
                sub: sub.id,
                credit: inner.config.credit,
            };
            let corr = inner.next_corr.fetch_add(1, Ordering::Relaxed);
            if !inner.send(&req.to_frame(corr)) {
                replay_ok = false;
                break;
            }
        }
        if !replay_ok {
            backoff(inner, &mut rng, &mut attempt);
            continue;
        }
        {
            let mut connected = inner.connected.lock();
            *connected = true;
            inner.connected_cv.notify_all();
        }

        reader_loop(inner, reader);
        inner.drop_connection();
    }
}

fn backoff(inner: &Arc<ClientInner>, rng: &mut rand::rngs::StdRng, attempt: &mut u32) {
    let base = inner
        .config
        .backoff_initial
        .saturating_mul(1u32 << (*attempt).min(16))
        .min(inner.config.backoff_cap);
    // Full jitter: sleep uniformly in [base/2, base].
    let jittered = base.mul_f64(0.5 + 0.5 * rng.gen::<f64>());
    *attempt = attempt.saturating_add(1);
    // Wait on the configured clock, a tick at a time, so shutdown stays
    // responsive and virtual-clock tests can step through the backoff.
    let clock = &inner.config.clock;
    let deadline = clock.now() + jittered;
    while clock.now() < deadline && !inner.stop.load(Ordering::Acquire) {
        if !clock.wait_tick(deadline) {
            return;
        }
    }
}

/// Reads frames until the connection dies, dispatching replies to request
/// slots and deliveries to subscription buffers. Doubles as the heartbeat
/// emitter: with a read timeout of one heartbeat, each timeout tick sends a
/// ping; a connection that misses three ticks without any traffic is
/// declared dead.
fn reader_loop(inner: &Arc<ClientInner>, mut reader: TcpStream) {
    let bytes_in = obs::counter("net.client.bytes_in");
    let _ = reader.set_read_timeout(Some(inner.config.heartbeat));
    // A read timeout can fire mid-frame; FrameBuffer keeps the partial bytes
    // so the heartbeat tick never desynchronizes the stream.
    let mut frames = FrameBuffer::new();
    let mut quiet_ticks = 0u32;
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let (frame, n) = match frames.read_step(&mut reader) {
            Ok(Some(ok)) => ok,
            Ok(None) => {
                quiet_ticks += 1;
                if quiet_ticks > 3 {
                    return; // peer silent through 3 heartbeats: dead
                }
                let corr = inner.next_corr.fetch_add(1, Ordering::Relaxed);
                if !inner.send(&Request::Ping.to_frame(corr)) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        quiet_ticks = 0;
        bytes_in.add(n as u64);
        match ServerFrame::from_value(&frame) {
            Ok(ServerFrame::Reply { corr, result }) => {
                let slot = inner.pending.lock().get(&corr).cloned();
                if let Some(slot) = slot {
                    *slot.state.lock() = SlotState::Done(result);
                    slot.cv.notify_all();
                }
                // No slot: a fire-and-forget reply (resubscribe, ack, ping).
            }
            Ok(ServerFrame::Deliver {
                sub,
                tag,
                redelivered,
                message,
            }) => {
                let generation = inner.generation.load(Ordering::Acquire);
                let sub_inner = inner.subs.lock().get(&sub).cloned();
                if let Some(s) = sub_inner {
                    s.buffer.lock().push_back(BufferedDelivery {
                        generation,
                        tag,
                        redelivered,
                        message,
                    });
                    s.buffer_cv.notify_one();
                }
            }
            Err(_) => return, // protocol violation: reconnect
        }
    }
}

// ---------------------------------------------------------------------------
// Messaging impl
// ---------------------------------------------------------------------------

/// Collapses a fallible existence probe into the infallible `Messaging`
/// signature, counting transport-degraded answers (see
/// [`Messaging::queue_exists`] on [`NetBroker`] for the semantics).
fn exists_or_degraded(result: MqResult<bool>) -> bool {
    match result {
        Ok(exists) => exists,
        Err(_) => {
            obs::counter("net.client.exists_degraded").inc();
            false
        }
    }
}

impl Messaging for NetBroker {
    fn declare_queue(&self, name: &str, options: QueueOptions) -> MqResult<()> {
        self.inner
            .request(&Request::DeclareQueue(name.into(), options))
            .map(|_| ())
    }

    fn delete_queue(&self, name: &str) -> MqResult<()> {
        self.inner
            .request(&Request::DeleteQueue(name.into()))
            .map(|_| ())
    }

    fn purge_queue(&self, name: &str) -> MqResult<usize> {
        let v = self.inner.request(&Request::PurgeQueue(name.into()))?;
        Ok(v.as_u64().unwrap_or(0) as usize)
    }

    fn declare_exchange(&self, name: &str, kind: ExchangeKind) -> MqResult<()> {
        self.inner
            .request(&Request::DeclareExchange(name.into(), kind))
            .map(|_| ())
    }

    fn bind_queue(&self, exchange: &str, routing_key: &str, queue: &str) -> MqResult<()> {
        self.inner
            .request(&Request::BindQueue(
                exchange.into(),
                routing_key.into(),
                queue.into(),
            ))
            .map(|_| ())
    }

    fn unbind_queue(&self, exchange: &str, routing_key: &str, queue: &str) -> MqResult<bool> {
        let v = self.inner.request(&Request::UnbindQueue(
            exchange.into(),
            routing_key.into(),
            queue.into(),
        ))?;
        v.as_bool()
            .map_err(|e| MqError::Transport(format!("bad unbind reply: {e}")))
    }

    /// Whether the queue exists on the server.
    ///
    /// The `Messaging` signature is infallible, so a transport failure that
    /// outlasts the whole operation timeout (the request already retries
    /// across reconnects until then) degrades to `false` — over TCP a long
    /// partition is indistinguishable from "queue deleted". Callers that
    /// must tell the two apart should probe with a fallible call such as
    /// [`Messaging::queue_depth`], which surfaces [`MqError::Transport`].
    /// Each degraded answer bumps the `net.client.exists_degraded` counter.
    fn queue_exists(&self, name: &str) -> bool {
        exists_or_degraded(
            self.inner
                .request(&Request::QueueExists(name.into()))
                .and_then(|v| v.as_bool().map_err(|e| MqError::Transport(e.to_string()))),
        )
    }

    /// Whether the exchange exists on the server. Same degraded semantics
    /// under partition as [`Self::queue_exists`].
    fn exchange_exists(&self, name: &str) -> bool {
        exists_or_degraded(
            self.inner
                .request(&Request::ExchangeExists(name.into()))
                .and_then(|v| v.as_bool().map_err(|e| MqError::Transport(e.to_string()))),
        )
    }

    fn publish_to_queue(&self, queue: &str, message: Message) -> MqResult<()> {
        self.inner
            .request(&Request::PublishToQueue(queue.into(), message))
            .map(|_| ())
    }

    fn publish(&self, exchange: &str, routing_key: &str, message: Message) -> MqResult<usize> {
        let v = self.inner.request(&Request::Publish(
            exchange.into(),
            routing_key.into(),
            message,
        ))?;
        Ok(v.as_u64().unwrap_or(0) as usize)
    }

    fn subscribe(&self, queue: &str) -> MqResult<Box<dyn MessageConsumer>> {
        let sub_id = self.inner.next_sub.fetch_add(1, Ordering::Relaxed);
        let sub = Arc::new(SubInner {
            id: sub_id,
            queue: queue.to_string(),
            buffer: Mutex::new(VecDeque::new()),
            buffer_cv: Condvar::new(),
            closed: AtomicBool::new(false),
        });
        // Register before the request: a delivery may race the reply.
        self.inner.subs.lock().insert(sub_id, sub.clone());
        let result = self.inner.request(&Request::Subscribe {
            queue: queue.to_string(),
            sub: sub_id,
            credit: self.inner.config.credit,
        });
        if let Err(e) = result {
            self.inner.subs.lock().remove(&sub_id);
            return Err(e);
        }
        Ok(Box::new(NetConsumer {
            client: self.inner.clone(),
            sub,
        }))
    }

    fn queue_stats(&self, name: &str) -> MqResult<QueueStats> {
        let v = self.inner.request(&Request::QueueStats(name.into()))?;
        stats_from_value(&v).map_err(MqError::from)
    }

    fn queue_depth(&self, name: &str) -> MqResult<usize> {
        let v = self.inner.request(&Request::QueueDepth(name.into()))?;
        Ok(v.as_u64().unwrap_or(0) as usize)
    }

    fn queue_arrival_rate(&self, name: &str) -> MqResult<f64> {
        let v = self
            .inner
            .request(&Request::QueueArrivalRate(name.into()))?;
        v.as_f64()
            .map_err(|e| MqError::Transport(format!("bad rate reply: {e}")))
    }

    fn queue_names(&self) -> Vec<String> {
        self.inner
            .request(&Request::QueueNames)
            .ok()
            .and_then(|v| {
                v.as_list().ok().map(|items| {
                    items
                        .iter()
                        .filter_map(|i| i.as_str().ok().map(str::to_string))
                        .collect()
                })
            })
            .unwrap_or_default()
    }
}

// ---------------------------------------------------------------------------
// NetConsumer
// ---------------------------------------------------------------------------

/// Client-side consumer handle for one remote subscription.
struct NetConsumer {
    client: Arc<ClientInner>,
    sub: Arc<SubInner>,
}

impl NetConsumer {
    fn to_any(&self, d: BufferedDelivery) -> AnyDelivery {
        let client = self.client.clone();
        let sub_id = self.sub.id;
        let generation = d.generation;
        let tag = d.tag;
        AnyDelivery::new(d.message, d.redelivered, move |ok| {
            // A delivery from a previous connection generation has no live
            // server-side tag: the server already requeued it when the old
            // connection died, so resolving it now would mis-ack a tag that
            // may have been reassigned.
            if client.generation.load(Ordering::Acquire) != generation {
                return;
            }
            let req = if ok {
                Request::Ack(sub_id, tag)
            } else {
                Request::Requeue(sub_id, tag)
            };
            // Fire-and-forget: on a dead connection the server-side drop
            // path requeues for us anyway.
            let corr = client.next_corr.fetch_add(1, Ordering::Relaxed);
            let _ = client.send(&req.to_frame(corr));
        })
    }

    /// Pops the next current-generation delivery, discarding stale ones.
    fn pop_fresh(&self, buffer: &mut VecDeque<BufferedDelivery>) -> Option<BufferedDelivery> {
        let current = self.client.generation.load(Ordering::Acquire);
        while let Some(d) = buffer.pop_front() {
            if d.generation == current {
                return Some(d);
            }
        }
        None
    }
}

impl std::fmt::Debug for NetConsumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetConsumer")
            .field("queue", &self.sub.queue)
            .field("sub", &self.sub.id)
            .finish()
    }
}

impl MessageConsumer for NetConsumer {
    fn queue_name(&self) -> &str {
        &self.sub.queue
    }

    fn recv_timeout(&self, timeout: Duration) -> MqResult<AnyDelivery> {
        // Deadline-based: spurious wakeups re-arm with the *remaining* time.
        let deadline = Instant::now() + timeout;
        let mut buffer = self.sub.buffer.lock();
        loop {
            if let Some(d) = self.pop_fresh(&mut buffer) {
                drop(buffer);
                return Ok(self.to_any(d));
            }
            if self.sub.closed.load(Ordering::Acquire) {
                return Err(MqError::Closed);
            }
            let timed_out = self
                .sub
                .buffer_cv
                .wait_until(&mut buffer, deadline)
                .timed_out();
            if timed_out {
                // A delivery can land at the same instant the wait times
                // out. The check must be non-destructive: popping here and
                // discarding would lose the message without an ack or
                // requeue, stranding one credit unit on the server. If
                // anything fresh is buffered, loop back so the top-of-loop
                // pop hands it out.
                let current = self.client.generation.load(Ordering::Acquire);
                if buffer.iter().all(|d| d.generation != current) {
                    return Err(MqError::RecvTimeout);
                }
            }
        }
    }

    fn try_recv(&self) -> Option<AnyDelivery> {
        let mut buffer = self.sub.buffer.lock();
        self.pop_fresh(&mut buffer).map(|d| {
            drop(buffer);
            self.to_any(d)
        })
    }
}

impl Drop for NetConsumer {
    fn drop(&mut self) {
        self.sub.closed.store(true, Ordering::Release);
        self.sub.buffer_cv.notify_all();
        self.client.subs.lock().remove(&self.sub.id);
        if !self.client.stop.load(Ordering::Acquire) {
            let corr = self.client.next_corr.fetch_add(1, Ordering::Relaxed);
            let _ = self
                .client
                .send(&Request::Unsubscribe(self.sub.id).to_frame(corr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BrokerServer;
    use mqsim::MessageBroker;

    fn pair() -> (BrokerServer, NetBroker) {
        let server = BrokerServer::bind("127.0.0.1:0", MessageBroker::new()).unwrap();
        let client = NetBroker::connect(server.local_addr()).unwrap();
        (server, client)
    }

    #[test]
    fn full_surface_over_loopback() {
        let (server, client) = pair();
        client.declare_queue("q", QueueOptions::default()).unwrap();
        assert!(client.queue_exists("q"));
        assert!(!client.queue_exists("other"));
        client.declare_exchange("x", ExchangeKind::Fanout).unwrap();
        assert!(client.exchange_exists("x"));
        client.bind_queue("x", "", "q").unwrap();
        let n = client
            .publish("x", "", Message::from_bytes(b"fan".to_vec()))
            .unwrap();
        assert_eq!(n, 1);
        client
            .publish_to_queue("q", Message::from_bytes(b"direct".to_vec()))
            .unwrap();
        assert_eq!(client.queue_depth("q").unwrap(), 2);
        assert_eq!(client.queue_names(), vec!["q".to_string()]);
        assert!(client.queue_arrival_rate("q").unwrap() > 0.0);

        let consumer = client.subscribe("q").unwrap();
        let d1 = consumer.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(d1.message.payload(), b"fan");
        d1.ack();
        let d2 = consumer.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(d2.message.payload(), b"direct");
        d2.ack();

        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let stats = client.queue_stats("q").unwrap();
            if stats.acked == 2 && stats.unacked == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "acks not applied: {stats:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(client.purge_queue("q").unwrap(), 0);
        assert!(client.unbind_queue("x", "", "q").unwrap());
        client.delete_queue("q").unwrap();
        assert!(!client.queue_exists("q"));
        client.close();
        server.shutdown();
    }

    #[test]
    fn remote_errors_surface_typed() {
        let (server, client) = pair();
        assert_eq!(
            client.queue_depth("missing").unwrap_err(),
            MqError::QueueNotFound("missing".into())
        );
        client.close();
        server.shutdown();
    }

    #[test]
    fn dropped_delivery_requeues_on_server() {
        let (server, client) = pair();
        client.declare_queue("q", QueueOptions::default()).unwrap();
        client
            .publish_to_queue("q", Message::from_bytes(b"m".to_vec()))
            .unwrap();
        let consumer = client.subscribe("q").unwrap();
        let d = consumer.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(!d.redelivered);
        drop(d); // implicit requeue
        let d2 = consumer.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(d2.redelivered);
        assert_eq!(d2.message.payload(), b"m");
        d2.ack();
        client.close();
        server.shutdown();
    }

    #[test]
    fn connect_to_nothing_fails_fast() {
        let config = NetConfig {
            op_timeout: Duration::from_millis(200),
            ..NetConfig::default()
        };
        // Port 1 is essentially never listening.
        let err = NetBroker::connect_with("127.0.0.1:1", config).unwrap_err();
        assert!(matches!(err, MqError::Transport(_)));
    }

    #[test]
    fn client_reconnects_and_resubscribes() {
        let (server, client) = pair();
        client.declare_queue("q", QueueOptions::default()).unwrap();
        let consumer = client.subscribe("q").unwrap();

        server.disconnect_all();

        // Publishing rides through the partition via retry.
        client
            .publish_to_queue("q", Message::from_bytes(b"after".to_vec()))
            .unwrap();
        let d = consumer.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(d.message.payload(), b"after");
        d.ack();
        client.close();
        server.shutdown();
    }

    #[test]
    fn timeout_race_loses_no_delivery_or_credit() {
        let config = NetConfig {
            credit: 2,
            ..NetConfig::default()
        };
        let server = BrokerServer::bind("127.0.0.1:0", MessageBroker::new()).unwrap();
        let client = NetBroker::connect_with(server.local_addr(), config).unwrap();
        client.declare_queue("q", QueueOptions::default()).unwrap();
        let consumer = client.subscribe("q").unwrap();

        let publisher = client.clone();
        const N: usize = 100;
        let feeder = std::thread::spawn(move || {
            for i in 0..N {
                publisher
                    .publish_to_queue("q", Message::from_bytes(vec![i as u8]))
                    .unwrap();
                std::thread::sleep(Duration::from_micros(300));
            }
        });

        // Poll with tiny timeouts so condvar waits constantly race message
        // arrival. A delivery discarded on the timeout path would strand a
        // credit unit with no ack/requeue; at credit=2 two such losses
        // stall the consumer permanently and the deadline below trips.
        let mut got = 0usize;
        let deadline = Instant::now() + Duration::from_secs(30);
        while got < N {
            assert!(
                Instant::now() < deadline,
                "consumer stalled after {got}/{N} deliveries: credit leaked"
            );
            match consumer.recv_timeout(Duration::from_millis(1)) {
                Ok(d) => {
                    d.ack();
                    got += 1;
                }
                Err(MqError::RecvTimeout) => {}
                Err(e) => panic!("unexpected recv error: {e:?}"),
            }
        }
        feeder.join().unwrap();
        client.close();
        server.shutdown();
    }

    #[test]
    fn dropping_last_clone_shuts_down_client() {
        let (server, client) = pair();
        let inner = client.inner.clone();
        let second_handle = client.clone();
        drop(client);
        assert!(
            !inner.stop.load(Ordering::Acquire),
            "shutdown fired while a clone was still alive"
        );
        drop(second_handle);
        assert!(
            inner.stop.load(Ordering::Acquire),
            "dropping the last clone must stop the supervisor"
        );
        // The supervisor exits and the connection closes; the server sees
        // the disconnect and tears the connection state down on its side.
        server.shutdown();
    }

    #[test]
    fn recv_timeout_does_not_drift_past_deadline() {
        let (server, client) = pair();
        client.declare_queue("q", QueueOptions::default()).unwrap();
        let consumer = client.subscribe("q").unwrap();
        let started = Instant::now();
        let err = consumer
            .recv_timeout(Duration::from_millis(200))
            .unwrap_err();
        assert_eq!(err, MqError::RecvTimeout);
        let elapsed = started.elapsed();
        assert!(
            elapsed >= Duration::from_millis(200) && elapsed < Duration::from_millis(600),
            "recv_timeout took {elapsed:?}"
        );
        client.close();
        server.shutdown();
    }
}
