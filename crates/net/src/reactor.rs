//! A small hand-rolled readiness reactor over `poll(2)`.
//!
//! One [`Reactor`] is one event-loop thread multiplexing every registered
//! [`EventSource`] — nonblocking sockets with per-connection state machines
//! — so a process holds thousands of connections on a handful of threads
//! instead of a thread (or two) per connection. The loop:
//!
//! 1. snapshots the source table and rebuilds the `pollfd` set (plus a
//!    self-wake pipe at slot 0);
//! 2. blocks in `poll(2)` until readiness, a wake, or the tick deadline;
//! 3. dispatches `ready()` to each source whose fd fired (`POLLERR` /
//!    `POLLHUP` / `POLLNVAL` are folded into readability so failures
//!    surface through the source's read path);
//! 4. on the tick deadline, runs every source's `tick()` (heartbeats,
//!    reconnect backoff, backstop dispatch sweeps);
//! 5. runs the owner's per-pass callback (the server drains its
//!    dispatch-pending flag here).
//!
//! Cross-thread wakeups go through a nonblocking `UnixStream` pair: any
//! thread that changes a source's interest set (say, a writer that hit
//! `WouldBlock` and now needs `POLLOUT`) or enqueues work for the loop
//! calls [`Reactor::wake`], which writes one byte to the pipe; the loop
//! wakes, drains the pipe, and rebuilds interests from source state.
//!
//! Observability (the PR-6 surface, per reactor):
//! `<name>.reactor.fds` — registered sources gauge;
//! `<name>.reactor.ready_per_tick` — gauge of ready events in the latest
//! pass (plus `<name>.reactor.ready_events_total`);
//! `<name>.reactor.loop_seconds` — histogram of time spent *processing*
//! each pass (poll wait excluded, so idle loops don't drown the signal);
//! `<name>.reactor.wakeups_total` — explicit cross-thread wakeups.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Interest bit: wake the source when its fd is readable.
pub(crate) const INTEREST_READ: u8 = 0b01;
/// Interest bit: wake the source when its fd is writable.
pub(crate) const INTEREST_WRITE: u8 = 0b10;

/// What a source wants after an event callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ready {
    /// Keep the registration.
    Continue,
    /// Drop the registration (the loop releases its `Arc`).
    Remove,
}

/// One registered fd with its state machine.
///
/// Callbacks run on the loop thread with no reactor locks held, so they
/// may freely register/deregister sources and wake other reactors.
pub(crate) trait EventSource: Send + Sync {
    /// The fd to poll. Must stay valid while registered (the owner keeps
    /// the socket alive inside the source).
    fn fd(&self) -> RawFd;
    /// Current interest set ([`INTEREST_READ`] / [`INTEREST_WRITE`] bits),
    /// re-read every pass — flip interests and call [`Reactor::wake`].
    fn interest(&self) -> u8;
    /// The fd fired. Error/hangup conditions arrive as `readable` so they
    /// surface through the ordinary read path (a read yields `Eof`/`Err`).
    fn ready(&self, readable: bool, writable: bool) -> Ready;
    /// Periodic maintenance at the reactor's tick cadence.
    fn tick(&self) -> Ready {
        Ready::Continue
    }
}

struct ReactorShared {
    sources: parking_lot::Mutex<HashMap<u64, Arc<dyn EventSource>>>,
    next_token: AtomicU64,
    /// Write end of the self-wake pipe (nonblocking; a full pipe means a
    /// wake is already pending, which is all a wake means).
    wake_tx: parking_lot::Mutex<UnixStream>,
    stop: AtomicBool,
    /// Per-pass callback run after event dispatch (and ticks).
    pass: parking_lot::Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
    wakeups: Arc<obs::Counter>,
}

/// One event-loop thread. Dropping the reactor stops and joins it.
pub(crate) struct Reactor {
    shared: Arc<ReactorShared>,
    thread: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Reactor {
    /// Spawns the loop thread. `name` prefixes the reactor metrics (e.g.
    /// `net.server`); `tick` is the cadence of `tick()` callbacks and the
    /// upper bound on poll sleep.
    pub(crate) fn start(name: &str, tick: Duration) -> std::io::Result<Arc<Reactor>> {
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let shared = Arc::new(ReactorShared {
            sources: parking_lot::Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            wake_tx: parking_lot::Mutex::new(wake_tx),
            stop: AtomicBool::new(false),
            pass: parking_lot::Mutex::new(None),
            wakeups: obs::counter(&format!("{name}.reactor.wakeups_total")),
        });
        let loop_shared = shared.clone();
        let loop_name = name.to_string();
        let thread = std::thread::Builder::new()
            .name(format!("reactor-{name}"))
            .spawn(move || run_loop(&loop_name, &loop_shared, wake_rx, tick))?;
        Ok(Arc::new(Reactor {
            shared,
            thread: parking_lot::Mutex::new(Some(thread)),
        }))
    }

    /// Installs the per-pass callback (run on the loop thread each pass).
    pub(crate) fn set_pass(&self, pass: Arc<dyn Fn() + Send + Sync>) {
        *self.shared.pass.lock() = Some(pass);
    }

    /// Registers a source and wakes the loop to start polling it.
    pub(crate) fn register(&self, source: Arc<dyn EventSource>) -> u64 {
        let token = self.shared.next_token.fetch_add(1, Ordering::Relaxed);
        self.shared.sources.lock().insert(token, source);
        self.wake();
        token
    }

    /// Number of live registrations (the churn test's leak probe).
    pub(crate) fn registered(&self) -> usize {
        self.shared.sources.lock().len()
    }

    /// Wakes the loop thread out of `poll(2)`.
    pub(crate) fn wake(&self) {
        self.shared.wakeups.inc();
        // A failed/blocked write means the pipe already holds a pending
        // wake byte, which is all a wake needs to guarantee.
        let _ = self.shared.wake_tx.lock().write(&[1u8]);
    }

    /// Stops the loop, drops every registration, joins the thread.
    pub(crate) fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.wake();
        if let Some(handle) = self.thread.lock().take() {
            if std::thread::current().id() != handle.thread().id() {
                let _ = handle.join();
            }
        }
        self.shared.sources.lock().clear();
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_loop(name: &str, shared: &ReactorShared, mut wake_rx: UnixStream, tick: Duration) {
    let fds_gauge = obs::gauge(&format!("{name}.reactor.fds"));
    let ready_gauge = obs::gauge(&format!("{name}.reactor.ready_per_tick"));
    let ready_total = obs::counter(&format!("{name}.reactor.ready_events_total"));
    let loop_hist = obs::histogram(&format!("{name}.reactor.loop_seconds"));
    let mut pollfds: Vec<libc::pollfd> = Vec::new();
    let mut snapshot: Vec<(u64, Arc<dyn EventSource>)> = Vec::new();
    let mut next_tick = Instant::now() + tick;
    while !shared.stop.load(Ordering::SeqCst) {
        snapshot.clear();
        {
            let sources = shared.sources.lock();
            snapshot.extend(sources.iter().map(|(t, s)| (*t, s.clone())));
        }
        fds_gauge.set(snapshot.len() as f64);
        pollfds.clear();
        pollfds.push(libc::pollfd::new(wake_rx.as_raw_fd(), libc::POLLIN));
        for (_, source) in &snapshot {
            let interest = source.interest();
            let mut events = 0i16;
            if interest & INTEREST_READ != 0 {
                events |= libc::POLLIN;
            }
            if interest & INTEREST_WRITE != 0 {
                events |= libc::POLLOUT;
            }
            pollfds.push(libc::pollfd::new(source.fd(), events));
        }
        let now = Instant::now();
        let timeout_ms = if next_tick > now {
            (next_tick - now).as_millis().min(i32::MAX as u128) as i32
        } else {
            0
        };
        let ready = match libc::poll(&mut pollfds, timeout_ms.max(1)) {
            Ok(n) => n,
            Err(_) => {
                // A failing poll (EBADF from a racing close) self-heals:
                // the next pass rebuilds the set from live sources only.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };
        let pass_start = Instant::now();
        if pollfds[0].revents != 0 {
            let mut sink = [0u8; 256];
            while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let mut fired = 0usize;
        for (i, (token, source)) in snapshot.iter().enumerate() {
            let revents = pollfds[i + 1].revents;
            if revents == 0 {
                continue;
            }
            fired += 1;
            let readable =
                revents & (libc::POLLIN | libc::POLLERR | libc::POLLHUP | libc::POLLNVAL) != 0;
            let writable = revents & libc::POLLOUT != 0;
            if source.ready(readable, writable) == Ready::Remove {
                shared.sources.lock().remove(token);
            }
        }
        if Instant::now() >= next_tick {
            for (token, source) in &snapshot {
                if source.tick() == Ready::Remove {
                    shared.sources.lock().remove(token);
                }
            }
            next_tick = Instant::now() + tick;
        }
        let pass = shared.pass.lock().clone();
        if let Some(pass) = pass {
            pass();
        }
        if ready > 0 {
            ready_gauge.set(fired as f64);
            ready_total.add(fired as u64);
        }
        loop_hist.record_secs(pass_start.elapsed().as_secs_f64());
    }
    shared.sources.lock().clear();
}
